PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test benchmarks smoke lint analyze bench-smoke bench-backends bench-server bench-workloads bench-overload bench-ablation docs-check all

# Tier-1 test suite (tests/ + benchmarks/ collected from the repo root).
test:
	$(PYTHON) -m pytest -x -q

# Regenerate the paper's figure/table series at reproduction scale.
benchmarks:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Fast CI smoke: tier-1 tests, a 2-worker compilation-service run, the
# three-backend execution parity diff, the job-orchestration server
# (mixed compile+execute workload, coalescing asserted via telemetry), the
# workload suite (mixed traffic over a persistent state dir, bit-identical
# to the direct api path), the overload hardening (bounded queue sheds
# under a burst while completing and accounting for every job), the
# study engine (interrupted ablation study resumes without re-running
# finished replicates), the tracing pipeline (mixed burst with tracing
# on: connected per-job traces, Perfetto-loadable export, stage report)
# and the static-analysis stack (lint clean, two workloads verify clean,
# the mutation harness detects every injected defect).
smoke:
	$(PYTHON) -m pytest tests -x -q
	$(PYTHON) scripts/service_smoke.py --workers 2
	$(PYTHON) scripts/backend_smoke.py
	$(PYTHON) scripts/server_smoke.py
	$(PYTHON) scripts/workload_smoke.py
	$(PYTHON) scripts/overload_smoke.py
	$(PYTHON) scripts/study_smoke.py
	$(PYTHON) scripts/trace_smoke.py
	$(PYTHON) scripts/analysis_smoke.py

# Concurrency/determinism/hygiene lint over src/repro (non-zero on ERROR).
lint:
	$(PYTHON) -m repro lint

# Static verification sweep: pipeline validators + tape verifier over
# every registered workload (non-zero on any ERROR finding).
analyze:
	$(PYTHON) -m repro analyze

# Fig. 5 execution-time series driven through the batched vector VM.
bench-smoke:
	REPRO_BACKEND=vector-vm $(PYTHON) -m pytest benchmarks/test_fig5_execution_time.py --benchmark-only -s

# Backend throughput trajectory (rewrites BENCH_backends.json).
bench-backends:
	$(PYTHON) scripts/bench_backends.py --check

# Coalesced-server throughput vs one-at-a-time api.execute (rewrites
# BENCH_server.json; the acceptance bar is 3x).
bench-server:
	$(PYTHON) scripts/bench_server.py --check

# Workload suite: every registered workload on both backends, direct vs
# server path bit-identical, plus a mixed-traffic coalescing pass
# (rewrites BENCH_workloads.json).
bench-workloads:
	$(PYTHON) scripts/bench_workloads.py --check

# Goodput under overload: hardened (bounded queue + SLOs + admission)
# vs unbounded server at 0.5x/1x/2x measured capacity (rewrites
# BENCH_overload.json; the bar is hardened 2x goodput within 15% of peak
# with the top-priority p99 wait inside its SLO budget).
bench-overload:
	$(PYTHON) scripts/bench_overload.py --check

# System-ablation study: baseline + one-component-off matrix with
# bootstrap-CI importance ranking (rewrites BENCH_ablation.json; the bar
# is a complete study with >= 3 replicates per condition).
bench-ablation:
	$(PYTHON) scripts/bench_ablation.py --check

# Fail when README / architecture code snippets no longer execute.
docs-check:
	$(PYTHON) scripts/check_docs.py README.md docs/ARCHITECTURE.md

all: test docs-check
