PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test benchmarks smoke docs-check all

# Tier-1 test suite (tests/ + benchmarks/ collected from the repo root).
test:
	$(PYTHON) -m pytest -x -q

# Regenerate the paper's figure/table series at reproduction scale.
benchmarks:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Fast CI smoke: tier-1 tests plus a 2-worker compilation-service run.
smoke:
	$(PYTHON) -m pytest tests -x -q
	$(PYTHON) scripts/service_smoke.py --workers 2

# Fail when README / architecture code snippets no longer execute.
docs-check:
	$(PYTHON) scripts/check_docs.py README.md docs/ARCHITECTURE.md

all: test docs-check
