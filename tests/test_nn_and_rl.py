"""Tests for the numpy autograd engine, the NN layers and the RL stack."""

import numpy as np
import pytest

from repro.ir import parse
from repro.ir.tokenize import ICITokenizer
from repro.nn import (
    GRU,
    MLP,
    Adam,
    Embedding,
    LayerNorm,
    Linear,
    SGD,
    Tensor,
    TransformerEncoder,
    load_module,
    save_module,
)
from repro.rl import (
    ChehabAgent,
    EnvConfig,
    FheRewriteEnv,
    FlatActorCritic,
    HierarchicalActorCritic,
    PPOConfig,
    PPOTrainer,
    PolicyConfig,
    RewardConfig,
    RolloutBuffer,
)
from repro.rl.env import dataset_source
from repro.rl.autoencoder import AutoencoderConfig, GRUAutoencoder, TransformerAutoencoder, train_autoencoder


def _numeric_gradient(fn, x, eps=1e-6):
    grad = np.zeros_like(x)
    for index in np.ndindex(*x.shape):
        x[index] += eps
        upper = fn(x)
        x[index] -= 2 * eps
        lower = fn(x)
        x[index] += eps
        grad[index] = (upper - lower) / (2 * eps)
    return grad


class TestAutograd:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda t: (t * t).sum(),
            lambda t: (t * 3.0 + 1.0).sum(),
            lambda t: t.exp().sum(),
            lambda t: (t.tanh() * t).sum(),
            lambda t: t.sigmoid().sum(),
            lambda t: t.relu().sum(),
            lambda t: (t @ Tensor(np.ones((3, 2)))).sum(),
            lambda t: t.log_softmax(axis=-1).sum(),
            lambda t: t.mean(axis=0).sum(),
        ],
    )
    def test_gradients_match_numeric(self, builder):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(4, 3)) + 1.5  # keep log/exp well-behaved
        tensor = Tensor(data.copy(), requires_grad=True)
        loss = builder(tensor)
        loss.backward()
        numeric = _numeric_gradient(lambda x: builder(Tensor(x)).item(), data.copy())
        assert np.allclose(tensor.grad, numeric, atol=1e-4)

    def test_broadcast_addition_gradient(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((3,)), requires_grad=True)
        ((a + b) * 2.0).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)
        assert np.allclose(b.grad, 4.0)

    def test_backward_requires_scalar(self):
        with pytest.raises(ValueError):
            Tensor(np.ones(3), requires_grad=True).backward()

    def test_concatenate_and_stack_gradients(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 2)), requires_grad=True)
        Tensor.concatenate([a, b], axis=1).sum().backward()
        assert np.allclose(a.grad, 1.0) and np.allclose(b.grad, 1.0)
        c = Tensor(np.ones(3), requires_grad=True)
        Tensor.stack([c, c], axis=0).sum().backward()
        assert np.allclose(c.grad, 2.0)

    def test_getitem_gradient_accumulates(self):
        t = Tensor(np.zeros(4), requires_grad=True)
        (t[np.array([0, 0, 2])]).sum().backward()
        assert list(t.grad) == [2.0, 0.0, 1.0, 0.0]


class TestModules:
    def test_linear_shapes_and_training(self):
        layer = Linear(4, 2, seed=0)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 2)
        assert layer.parameter_count() == 4 * 2 + 2

    def test_mlp_learns_xor_like_regression(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(32, 2))
        y = (x[:, :1] * x[:, 1:]).copy()
        model = MLP(2, [16], 1, seed=0)
        optimizer = Adam(model.parameters(), learning_rate=0.02)
        first_loss, last_loss = None, None
        for _ in range(150):
            prediction = model(Tensor(x))
            error = prediction - Tensor(y)
            loss = (error * error).mean()
            if first_loss is None:
                first_loss = loss.item()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            last_loss = loss.item()
        assert last_loss < 0.5 * first_loss

    def test_layer_norm_normalises(self):
        out = LayerNorm(8)(Tensor(np.random.default_rng(0).normal(2.0, 3.0, size=(4, 8))))
        assert np.allclose(out.numpy().mean(axis=-1), 0.0, atol=1e-6)

    def test_embedding_lookup(self):
        emb = Embedding(10, 4, seed=0)
        out = emb(np.array([[1, 2], [3, 3]]))
        assert out.shape == (2, 2, 4)
        assert np.allclose(out.numpy()[1, 0], out.numpy()[1, 1])

    def test_transformer_encoder_shapes_and_mask(self):
        encoder = TransformerEncoder(vocab_size=12, model_dim=16, num_layers=1, num_heads=2, max_length=8, seed=0)
        ids = np.array([[1, 2, 3, 0, 0, 0, 0, 0]])
        mask = (ids != 0).astype(int)
        pooled = encoder.encode(ids, mask)
        assert pooled.shape == (1, 16)

    def test_gru_shapes(self):
        gru = GRU(6, 5, num_layers=2, bidirectional=True, seed=0)
        out = gru(Tensor(np.random.default_rng(0).normal(size=(3, 4, 6))))
        assert out.shape == (3, 4, 10)
        assert gru.encode(Tensor(np.zeros((2, 4, 6)))).shape == (2, 10)

    def test_sgd_momentum_decreases_loss(self):
        layer = Linear(3, 1, seed=1)
        optimizer = SGD(layer.parameters(), learning_rate=0.05, momentum=0.9)
        x = Tensor(np.eye(3))
        target = Tensor(np.array([[1.0], [2.0], [3.0]]))
        losses = []
        for _ in range(50):
            error = layer(x) - target
            loss = (error * error).mean()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]

    def test_save_and_load_round_trip(self, tmp_path):
        model = MLP(3, [4], 2, seed=0)
        path = tmp_path / "model.npz"
        save_module(model, path)
        clone = MLP(3, [4], 2, seed=99)
        load_module(clone, path)
        x = Tensor(np.ones((1, 3)))
        assert np.allclose(model(x).numpy(), clone(x).numpy())

    def test_load_rejects_shape_mismatch(self, tmp_path):
        model = MLP(3, [4], 2, seed=0)
        path = tmp_path / "model.npz"
        save_module(model, path)
        with pytest.raises(ValueError):
            load_module(MLP(3, [5], 2, seed=0), path)


def _small_env(expressions, seed=0, max_steps=6):
    tokenizer = ICITokenizer(max_length=48)
    config = EnvConfig(max_steps=max_steps, max_locations=8, max_tokens=48)
    return FheRewriteEnv(dataset_source(expressions, seed=seed), tokenizer=tokenizer, config=config)


_TRAIN_EXPRS = [
    parse("(Vec (+ (* a b) (* c d)) (+ (* e f) (* g h)))"),
    parse("(+ (+ (* a b) (* c d)) (+ (* e f) (* g h)))"),
    parse("(Vec (+ a b) (+ c d))"),
    parse("(* (+ x 0) (* y 1))"),
]


class TestEnvironment:
    def test_reset_returns_observation(self, ruleset):
        env = _small_env(_TRAIN_EXPRS)
        obs = env.reset()
        assert obs.tokens.shape == (48,)
        assert obs.rule_mask.shape == (ruleset.action_count,)
        assert obs.rule_mask[-1]

    def test_step_applies_rule_and_rewards_improvement(self, ruleset):
        env = _small_env([parse("(+ (* a b) (* a c))")])
        env.reset()
        action = (ruleset.index_of("comm-factor"), 0)
        _obs, reward, done, info = env.step(action)
        assert info["rule"] == "comm-factor"
        assert reward > 0
        assert not done

    def test_end_action_terminates_with_terminal_reward(self, ruleset):
        env = _small_env([parse("(+ (* a b) (* a c))")])
        env.reset()
        env.step((ruleset.index_of("comm-factor"), 0))
        _obs, reward, done, info = env.step((ruleset.end_index, 0))
        assert done
        assert info["improvement"] > 0
        assert reward > 0  # terminal reward reflects the total improvement

    def test_invalid_action_penalised(self, ruleset):
        env = _small_env([parse("(+ a b)")])
        env.reset()
        _obs, reward, _done, info = env.step((ruleset.index_of("rotate-zero"), 0))
        assert info["invalid"]
        assert reward < 0

    def test_episode_length_limit(self, ruleset):
        env = _small_env([parse("(+ a b)")], max_steps=2)
        env.reset()
        env.step((ruleset.end_index - 1, 0))
        _obs, _reward, done, _info = env.step((ruleset.end_index - 1, 0))
        assert done

    def test_step_only_reward_config(self, ruleset):
        config = RewardConfig(use_terminal_reward=False)
        assert config.terminal_reward(100.0, 10.0) == 0.0
        assert RewardConfig().terminal_reward(100.0, 10.0) == pytest.approx(90.0)


@pytest.fixture(scope="module")
def small_policy_setup(ruleset):
    tokenizer = ICITokenizer(max_length=48)
    config = PolicyConfig.small(vocab_size=tokenizer.vocab_size, max_tokens=48, seed=0)
    return tokenizer, config


class TestPoliciesAndPPO:
    def test_hierarchical_act_respects_mask(self, ruleset, small_policy_setup):
        _tokenizer, config = small_policy_setup
        policy = HierarchicalActorCritic(ruleset.action_count, config)
        env = _small_env([parse("(+ (* a b) (* a c))")])
        obs = env.reset()
        for _ in range(5):
            (rule_index, location_index), log_prob, value = policy.act(obs)
            assert obs.rule_mask[rule_index]
            assert location_index < config.max_locations
            assert np.isfinite(log_prob) and np.isfinite(value)

    def test_flat_policy_action_round_trip(self, ruleset, small_policy_setup):
        _tokenizer, config = small_policy_setup
        policy = FlatActorCritic(ruleset.action_count, config)
        flat = policy.flatten_action(3, 2)
        assert policy.unflatten_action(flat) == (3, 2)
        assert policy.unflatten_action(policy.end_flat_index) == (ruleset.end_index, 0)

    def test_evaluate_actions_shapes(self, ruleset, small_policy_setup):
        _tokenizer, config = small_policy_setup
        policy = HierarchicalActorCritic(ruleset.action_count, config)
        env = _small_env(_TRAIN_EXPRS)
        obs = env.reset()
        batch_tokens = np.stack([obs.tokens, obs.tokens])
        batch_mask = np.stack([obs.padding_mask, obs.padding_mask])
        rule_masks = np.stack([obs.rule_mask, obs.rule_mask])
        counts = np.stack([obs.location_counts, obs.location_counts])
        out = policy.evaluate_actions(batch_tokens, batch_mask, rule_masks, counts, np.array([0, 1]), np.array([0, 0]))
        assert out["log_prob"].shape == (2,)
        assert out["entropy"].shape == (2,)
        assert out["value"].shape == (2,)

    def test_rollout_buffer_gae(self):
        buffer = RolloutBuffer(gamma=0.9, gae_lambda=0.9)
        env = _small_env(_TRAIN_EXPRS)
        obs = env.reset()
        for index in range(4):
            buffer.add(obs, (0, 0), -0.1, 0.0, reward=float(index), done=(index == 3))
        buffer.compute_advantages(last_value=0.0)
        assert len(buffer) == 4
        assert buffer.returns.shape == (4,)
        batches = list(buffer.minibatches(2, np.random.default_rng(0)))
        assert sum(batch["tokens"].shape[0] for batch in batches) == 4

    def test_ppo_training_runs_and_records_history(self, ruleset, small_policy_setup):
        tokenizer, config = small_policy_setup
        policy = HierarchicalActorCritic(ruleset.action_count, config)
        envs = [_small_env(_TRAIN_EXPRS, seed=i) for i in range(2)]
        trainer = PPOTrainer(policy, envs, PPOConfig.small(seed=0))
        history = trainer.train(total_timesteps=48)
        assert history.timesteps
        assert len(history.mean_episode_reward) == len(history.policy_loss)

    def test_agent_optimize_improves_cost_and_is_deterministic(self, small_policy_setup):
        tokenizer, config = small_policy_setup
        agent = ChehabAgent(policy_config=config, max_steps=8)
        agent.tokenizer = tokenizer
        expr = parse("(+ (+ (* a b) (* c d)) (+ (* e f) (* g h)))")
        first = agent.optimize(expr)
        second = agent.optimize(expr)
        assert first.final_cost <= first.initial_cost
        assert first.final_cost == second.final_cost
        assert first.optimized == second.optimized

    def test_agent_save_load_round_trip(self, tmp_path, small_policy_setup):
        tokenizer, config = small_policy_setup
        agent = ChehabAgent(policy_config=config, max_steps=8)
        agent.tokenizer = tokenizer
        agent.save(tmp_path / "agent")
        restored = ChehabAgent.load(tmp_path / "agent")
        expr = parse("(Vec (+ a b) (+ c d))")
        assert restored.optimize(expr).final_cost == agent.optimize(expr).final_cost


class TestAutoencoders:
    def test_autoencoders_train_and_reconstruct(self):
        expressions = [parse(t) for t in ("(+ a b)", "(* a b)", "(+ (* a b) c)", "(- a b)")]
        config = AutoencoderConfig(vocab_size=ICITokenizer().vocab_size, model_dim=16, latent_dim=16, num_layers=1, num_heads=2, max_tokens=24, seed=0)
        tokenizer = ICITokenizer(max_length=24)
        transformer = TransformerAutoencoder(config)
        history = train_autoencoder(transformer, expressions, tokenizer=tokenizer, epochs=3, batch_size=2)
        assert len(history["loss"]) == 3
        assert history["loss"][-1] <= history["loss"][0]
        gru = GRUAutoencoder(config)
        gru_history = train_autoencoder(gru, expressions, tokenizer=tokenizer, epochs=2, batch_size=2)
        assert len(gru_history["loss"]) == 2
