"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.cost import CostModel
from repro.fhe.params import BFVParameters
from repro.ir.parser import parse
from repro.trs.registry import default_ruleset


@pytest.fixture(scope="session")
def ruleset():
    """The default 84-rule TRS (shared across the whole session)."""
    return default_ruleset()


@pytest.fixture(scope="session")
def cost_model():
    return CostModel()


@pytest.fixture(scope="session")
def small_params():
    """Small BFV parameters (fast encryption, 1024 slots)."""
    return BFVParameters.default(1024)


@pytest.fixture()
def motivating_expression():
    """The motivating example of Sec. 2 (Eq. 1)."""
    return parse(
        "(* (+ (* (* v1 v2) (* v3 v4)) (* (* v3 v4) (* v5 v6))) "
        "(* (* v7 v8) (* v9 v10)))"
    )
