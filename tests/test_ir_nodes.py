"""Unit tests for the IR node classes."""

import pytest

from repro.ir import (
    Add,
    Const,
    Mul,
    Neg,
    Rotate,
    Sub,
    Var,
    Vec,
    VecAdd,
    VecMul,
    VecNeg,
    VecSub,
)
from repro.ir.nodes import is_scalar_op, is_vector_op, produces_vector


class TestLeaves:
    def test_var_stores_name(self):
        assert Var("x").name == "x"

    def test_var_requires_name(self):
        with pytest.raises(ValueError):
            Var("")

    def test_const_stores_value(self):
        assert Const(7).value == 7

    def test_const_coerces_to_int(self):
        assert Const(3.0).value == 3

    def test_leaves_have_no_children(self):
        assert Var("x").is_leaf()
        assert Const(1).is_leaf()
        assert Var("x").arity == 0


class TestStructuralEquality:
    def test_equal_vars(self):
        assert Var("a") == Var("a")

    def test_different_vars(self):
        assert Var("a") != Var("b")

    def test_var_not_equal_const(self):
        assert Var("a") != Const(1)

    def test_nested_equality(self):
        left = Add(Mul(Var("a"), Var("b")), Const(1))
        right = Add(Mul(Var("a"), Var("b")), Const(1))
        assert left == right
        assert hash(left) == hash(right)

    def test_operator_type_matters(self):
        assert Add(Var("a"), Var("b")) != Sub(Var("a"), Var("b"))

    def test_rotation_step_matters(self):
        assert Rotate(Var("x"), 1) != Rotate(Var("x"), 2)

    def test_usable_as_dict_key(self):
        table = {Add(Var("a"), Var("b")): "sum"}
        assert table[Add(Var("a"), Var("b"))] == "sum"


class TestImmutability:
    def test_cannot_set_attribute(self):
        node = Add(Var("a"), Var("b"))
        with pytest.raises(AttributeError):
            node.children = ()

    def test_with_children_rebuilds(self):
        node = Add(Var("a"), Var("b"))
        rebuilt = node.with_children([Var("x"), Var("y")])
        assert isinstance(rebuilt, Add)
        assert rebuilt.lhs == Var("x")
        assert node.lhs == Var("a")

    def test_with_children_arity_check(self):
        with pytest.raises(ValueError):
            Add(Var("a"), Var("b")).with_children([Var("x")])

    def test_leaf_with_children_rejects_children(self):
        with pytest.raises(ValueError):
            Var("x").with_children([Var("y")])

    def test_rotate_with_children_preserves_step(self):
        node = Rotate(Var("x"), 3)
        rebuilt = node.with_children([Var("y")])
        assert rebuilt.step == 3
        assert rebuilt.operand == Var("y")


class TestVec:
    def test_vec_elements(self):
        vec = Vec(Var("a"), Var("b"), Var("c"))
        assert len(vec.elements) == 3

    def test_vec_from_list(self):
        vec = Vec([Var("a"), Var("b")])
        assert vec.elements == (Var("a"), Var("b"))

    def test_empty_vec_rejected(self):
        with pytest.raises(ValueError):
            Vec()

    def test_vec_rejects_non_expr(self):
        with pytest.raises(TypeError):
            Vec(Var("a"), 3)


class TestClassification:
    @pytest.mark.parametrize(
        "node, scalar",
        [
            (Add(Var("a"), Var("b")), True),
            (Mul(Var("a"), Var("b")), True),
            (Neg(Var("a")), True),
            (VecAdd(Var("a"), Var("b")), False),
            (Vec(Var("a")), False),
        ],
    )
    def test_is_scalar_op(self, node, scalar):
        assert is_scalar_op(node) is scalar

    @pytest.mark.parametrize(
        "node, vector",
        [
            (VecMul(Var("a"), Var("b")), True),
            (VecSub(Var("a"), Var("b")), True),
            (VecNeg(Var("a")), True),
            (Rotate(Var("a"), 1), True),
            (Sub(Var("a"), Var("b")), False),
        ],
    )
    def test_is_vector_op(self, node, vector):
        assert is_vector_op(node) is vector

    def test_produces_vector(self):
        assert produces_vector(Vec(Var("a")))
        assert produces_vector(VecAdd(Vec(Var("a")), Vec(Var("b"))))
        assert not produces_vector(Add(Var("a"), Var("b")))
        assert produces_vector(Var("v"), vector_vars=frozenset({"v"}))


class TestWalk:
    def test_walk_preorder(self):
        expr = Add(Mul(Var("a"), Var("b")), Var("c"))
        ops = [node.op for node in expr.walk()]
        assert ops == ["+", "*", "var", "var", "var"]

    def test_binary_accessors(self):
        node = Sub(Var("a"), Var("b"))
        assert node.lhs == Var("a")
        assert node.rhs == Var("b")

    def test_unary_accessor(self):
        assert Neg(Var("a")).operand == Var("a")
