"""Compiler tests: DSL, passes, lowering, execution, codegen and pipeline."""

import pytest

from repro.compiler import (
    Ciphertext,
    Compiler,
    CompilerOptions,
    Opcode,
    Program,
    execute,
    generate_seal_code,
    lower,
    reference_output,
)
from repro.compiler.dsl import Plaintext, vector_input
from repro.compiler.lowering import LoweringOptions
from repro.compiler.passes import constant_fold, cse_statistics, dead_code_eliminate
from repro.ir import parse
from repro.ir.nodes import Const


class TestDSL:
    def test_staging_builds_ir(self):
        with Program("p") as program:
            a, b = Ciphertext("a"), Ciphertext("b")
            (a * b + a).set_output("y")
        assert program.output_expr == parse("(+ (* a b) a)")
        assert program.inputs == ["a", "b"]

    def test_operators(self):
        with Program("ops") as program:
            a, b = Ciphertext("a"), Ciphertext("b")
            ((a - b) * 2 + (-a) + (a << 1) + (b >> 2)).set_output("y")
        text = str(program.output_expr)
        assert "(<< a 1)" in text and "(<< b -2)" in text and "(- a)" in text

    def test_int_and_plaintext_operands(self):
        with Program("mixed") as program:
            a = Ciphertext("a")
            w = Plaintext(3)
            (a * w + 1).set_output("y")
        assert program.output_expr == parse("(+ (* a 3) 1)")

    def test_multiple_outputs_wrap_in_vec(self):
        with Program("multi") as program:
            a, b = Ciphertext("a"), Ciphertext("b")
            (a + b).set_output("s")
            (a * b).set_output("p")
        assert program.output_expr == parse("(Vec (+ a b) (* a b))")

    def test_vector_input_helper(self):
        with Program("vec") as program:
            xs = vector_input("x", 3)
            (xs[0] + xs[1] + xs[2]).set_output("y")
        assert program.inputs == ["x_0", "x_1", "x_2"]

    def test_set_output_requires_context(self):
        with Program("ctx") as _program:
            a = Ciphertext("a")
        with pytest.raises(RuntimeError):
            (a + a).set_output("y")

    def test_no_outputs_rejected(self):
        with Program("empty") as program:
            Ciphertext("a")
        with pytest.raises(ValueError):
            program.output_expr

    def test_nested_programs_rejected(self):
        with Program("outer"):
            with pytest.raises(RuntimeError):
                with Program("inner"):
                    pass


class TestPasses:
    @pytest.mark.parametrize(
        "before, after",
        [
            ("(+ 2 3)", "5"),
            ("(* (+ 1 2) x)", "(* 3 x)"),
            ("(* x 1)", "x"),
            ("(+ x 0)", "x"),
            ("(* x 0)", "0"),
            ("(- (- x))", "x"),
            ("(<< x 0)", "x"),
            ("(+ (* 2 4) (* x 1))", "(+ 8 x)"),
        ],
    )
    def test_constant_fold(self, before, after):
        assert constant_fold(parse(before)) == parse(after)

    def test_cse_statistics(self):
        stats = cse_statistics(parse("(+ (* a b) (* a b))"))
        assert stats["shared_nodes"] == 3
        assert stats["dag_size"] == 4

    def test_dead_code_eliminate(self):
        program = lower(parse("(+ a b)"), name="dce")
        # Append an unused plaintext load and check it is pruned.
        program.emit(Opcode.LOAD_PLAIN, name="vector", values=(1, 2, 3))
        before = len(program)
        pruned = dead_code_eliminate(program)
        assert len(pruned) == before - 1
        assert pruned.outputs[0][1] == "result"


class TestLowering:
    def test_leaf_vec_packs_client_side(self):
        program = lower(parse("(VecAdd (Vec a c) (Vec b d))"), name="packed")
        stats = program.stats()
        assert stats.encrypted_inputs == 2
        assert stats.rotations == 0
        assert stats.additions == 1

    def test_constant_vec_becomes_plaintext_operand(self):
        program = lower(parse("(VecMul (Vec a b) (Vec 2 3))"), name="plain")
        stats = program.stats()
        assert stats.ct_pt_multiplications == 1
        assert stats.ct_ct_multiplications == 0

    def test_layout_after_encryption_adds_rotations(self):
        expr = parse("(VecAdd (Vec a c) (Vec b d))")
        before = lower(expr, options=LoweringOptions(layout_before_encryption=True)).stats()
        after = lower(expr, options=LoweringOptions(layout_before_encryption=False)).stats()
        assert after.rotations > before.rotations
        assert after.encrypted_inputs >= before.encrypted_inputs

    def test_gather_of_computed_elements(self):
        program = lower(parse("(Vec (+ a b) (* c d))"), name="gather")
        stats = program.stats()
        assert stats.rotations >= 1
        assert stats.ct_pt_multiplications >= 1

    def test_scalar_constant_multiplication_is_plain(self):
        stats = lower(parse("(* a 5)")).stats()
        assert stats.ct_pt_multiplications == 1
        assert stats.ct_ct_multiplications == 0

    @pytest.mark.parametrize(
        "text, env, expected_first",
        [
            ("(+ (* a b) c)", {"a": 2, "b": 3, "c": 4}, 10),
            ("(VecAdd (Vec a c) (Vec b d))", {"a": 1, "b": 2, "c": 3, "d": 4}, 3),
            ("(- a b)", {"a": 2, "b": 9}, -7),
            ("(* (- a b) (- a b))", {"a": 7, "b": 3}, 16),
            ("(Vec (+ a b) (* a b) (- a))", {"a": 2, "b": 5}, 7),
            ("(<< (Vec a b c) 1)", {"a": 1, "b": 2, "c": 3}, 2),
        ],
    )
    def test_lowered_circuit_matches_reference(self, text, env, expected_first):
        expr = parse(text)
        program = lower(expr)
        report = execute(program, env)
        reference = reference_output(expr, env)
        assert report.outputs["result"] == reference
        assert reference[0] == expected_first


class TestPipelineAndCodegen:
    def test_pipeline_preserves_semantics(self, motivating_expression):
        compiler = Compiler(CompilerOptions(optimizer="greedy"))
        report = compiler.compile_expression(motivating_expression, name="motivating")
        inputs = {f"v{i}": i for i in range(1, 11)}
        execution = execute(report.circuit, inputs)
        assert execution.outputs["result"] == reference_output(motivating_expression, inputs)
        assert report.final_cost <= report.initial_cost
        assert report.compile_time_s > 0

    def test_none_optimizer_keeps_scalar_ops(self):
        expr = parse("(+ (* a b) (* c d))")
        report = Compiler(CompilerOptions(optimizer="none")).compile_expression(expr)
        assert report.stats.ct_ct_multiplications == 2
        assert report.rewrite_steps == []

    def test_unknown_optimizer_rejected(self):
        with pytest.raises(ValueError):
            Compiler(CompilerOptions(optimizer="magic")).compile_expression(parse("(+ a b)"))

    def test_optimizer_object_requires_interface(self):
        with pytest.raises(TypeError):
            Compiler(CompilerOptions(optimizer=object())).compile_expression(parse("(+ a b)"))

    def test_rotation_key_selection_pass(self):
        expr = parse("(+ (+ (* a b) (* c d)) (+ (* e f) (* g h)))")
        options = CompilerOptions(optimizer="greedy", select_rotation_keys=True)
        report = Compiler(options).compile_expression(expr)
        if report.circuit.rotation_steps:
            assert report.rotation_key_plan is not None
            assert report.rotation_key_plan.key_count > 0

    def test_seal_codegen_contains_api_calls(self):
        expr = parse("(+ (* a b) (* c d))")
        report = Compiler(CompilerOptions(optimizer="greedy")).compile_expression(expr, name="dot2")
        code = report.seal_code()
        assert "evaluator." in code
        assert "encrypted_outputs" in code
        assert "relinearize" in code or "multiply" in code

    def test_codegen_covers_every_opcode_used(self):
        program = lower(parse("(Vec (+ a b) (* c 3) (- d))"))
        code = generate_seal_code(program)
        assert "rotate_rows" in code or "multiply_plain" in code
        assert code.count("Ciphertext ct") >= 3

    def test_compilation_report_improvement_bounds(self):
        report = Compiler(CompilerOptions(optimizer="greedy")).compile_expression(parse("(+ a b)"))
        assert 0.0 <= report.cost_improvement <= 1.0
