"""Unit tests for the term rewriting system: registry, specific rules, engines."""

import pytest

from repro.core.cost import CostModel
from repro.ir import parse, to_sexpr
from repro.ir.evaluate import evaluate, output_arity
from repro.ir.analysis import variables, count_ops, multiplicative_depth
from repro.trs import (
    BeamSearchRewriter,
    GreedyRewriter,
    RandomRewriter,
    RuleApplicationError,
    apply_sequence,
    default_ruleset,
)
from repro.trs.rule import PatternRule, pattern


def _environment(expr, value=3):
    return {name: (index % 5) + value for index, name in enumerate(variables(expr))}


def _meaningful_slots(expr, env):
    return evaluate(expr, env, slot_count=64)[: output_arity(expr)]


def assert_semantics_preserved(before, after):
    env = _environment(before)
    assert _meaningful_slots(before, env) == _meaningful_slots(after, env)[: output_arity(before)]


class TestRegistry:
    def test_exactly_84_rules(self, ruleset):
        assert len(ruleset) == 84

    def test_end_action_is_last(self, ruleset):
        assert ruleset.end_index == 84
        assert ruleset.action_count == 85

    def test_rule_names_unique(self, ruleset):
        assert len(set(ruleset.names)) == 84

    def test_lookup_by_name(self, ruleset):
        rule = ruleset.by_name("comm-factor")
        assert ruleset.index_of("comm-factor") == ruleset.names.index("comm-factor")
        assert rule.name == "comm-factor"

    def test_categories_cover_paper_families(self, ruleset):
        categories = ruleset.categories()
        for family in ("simplify", "transform", "vectorize", "rotation", "balance"):
            assert family in categories and categories[family]

    def test_action_mask_end_always_valid(self, ruleset):
        mask = ruleset.action_mask(parse("x"))
        assert mask[-1] is True

    def test_applicable_rules_subset(self, ruleset):
        applicable = ruleset.applicable_rules(parse("(+ (* a b) (* a c))"))
        names = [ruleset[i].name for i in applicable]
        assert "comm-factor" in names
        assert "rotate-zero" not in names

    def test_apply_by_index(self, ruleset):
        expr = parse("(+ (* a b) (* a c))")
        index = ruleset.index_of("comm-factor")
        assert ruleset.apply(expr, index) == parse("(* a (+ b c))")


class TestSpecificRewrites:
    @pytest.mark.parametrize(
        "rule_name, before, after",
        [
            ("add-identity-right", "(+ x 0)", "x"),
            ("add-identity-left", "(+ 0 x)", "x"),
            ("sub-identity", "(- x 0)", "x"),
            ("mul-identity-right", "(* x 1)", "x"),
            ("mul-absorb-right", "(* x 0)", "0"),
            ("sub-self", "(- x x)", "0"),
            ("neg-neg", "(- (- x))", "x"),
            ("const-fold-add", "(+ 2 3)", "5"),
            ("const-fold-mul", "(* 4 5)", "20"),
            ("plain-consolidate", "(* 2 (* 3 x))", "(* 6 x)"),
            ("mul-two-to-add", "(* 2 x)", "(+ x x)"),
            ("comm-factor", "(+ (* a b) (* a c))", "(* a (+ b c))"),
            ("comm-factor-right", "(+ (* b a) (* c a))", "(* (+ b c) a)"),
            ("distribute-left", "(* a (+ b c))", "(+ (* a b) (* a c))"),
            ("add-commute", "(+ a b)", "(+ b a)"),
            ("mul-assoc-right", "(* (* a b) c)", "(* a (* b c))"),
            ("sub-add-regroup", "(- (+ a b) b)", "a"),
            ("vec-factor", "(VecAdd (VecMul x y) (VecMul x z))", "(VecMul x (VecAdd y z))"),
            ("balance-mul-right", "(* x (* y (* z t)))", "(* (* x y) (* z t))"),
            ("rotate-compose", "(<< (<< x 2) 3)", "(<< x 5)"),
            (
                "rotate-hoist-add",
                "(VecAdd (<< x 2) (<< y 2))",
                "(<< (VecAdd x y) 2)",
            ),
            (
                "add-vectorize-2",
                "(Vec (+ a b) (+ c d))",
                "(VecAdd (Vec a c) (Vec b d))",
            ),
            (
                "mul-vectorize-2",
                "(Vec (* a b) (* c d))",
                "(VecMul (Vec a c) (Vec b d))",
            ),
            (
                "mul-vectorize-mixed",
                "(Vec (* a b) (* c d) (- f g))",
                "(VecMul (Vec a c (- f g)) (Vec b d 1))",
            ),
        ],
    )
    def test_rewrite_result(self, ruleset, rule_name, before, after):
        rule = ruleset.by_name(rule_name)
        rewritten = rule.apply_first(parse(before))
        assert rewritten == parse(after)

    @pytest.mark.parametrize(
        "rule_name, before",
        [
            ("comm-factor", "(+ (* a b) (* a c))"),
            ("comm-factor-mixed-left", "(+ (* b a) (* a c))"),
            ("balance-mul-chain", "(* x (* y (* z (* t u))))"),
            ("balance-add-chain", "(+ x (+ y (+ z (+ t u))))"),
            ("pack-add-of-products", "(+ (* a b) (* c d))"),
            ("pack-mul-of-products", "(* (* a b) (* c d))"),
            ("pack-mul-of-sums", "(* (+ a b) (+ c d))"),
            ("rotate-reduce-sum", "(+ (+ (* a b) (* c d)) (+ (* e f) (* g h)))"),
            ("rotate-reduce-squares", "(+ (* (- a b) (- a b)) (* (- c d) (- c d)))"),
            ("rotate-pack-sum-of-products", "(Vec (+ (* a b) (* c d)) (+ (* e f) (* g h)))"),
            ("add-vectorize-full", "(Vec (+ a b) (+ c d) (+ e f) (+ g h) (+ i j))"),
            ("neg-vectorize-2", "(Vec (- a) (- b))"),
            ("sub-vectorize-3", "(Vec (- a b) (- c d) (- e f))"),
        ],
    )
    def test_rewrite_preserves_semantics(self, ruleset, rule_name, before):
        rule = ruleset.by_name(rule_name)
        expr = parse(before)
        rewritten = rule.apply_first(expr)
        assert rewritten != expr
        assert_semantics_preserved(expr, rewritten)

    def test_balance_reduces_multiplicative_depth(self, ruleset):
        expr = parse("(* x (* y (* z (* t u))))")
        rewritten = ruleset.by_name("balance-mul-chain").apply_first(expr)
        assert multiplicative_depth(rewritten) < multiplicative_depth(expr)

    def test_reduce_sum_uses_single_vec_mul(self, ruleset):
        expr = parse("(+ (+ (* a b) (* c d)) (+ (* e f) (* g h)))")
        rewritten = ruleset.by_name("rotate-reduce-sum").apply_first(expr)
        counts = count_ops(rewritten)
        assert counts.vec_mul == 1
        assert counts.rotations == 2
        assert counts.scalar_ops == 0

    def test_rule_not_matching_raises(self, ruleset):
        with pytest.raises(RuleApplicationError):
            ruleset.by_name("comm-factor").apply_first(parse("(+ a b)"))

    def test_apply_at_invalid_path_raises(self, ruleset):
        rule = ruleset.by_name("add-identity-right")
        with pytest.raises(RuleApplicationError):
            rule.apply_at(parse("(+ a 0)"), (0,))

    def test_pattern_rule_requires_rhs_or_builder(self):
        with pytest.raises(ValueError):
            PatternRule("broken", pattern("(+ ?a ?b)"))

    def test_location_selection(self, ruleset):
        expr = parse("(Vec (+ x 0) (+ y 0))")
        rule = ruleset.by_name("add-identity-right")
        locations = rule.find(expr)
        assert len(locations) == 2
        first = rule.apply_at(expr, locations[0])
        second = rule.apply_at(expr, locations[1])
        assert first == parse("(Vec x (+ y 0))")
        assert second == parse("(Vec (+ x 0) y)")


class TestRewriters:
    def test_greedy_improves_dot_product(self, cost_model):
        expr = parse("(+ (+ (* a b) (* c d)) (+ (* e f) (* g h)))")
        result = GreedyRewriter(max_steps=20).optimize(expr)
        assert result.final_cost < result.initial_cost
        assert result.improvement > 0.5
        assert_semantics_preserved(expr, result.optimized)

    def test_greedy_stops_when_no_improvement(self):
        result = GreedyRewriter(max_steps=10).optimize(parse("(+ a b)"))
        assert result.steps == []
        assert result.final_cost == result.initial_cost

    def test_beam_search_at_least_as_good_as_greedy(self):
        expr = parse("(Vec (+ a b) (+ c d))")
        greedy = GreedyRewriter(max_steps=10).optimize(expr)
        beam = BeamSearchRewriter(beam_width=3, max_steps=6).optimize(expr)
        assert beam.final_cost <= greedy.final_cost + 1e-9
        assert_semantics_preserved(expr, beam.optimized)

    def test_random_rewriter_preserves_semantics(self):
        expr = parse("(+ (* a b) (* a c))")
        result = RandomRewriter(max_steps=8, seed=3).optimize(expr)
        assert_semantics_preserved(expr, result.optimized)

    def test_apply_sequence_follows_actions(self, ruleset):
        expr = parse("(+ (* a b) (* a c))")
        actions = [(ruleset.index_of("comm-factor"), 0), (ruleset.end_index, 0)]
        result = apply_sequence(expr, actions, ruleset=ruleset)
        assert result.optimized == parse("(* a (+ b c))")
        assert len(result.steps) == 1

    def test_apply_sequence_skips_non_matching(self, ruleset):
        expr = parse("(+ a b)")
        actions = [(ruleset.index_of("comm-factor"), 0)]
        result = apply_sequence(expr, actions, ruleset=ruleset)
        assert result.optimized == expr
