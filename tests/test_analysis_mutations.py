"""Mutation harness: the verifier catches every injected defect class.

This is the verifier's own soundness gate — a checker that never fires on a
bug is indistinguishable from one that always passes, so CI asserts a 100%
detection rate over seeded mutants of all four optimizer defect classes.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.analysis.mutate import (
    DEFECT_CLASSES,
    enumerate_mutations,
    run_mutation_harness,
    verify_mutation,
)
from repro.backends.tapeopt import compile_tape
from repro.fhe.params import BFVParameters
from repro.workloads import build_workload

PARAMS = BFVParameters.default(1024)

@pytest.fixture(scope="module")
def cases():
    """Kernel mix guaranteeing at least one site per defect class: ordered
    subtractions (swap), scheduled reduces at the large bucket
    (drop-reduction), a multi-consumer product (illegal fusion) and
    overlapping register lifetimes (clobber)."""
    built = []
    sources = [
        build_workload("l2-distance").source,
        build_workload("tree-ensemble").source,
        "(+ (+ (* a b) c) (* (* a b) d))",
    ]
    for source in sources:
        report = api.compile(source, "greedy")
        built.append((report.circuit, compile_tape(report.circuit, PARAMS)))
    return built


@pytest.fixture(scope="module")
def harness(cases):
    return run_mutation_harness(cases, seed=11, per_class=3)


def test_every_class_exercised(harness) -> None:
    assert harness.classes_exercised == sorted(DEFECT_CLASSES)


def test_detection_rate_is_total(harness) -> None:
    assert harness.all_detected
    for kind in DEFECT_CLASSES:
        assert harness.detection_rate(kind) == 1.0, harness.summary_lines()


def test_detections_name_a_rule(harness) -> None:
    for outcomes in harness.outcomes.values():
        for outcome in outcomes:
            assert outcome.rules, outcome.mutation.description


def test_same_seed_replays_same_mutants(cases) -> None:
    first = run_mutation_harness(cases, seed=3, per_class=2)
    second = run_mutation_harness(cases, seed=3, per_class=2)
    descr = lambda r: [
        o.mutation.description for v in r.outcomes.values() for o in v
    ]
    assert descr(first) == descr(second)


def test_pristine_plan_is_clean_baseline(cases) -> None:
    """Every enumerated mutant differs from its (clean) source schedule."""
    # swap sites live in the subtraction-heavy kernel, fusion sites in the
    # shared-product kernel
    for case_index, kind in ((0, "swap-operands"), (2, "skip-fusion-check")):
        program, tape = cases[case_index]
        plan = tape.plan_for(1)
        mutations = enumerate_mutations(
            program, tape, kind, ops=plan.ops, bucket=plan.bucket
        )
        assert mutations, kind
        for mutation in mutations:
            assert tuple(mutation.ops) != tuple(plan.ops)
            report = verify_mutation(program, tape, mutation)
            assert not report.ok, mutation.description
