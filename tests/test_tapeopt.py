"""Tests for the tape compiler behind the vector VM (PR 8).

Covers the optimization pipeline pass by pass on hand-built circuits
(alias elimination, load/const dedup, CSE, DCE, every superinstruction
kind and the cases where fusion must refuse), the modular-reduction
scheduler, the process-wide compiled-tape memo, float-for-float
accounting parity on fused tapes, an aliasing regression that would
corrupt outputs under in-place execution, and a bit-identical parity
sweep of the whole workload registry across every optimization level.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.backends import (
    compile_tape,
    get_compiled_tape,
    reset_tape_cache,
    tape_cache_stats,
)
from repro.backends.vector_vm import VectorVMBackend
from repro.compiler.circuit import CircuitProgram, InputSlot, Opcode
from repro.compiler.executor import execute, execute_many
from repro.fhe.params import BFVParameters
from repro.kernels.registry import benchmark_by_name
from repro.workloads import available_workloads, build_workload

PARAMS = BFVParameters.default(1024)

#: Every ExecutionReport accounting field that must match the reference
#: backend exactly (not approximately) — the tape replays the original
#: instruction sequence through the same ledger/meter formulas.
ACCOUNTING_FIELDS = (
    "latency_ms",
    "operation_counts",
    "encrypted_inputs",
    "consumed_noise_budget",
    "remaining_noise_budget",
    "noise_budget_exhausted",
)

#: The three vector-VM execution strategies: specialized tape (default),
#: tape dispatch interpreter, and the legacy per-instruction interpreter.
VM_VARIANTS = (
    ("opt2", lambda: VectorVMBackend(opt_level=2)),
    ("opt1", lambda: VectorVMBackend(opt_level=1)),
    ("interp", lambda: "vector-vm-interp"),
)


def ct_input(program: CircuitProgram, name: str) -> int:
    """Emit a scalar encrypted input named ``name``; returns its register."""
    return program.emit(Opcode.LOAD_INPUT, name=name, layout=[InputSlot(name=name)])


def assert_backend_parity(program, inputs_list, params=PARAMS):
    """All VM variants must match the reference backend bit for bit."""
    reference = [
        execute(program, item, params=params, backend="reference")
        for item in inputs_list
    ]
    for label, factory in VM_VARIANTS:
        reports = execute_many(program, inputs_list, params=params, backend=factory())
        assert len(reports) == len(reference)
        for index, (ref, got) in enumerate(zip(reference, reports)):
            assert got.outputs == ref.outputs, f"{label}[{index}] outputs diverge"
            for field in ACCOUNTING_FIELDS:
                assert getattr(got, field) == getattr(ref, field), (
                    f"{label}[{index}] {field} diverges"
                )
    return reference


def compiled(source: str, compiler: str = "greedy") -> CircuitProgram:
    return api.compile(source, compiler=compiler).circuit


class TestPeepholePasses:
    def test_step0_rotation_and_output_markers_become_aliases(self):
        program = CircuitProgram(name="aliases")
        a = ct_input(program, "x")
        rot = program.emit(Opcode.ROTATE, (a,), step=0)
        marker = program.emit(Opcode.OUTPUT, (rot,))
        program.mark_output(marker, "alias", 1)
        square = program.emit(Opcode.MUL, (a, a))
        program.mark_output(square, "square", 1)

        stats = compile_tape(program, PARAMS).stats
        assert stats["eliminated"]["aliases"] == 2  # the rotation and the marker
        assert stats["tape_ops"] == 1  # only the multiply survives
        reference = assert_backend_parity(program, [{"x": 5}])
        assert reference[0].outputs == {"alias": [5], "square": [25]}

    def test_full_slot_rotation_is_a_free_alias(self):
        # A rotation by the full slot count moves no data: an alias on the
        # tape, and — since the evaluator normalizes steps mod n and treats
        # the identity rotation as a budget-preserving copy — free in the
        # accounting replay too.  All layers agree it never happened.
        program = CircuitProgram(name="fullrot")
        a = ct_input(program, "x")
        rot = program.emit(Opcode.ROTATE, (a,), step=PARAMS.slot_count)
        total = program.emit(Opcode.ADD, (rot, a))
        program.mark_output(total, "doubled", 1)

        tape = compile_tape(program, PARAMS)
        assert tape.stats["eliminated"]["aliases"] == 1
        assert tape.accounting.operation_counts == {"add": 1}
        reference = assert_backend_parity(program, [{"x": 3}])
        assert reference[0].outputs == {"doubled": [6]}

    def test_duplicate_loads_and_constants_collapse(self):
        program = CircuitProgram(name="dedup")
        a1 = ct_input(program, "a")
        a2 = ct_input(program, "a")  # identical layout -> same buffer
        k1 = program.emit(Opcode.LOAD_PLAIN, values=(3,), name="broadcast")
        k2 = program.emit(Opcode.LOAD_PLAIN, values=(3,), name="broadcast")
        s1 = program.emit(Opcode.ADD, (a1, a2))
        s2 = program.emit(Opcode.ADD, (a2, a1))  # commutative CSE of s1
        m1 = program.emit(Opcode.MUL_PLAIN, (s1, k1))
        m2 = program.emit(Opcode.MUL_PLAIN, (s2, k2))  # CSE once inputs unify
        program.emit(Opcode.MUL, (a1, a2))  # dead: never reaches an output
        program.mark_output(m1, "out", 1)
        assert m2 != m1  # distinct SSA registers before optimization

        tape = compile_tape(program, PARAMS)
        assert tape.stats["eliminated"] == {
            "cse": 2,
            "dead": 1,
            "dedup_consts": 1,
            "dedup_loads": 1,
        }
        assert tape.stats["consts"] == 1
        # Accounting replays the *original* program: both encrypted loads
        # and the dead multiply are still paid for, exactly like reference.
        assert tape.accounting.encrypted_inputs == 2
        assert tape.accounting.operation_counts["multiply"] == 1
        assert tape.accounting.operation_counts["multiply_plain"] == 2
        reference = assert_backend_parity(program, [{"a": 4}, {"a": 6}])
        assert reference[0].outputs == {"out": [24]}


class TestFusion:
    @pytest.mark.parametrize(
        "source, kind",
        [
            ("(+ (* a b) c)", "mul_add"),
            ("(- (* a b) c)", "mul_sub_l"),
            ("(- c (* a b))", "mul_sub_r"),
            ("(+ (<< a 2) b)", "rot_add"),
            ("(* (<< a 2) b)", "rot_mul"),
            ("(+ (* (<< a 2) b) c)", "rot_mul_add"),
        ],
    )
    def test_each_superinstruction_kind_fires(self, source, kind):
        program = compiled(source)
        stats = compile_tape(program, PARAMS).stats
        assert stats["fused"][kind] == 1, stats["fused"]
        inputs = [
            {name: seed + 2 for seed, name in enumerate(("a", "b", "c"))}
            for _ in range(3)
        ]
        inputs = [dict(item, a=item["a"] + shift) for shift, item in enumerate(inputs)]
        assert_backend_parity(program, inputs)

    def test_multi_use_intermediate_is_not_fused(self):
        # The product feeds two adds; folding it into either would force
        # recomputation for the other, so fusion must refuse.
        program = CircuitProgram(name="multiuse")
        a, b = ct_input(program, "a"), ct_input(program, "b")
        c, d = ct_input(program, "c"), ct_input(program, "d")
        product = program.emit(Opcode.MUL, (a, b))
        s1 = program.emit(Opcode.ADD, (product, c))
        s2 = program.emit(Opcode.ADD, (product, d))
        program.mark_output(s1, "s1", 1)
        program.mark_output(s2, "s2", 1)

        stats = compile_tape(program, PARAMS).stats
        assert stats["fused_total"] == 0
        assert stats["tape_ops"] == 3
        assert_backend_parity(program, [{"a": 2, "b": 3, "c": 4, "d": 5}])

    def test_output_intermediate_is_not_fused(self):
        # The product is itself a declared output: fusing it away would
        # leave nothing to decode, so fusion must refuse.
        program = CircuitProgram(name="outint")
        a, b, c = ct_input(program, "a"), ct_input(program, "b"), ct_input(program, "c")
        product = program.emit(Opcode.MUL, (a, b))
        program.mark_output(product, "prod", 1)
        total = program.emit(Opcode.ADD, (product, c))
        program.mark_output(total, "sum", 1)

        stats = compile_tape(program, PARAMS).stats
        assert stats["fused_total"] == 0
        reference = assert_backend_parity(program, [{"a": 2, "b": 3, "c": 4}])
        assert reference[0].outputs == {"prod": [6], "sum": [10]}


class TestAliasingRegression:
    def test_aliased_registers_survive_in_place_execution(self):
        # Regression for the in-place aliasing hazard: ``alias`` shares
        # storage with the raw input, and an execution strategy that wrote
        # the square into a reused buffer (or freed the input's buffer via
        # non-canonical liveness) would report 25 for ``alias``.  Every
        # optimization level must keep the alias intact.
        program = CircuitProgram(name="alias-hazard")
        a = ct_input(program, "x")
        rot = program.emit(Opcode.ROTATE, (a,), step=0)
        marker = program.emit(Opcode.OUTPUT, (rot,))
        program.mark_output(marker, "alias", 1)
        square = program.emit(Opcode.MUL, (a, a))
        program.mark_output(square, "square", 1)
        fourth = program.emit(Opcode.MUL, (square, square))
        program.mark_output(fourth, "fourth", 1)

        reference = assert_backend_parity(program, [{"x": 5}, {"x": 2}, {"x": 7}])
        assert reference[0].outputs == {"alias": [5], "square": [25], "fourth": [625]}


class TestReductionPlanning:
    def test_plans_are_bucketed_and_cached(self):
        program = compiled("(* (* a b) (* c d))")
        tape = get_compiled_tape(program, PARAMS)
        assert tape.plan_for(5) is tape.plan_for(7)  # both bucket to 8
        assert tape.plan_for(9) is not tape.plan_for(7)
        assert tape.plan_for(9) is tape.plan_for(16)

    def test_small_inputs_schedule_no_reductions(self):
        program = compiled("(* (* a b) (* c d))")
        assert get_compiled_tape(program, PARAMS).plan_for(7).reductions == 0

    def test_huge_inputs_stay_bit_identical_to_reference(self):
        # Worst-case magnitudes (t//2 per input) through a depth-3 product
        # tree overflow any unreduced int64 accumulation; the scheduler
        # must insert congruence-preserving reductions and still match the
        # reference evaluator exactly.
        source = "(* (* (* a b) (* c d)) (* (* e f) (* g h)))"
        program = compiled(source)
        huge = PARAMS.plain_modulus // 2
        plan = get_compiled_tape(program, PARAMS).plan_for(huge)
        assert plan.reductions > 0
        names = "abcdefgh"
        inputs = [
            {name: huge for name in names},
            {name: huge - index for index, name in enumerate(names)},
            {name: (huge // (index + 1)) for index, name in enumerate(names)},
        ]
        assert_backend_parity(program, inputs)


class TestAccountingReplay:
    def test_fused_tape_accounting_is_float_identical(self):
        # dot_product_8 is rotation-heavy: fusion rewrites most of its
        # tape, yet every accounting float must equal a metered reference
        # execution because accounting is replayed pre-fusion.
        benchmark = benchmark_by_name("dot_product_8")
        program = api.compile(
            benchmark.expression(), compiler="greedy", name=benchmark.name
        ).circuit
        stats = compile_tape(program, PARAMS).stats
        assert stats["fused_total"] > 0
        inputs = [benchmark.sample_inputs(seed=seed) for seed in range(4)]
        assert_backend_parity(program, inputs)


class TestTapeMemo:
    def test_hit_miss_and_reset_counters(self):
        reset_tape_cache()
        zeros = {"hits": 0, "misses": 0, "compiles": 0, "verified": 0, "findings": 0, "size": 0}
        assert tape_cache_stats() == zeros
        program = compiled("(+ (* a b) c)")
        first = get_compiled_tape(program, PARAMS)
        assert tape_cache_stats() == {**zeros, "misses": 1, "compiles": 1, "size": 1}
        second = get_compiled_tape(program, PARAMS)
        assert second is first
        assert tape_cache_stats()["hits"] == 1
        assert tape_cache_stats()["compiles"] == 1

    def test_memo_is_name_independent_and_params_keyed(self):
        reset_tape_cache()
        first = get_compiled_tape(compiled("(+ (* a b) c)"), PARAMS)
        # A recompiled circuit with a different name is the same content
        # fingerprint — coalesced batches must share one compiled tape.
        renamed = api.compile("(+ (* a b) c)", compiler="greedy", name="other").circuit
        assert get_compiled_tape(renamed, PARAMS) is first
        assert tape_cache_stats()["hits"] == 1
        # Different BFV parameters are a different executable.
        other = get_compiled_tape(renamed, BFVParameters.default(2048))
        assert other is not first
        assert tape_cache_stats()["compiles"] == 2

    def test_backend_instances_share_the_memo(self):
        reset_tape_cache()
        program = compiled("(+ (* a b) c)")
        inputs = [{"a": 2, "b": 3, "c": 4}]
        execute_many(program, inputs, params=PARAMS, backend=VectorVMBackend())
        compiles = tape_cache_stats()["compiles"]
        execute_many(program, inputs, params=PARAMS, backend=VectorVMBackend())
        assert tape_cache_stats()["compiles"] == compiles
        assert tape_cache_stats()["hits"] >= 1


class TestWorkloadRegistrySweep:
    """Whole-registry parity: every workload, every opt level, B in {1,2,7,32}."""

    @pytest.fixture(scope="class")
    def circuits(self):
        table = {}
        for name in available_workloads():
            workload = build_workload(name)
            table[name] = (
                workload,
                api.compile(workload.source, compiler=workload.compiler, name=name).circuit,
            )
        return table

    @pytest.mark.parametrize("name", available_workloads())
    def test_workload_is_bit_identical_across_opt_levels(self, name, circuits):
        workload, program = circuits[name]
        for batch in (1, 2, 7, 32):
            inputs = [workload.sample_inputs(seed=seed) for seed in range(batch)]
            assert_backend_parity(program, inputs)
