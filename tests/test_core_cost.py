"""Unit tests for the FHE-aware analytical cost model."""

import pytest

from repro.core.cost import CostModel, CostWeights, OperationCosts, expression_cost
from repro.ir import parse


class TestOperationCosts:
    def test_paper_cost_values(self):
        costs = OperationCosts()
        assert costs.vec_add == 1.0
        assert costs.vec_mul == 100.0
        assert costs.rotation == 50.0
        assert costs.scalar_op == 250.0

    def test_scalar_expression_cost(self, cost_model):
        # 2 scalar multiplications + 1 scalar addition = 750; depth 2, mult depth 1.
        expr = parse("(+ (* a b) (* c d))")
        assert cost_model.operations_cost(expr) == 750.0
        assert cost_model.cost(expr) == 750.0 + 2 + 1

    def test_vectorized_equivalent_is_cheaper(self, cost_model):
        scalar = parse("(Vec (+ a b) (+ c d))")
        vectorized = parse("(VecAdd (Vec a c) (Vec b d))")
        assert cost_model.cost(vectorized) < cost_model.cost(scalar)

    def test_rotation_cheaper_than_vec_mul(self, cost_model):
        rotated = parse("(<< (VecAdd (Vec a b) (Vec c d)) 1)")
        multiplied = parse("(VecMul (VecAdd (Vec a b) (Vec c d)) (Vec e f))")
        assert cost_model.cost(rotated) < cost_model.cost(multiplied)

    def test_shared_subexpressions_counted_once(self, cost_model):
        shared = parse("(+ (* a b) (* a b))")
        distinct = parse("(+ (* a b) (* c d))")
        assert cost_model.cost(shared) < cost_model.cost(distinct)


class TestWeights:
    def test_default_weights_are_ones(self):
        weights = CostWeights()
        assert (weights.ops, weights.depth, weights.mult_depth) == (1.0, 1.0, 1.0)

    def test_depth_weight_changes_preference(self):
        deep = parse("(* a (* b (* c d)))")        # depth 3, mult depth 3
        balanced = parse("(* (* a b) (* c d))")    # depth 2, mult depth 2
        flat_model = CostModel()
        depth_model = CostModel(weights=CostWeights(ops=1, depth=150, mult_depth=150))
        # Operation counts are identical, so only the depth terms differ.
        assert flat_model.operations_cost(deep) == flat_model.operations_cost(balanced)
        assert depth_model.cost(deep) - depth_model.cost(balanced) > flat_model.cost(deep) - flat_model.cost(balanced)

    def test_breakdown_fields(self, cost_model):
        breakdown = cost_model.breakdown(parse("(+ (* a b) c)"))
        assert breakdown["circuit_depth"] == 2
        assert breakdown["multiplicative_depth"] == 1
        assert breakdown["operations_cost"] == 500.0
        assert breakdown["total"] == cost_model.cost(parse("(+ (* a b) c)"))

    def test_expression_cost_helper(self):
        assert expression_cost(parse("(+ a b)")) == 250.0 + 1

    def test_callable(self, cost_model):
        expr = parse("(* a b)")
        assert cost_model(expr) == cost_model.cost(expr)
