"""Unit tests for ICI tokenization, the vocabulary, BPE and the evaluator."""

import pytest

from repro.ir import ICITokenizer, Vocabulary, canonical_form, parse
from repro.ir.bpe import BPETokenizer
from repro.ir.evaluate import EvaluationError, evaluate, output_arity
from repro.ir.tokenize import ici_tokens


class TestICITokens:
    def test_variables_renamed_in_order(self):
        assert ici_tokens(parse("(+ b a)")) == ["(", "+", "v0", "v1", ")"]

    def test_repeated_variable_same_token(self):
        tokens = ici_tokens(parse("(+ x x)"))
        assert tokens == ["(", "+", "v0", "v0", ")"]

    def test_alpha_renaming_invariance(self):
        assert canonical_form(parse("(+ a (+ b c))")) == canonical_form(parse("(+ x (+ y z))"))

    def test_zero_and_one_stay_literal(self):
        assert ici_tokens(parse("(* x 1)")) == ["(", "*", "v0", "1", ")"]
        assert ici_tokens(parse("(+ x 0)")) == ["(", "+", "v0", "0", ")"]

    def test_other_constants_abstracted(self):
        tokens = ici_tokens(parse("(+ (* 7 x) (* 7 y))"))
        assert tokens.count("c0") == 2
        assert "7" not in tokens

    def test_constant_invariance(self):
        assert canonical_form(parse("(* 5 x)")) == canonical_form(parse("(* 9 y)"))

    def test_distinct_constants_distinct_tokens(self):
        tokens = ici_tokens(parse("(+ (* 5 x) (* 9 x))"))
        assert "c0" in tokens and "c1" in tokens

    def test_different_structure_not_collapsed(self):
        assert canonical_form(parse("(+ a b)")) != canonical_form(parse("(* a b)"))

    def test_rotation_step_abstracted(self):
        tokens = ici_tokens(parse("(<< x 4)"))
        assert "c0" in tokens and "4" not in tokens

    def test_negation_token(self):
        assert ici_tokens(parse("(- x)")) == ["(", "-", "v0", ")"]


class TestVocabulary:
    def test_special_ids_distinct(self):
        vocab = Vocabulary()
        assert len({vocab.pad_id, vocab.cls_id, vocab.unk_id}) == 3

    def test_round_trip(self):
        vocab = Vocabulary()
        tokens = ["(", "+", "v0", "v1", ")"]
        assert vocab.decode(vocab.encode(tokens)) == tokens

    def test_unknown_token_maps_to_unk(self):
        vocab = Vocabulary(max_variables=2)
        assert vocab.token_id("v99") == vocab.unk_id

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary(max_variables=0)


class TestICITokenizer:
    def test_encode_fixed_length(self):
        tokenizer = ICITokenizer(max_length=32)
        ids = tokenizer.encode(parse("(+ a b)"))
        assert len(ids) == 32
        assert ids[0] == tokenizer.vocabulary.cls_id

    def test_attention_mask(self):
        tokenizer = ICITokenizer(max_length=16)
        ids = tokenizer.encode(parse("(+ a b)"))
        mask = tokenizer.attention_mask(ids)
        assert mask[0] == 1
        assert mask[-1] == 0
        assert sum(mask) == 1 + 5

    def test_truncation(self):
        tokenizer = ICITokenizer(max_length=4)
        ids = tokenizer.encode(parse("(+ (+ a b) (+ c d))"))
        assert len(ids) == 4

    def test_max_length_validation(self):
        with pytest.raises(ValueError):
            ICITokenizer(max_length=1)


class TestBPE:
    def _corpus(self):
        return [parse(t) for t in ("(+ a b)", "(+ a c)", "(* a b)", "(+ (* a b) c)", "(* a (+ b c))")]

    def test_requires_training(self):
        with pytest.raises(RuntimeError):
            BPETokenizer().tokenize(parse("(+ a b)"))

    def test_training_learns_merges(self):
        tokenizer = BPETokenizer(vocab_size=64)
        tokenizer.train(self._corpus())
        assert len(tokenizer.merges) > 0
        assert len(tokenizer) > 3

    def test_encode_fixed_length(self):
        tokenizer = BPETokenizer(vocab_size=64, max_length=24)
        tokenizer.train(self._corpus())
        ids = tokenizer.encode(parse("(+ a b)"))
        assert len(ids) == 24
        assert ids[0] == tokenizer.cls_id

    def test_bpe_sequences_longer_than_ici(self):
        tokenizer = BPETokenizer(vocab_size=64)
        tokenizer.train(self._corpus())
        expr = parse("(+ (* alpha beta) gamma)")
        assert len(tokenizer.tokenize(expr)) >= len(ici_tokens(expr))

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            BPETokenizer().train([])


class TestEvaluate:
    def test_scalar_arithmetic(self):
        assert evaluate(parse("(+ (* a b) c)"), {"a": 2, "b": 3, "c": 4})[0] == 10

    def test_subtraction_and_negation(self):
        assert evaluate(parse("(- a b)"), {"a": 2, "b": 5})[0] == -3
        assert evaluate(parse("(- a)"), {"a": 2})[0] == -2

    def test_constant_broadcast(self):
        slots = evaluate(parse("7"), {}, slot_count=4)
        assert slots == [7, 7, 7, 7]

    def test_vec_places_elements(self):
        slots = evaluate(parse("(Vec a b 1)"), {"a": 3, "b": 4}, slot_count=5)
        assert slots[:3] == [3, 4, 1]

    def test_vector_ops_elementwise(self):
        slots = evaluate(
            parse("(VecMul (Vec a c) (Vec b d))"),
            {"a": 2, "b": 3, "c": 4, "d": 5},
            slot_count=4,
        )
        assert slots[:2] == [6, 20]

    def test_rotation_moves_slots(self):
        slots = evaluate(parse("(<< (Vec a b c) 1)"), {"a": 1, "b": 2, "c": 3}, slot_count=8)
        assert slots[0] == 2 and slots[1] == 3

    def test_vector_variable_binding(self):
        slots = evaluate(parse("(VecAdd v w)"), {"v": [1, 2, 3], "w": [10, 20, 30]}, slot_count=4)
        assert slots[:3] == [11, 22, 33]

    def test_modular_evaluation(self):
        assert evaluate(parse("(* a a)"), {"a": 10}, modulus=7)[0] == 100 % 7

    def test_unbound_variable_raises(self):
        with pytest.raises(EvaluationError):
            evaluate(parse("(+ a b)"), {"a": 1})

    @pytest.mark.parametrize(
        "text, arity",
        [
            ("(+ a b)", 1),
            ("(Vec a b c)", 3),
            ("(VecAdd (Vec a b) (Vec c d))", 2),
            ("(<< (Vec a b c d) 1)", 4),
        ],
    )
    def test_output_arity(self, text, arity):
        assert output_arity(parse(text)) == arity
