"""Unit tests for NAF decomposition and rotation-key selection (Appendix B)."""

import pytest

from repro.fhe.rotation_keys import naf_decomposition, select_rotation_keys


class TestNAF:
    @pytest.mark.parametrize(
        "step, expected",
        [
            (0, []),
            (1, [1]),
            (2, [2]),
            (3, [-1, 4]),
            (4, [4]),
            (5, [1, 4]),
            (6, [-2, 8]),
            (7, [-1, 8]),
            (9, [1, 8]),
            (10, [2, 8]),
            (12, [-4, 16]),
            (15, [-1, 16]),
        ],
    )
    def test_paper_examples(self, step, expected):
        assert naf_decomposition(step) == expected

    @pytest.mark.parametrize("step", list(range(-20, 21)))
    def test_decomposition_sums_to_step(self, step):
        assert sum(naf_decomposition(step)) == step

    def test_no_adjacent_nonzero_digits(self):
        for step in range(1, 200):
            magnitudes = sorted(abs(c) for c in naf_decomposition(step))
            for first, second in zip(magnitudes, magnitudes[1:]):
                assert second // first >= 4 or second != first * 2

    def test_negative_steps(self):
        assert naf_decomposition(-3) == [1, -4]


class TestSelection:
    def test_appendix_example_fits_budget(self):
        steps = [1, 2, 3, 4, 5, 6, 7, 9, 10, 12, 11, 13, 15]
        plan = select_rotation_keys(steps, slot_count=16, beta=9)
        assert plan.key_count <= 9
        # Every original step must be realisable from generated keys.
        for step in steps:
            realization = plan.realization(step)
            assert sum(realization) == step
            assert all(part in plan.generated_steps for part in realization)

    def test_fewer_keys_than_naive(self):
        steps = [1, 2, 3, 4, 5, 6, 7, 9, 10, 12, 11, 13, 15]
        plan = select_rotation_keys(steps, slot_count=16, beta=9)
        assert plan.key_count < len(steps)

    def test_power_of_two_steps_stay_direct(self):
        plan = select_rotation_keys([1, 2, 4, 8], slot_count=64)
        assert set(plan.direct) == {1, 2, 4, 8}
        assert plan.rotation_count(4) == 1

    def test_default_budget_is_two_log_n(self):
        plan = select_rotation_keys(range(1, 30), slot_count=1024)
        assert plan.key_count <= 2 * 10

    def test_zero_step_realization(self):
        plan = select_rotation_keys([3], slot_count=16)
        assert plan.realization(0) == ()

    def test_unknown_step_raises(self):
        plan = select_rotation_keys([3], slot_count=16)
        with pytest.raises(KeyError):
            plan.realization(9)

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            select_rotation_keys([1, 2], slot_count=16, beta=0)

    def test_decomposed_steps_cost_multiple_rotations(self):
        plan = select_rotation_keys([1, 2, 3, 5, 7, 9, 11, 13, 15], slot_count=16, beta=5)
        decomposed = [step for step in (3, 5, 7, 9, 11, 13, 15) if step in plan.decomposed]
        assert decomposed, "expected at least one step to be decomposed under a tight budget"
        for step in decomposed:
            assert plan.rotation_count(step) >= 2
