"""Tests of the job-orchestration server.

Covers the job model (JSON round-trip including the circuit codec), the
persistent JSONL store (replay, cross-process polling, compaction, crash
recovery), the priority queue, the batch coalescer, the :class:`JobServer`
lifecycle (mixed workloads, coalescing telemetry, retries, priorities,
background serving), the ``repro.api`` client surface
(``serve``/``submit``/``status``/``result``), the server CLI, the
``BenchmarkRunner(server=...)`` load-generator routing, and the satellite
changes that ride along: the bounded LRU measured-time table of
:class:`ExecutionService` and the ``seed``/``input_range`` parameters of
``api.execute``/``api.execute_batch``.
"""

from __future__ import annotations

import json
import threading

import pytest

import repro
from repro import api
from repro.__main__ import main as cli_main
from repro.compiler import build_compiler
from repro.fhe.params import BFVParameters
from repro.ir.printer import to_sexpr
from repro.kernels.registry import benchmark_by_name, small_benchmark_suite
from repro.server import (
    CoalescedGroup,
    Job,
    JobQueue,
    JobServer,
    JobState,
    JobStore,
    MetricsRegistry,
    circuit_from_record,
    circuit_to_record,
    coalesce,
)
from repro.server.telemetry import (
    Histogram,
    SLOClass,
    SLOPolicy,
    SLOTracker,
    percentile_from_snapshot,
)
from repro.service import ExecutionJob, ExecutionService

PARAMS = BFVParameters.default(1024)
SOURCE = "(* (+ a b) (+ c d))"


@pytest.fixture(scope="module")
def compiled_kernels():
    """A few benchmark kernels compiled once for server-level tests."""
    compiler = build_compiler("initial")
    kernels = {}
    for name in ("dot_product_4", "l2_distance_4", "hamming_distance_4"):
        benchmark = benchmark_by_name(name)
        report = compiler.compile_expression(benchmark.expression(), name=name)
        kernels[name] = (benchmark, report.circuit)
    return kernels


def make_server(tmp_path=None, **kwargs):
    kwargs.setdefault("backend", "vector-vm")
    kwargs.setdefault("params", PARAMS)
    return JobServer(str(tmp_path) if tmp_path is not None else None, **kwargs)


# ---------------------------------------------------------------------------
# telemetry
# ---------------------------------------------------------------------------
class TestTelemetry:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("events").inc()
        registry.counter("events").inc(2)
        registry.gauge("depth").set(5)
        registry.gauge("depth").dec()
        snapshot = registry.snapshot()
        assert snapshot["counters"]["events"] == 3
        assert snapshot["gauges"]["depth"] == 4
        with pytest.raises(ValueError, match="only go up"):
            registry.counter("events").inc(-1)

    def test_histogram_buckets_and_stats(self):
        histogram = Histogram("lat", bounds=(0.1, 1.0))
        for value in (0.05, 0.5, 0.9, 5.0):
            histogram.observe(value)
        payload = histogram.as_dict()
        assert payload["count"] == 4
        assert payload["min"] == 0.05 and payload["max"] == 5.0
        assert payload["buckets"] == {"le_0.1": 1, "le_1": 2, "overflow": 1}
        with pytest.raises(ValueError, match="sorted"):
            Histogram("bad", bounds=(1.0, 0.1))

    def test_snapshot_is_json_serializable_and_written(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.histogram("h").observe(0.2)
        path = tmp_path / "metrics.json"
        written = registry.write_snapshot(str(path))
        assert json.loads(path.read_text()) == json.loads(json.dumps(written))

    def test_thread_safety_of_counters(self):
        registry = MetricsRegistry()

        def spin():
            for _ in range(1000):
                registry.counter("n").inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("n").value == 4000


# ---------------------------------------------------------------------------
# job model
# ---------------------------------------------------------------------------
class TestJobModel:
    def test_validation(self):
        with pytest.raises(ValueError, match="source expression or a pre-lowered"):
            Job(source=None)
        with pytest.raises(ValueError, match="'compile' or 'execute'"):
            Job(source=SOURCE, kind="transmogrify")

    def test_record_round_trip(self):
        job = Job(
            source=SOURCE,
            compiler="coyote",
            compiler_options={"layout_candidates": 4},
            backend="vector-vm",
            inputs={"a": 1, "b": 2, "c": 3, "d": 4},
            priority=3,
            max_retries=2,
            name="quad",
        )
        clone = Job.from_record(json.loads(json.dumps(job.to_record())))
        assert clone.id == job.id
        assert clone.compiler_options == {"layout_candidates": 4}
        assert clone.inputs == job.inputs
        assert clone.priority == 3 and clone.max_retries == 2
        assert clone.status is JobState.QUEUED

    def test_circuit_codec_round_trip(self, compiled_kernels):
        _, circuit = compiled_kernels["dot_product_4"]
        clone = circuit_from_record(json.loads(json.dumps(circuit_to_record(circuit))))
        assert clone.name == circuit.name
        assert clone.outputs == circuit.outputs
        assert clone.scalar_inputs == circuit.scalar_inputs
        assert clone.instructions == circuit.instructions

    def test_program_job_survives_store(self, tmp_path, compiled_kernels):
        benchmark, circuit = compiled_kernels["dot_product_4"]
        job = Job(program=circuit, inputs=benchmark.sample_inputs(seed=0))
        store = JobStore(str(tmp_path))
        store.append(job)
        replayed = JobStore(str(tmp_path)).replay()[job.id]
        assert replayed.program.instructions == circuit.instructions


# ---------------------------------------------------------------------------
# store
# ---------------------------------------------------------------------------
class TestJobStore:
    def test_replay_newest_wins(self, tmp_path):
        store = JobStore(str(tmp_path))
        job = Job(source=SOURCE)
        store.append(job)
        job.status = JobState.COMPLETED
        job.result = {"ok": True}
        store.append(job)
        replayed = JobStore(str(tmp_path)).replay()
        assert replayed[job.id].status is JobState.COMPLETED
        assert replayed[job.id].result == {"ok": True}

    def test_poll_sees_only_foreign_appends(self, tmp_path):
        server_store = JobStore(str(tmp_path))
        own = Job(source=SOURCE)
        server_store.append(own)
        assert server_store.poll() == []  # own append fast-forwards the offset
        client = JobStore(str(tmp_path))
        foreign = Job(source=SOURCE)
        client.append(foreign)
        polled = server_store.poll()
        assert [job.id for job in polled] == [foreign.id]
        assert server_store.poll() == []

    def test_partial_line_left_for_next_poll(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.replay()
        with open(store.log_path, "a", encoding="utf-8") as handle:
            handle.write('{"id": "job-x", "kind": "execute", "source": "(+ a b)"')
        assert store.poll() == []  # no trailing newline yet
        with open(store.log_path, "a", encoding="utf-8") as handle:
            handle.write(', "status": "queued"}\n')
        assert [job.id for job in store.poll()] == ["job-x"]

    def test_compact_rewrites_one_record_per_job(self, tmp_path):
        store = JobStore(str(tmp_path))
        job = Job(source=SOURCE)
        for status in (JobState.QUEUED, JobState.RUNNING, JobState.COMPLETED):
            job.status = status
            store.append(job)
        store.compact([job])
        lines = [
            line
            for line in open(store.log_path, encoding="utf-8").read().splitlines()
            if line
        ]
        assert len(lines) == 1
        assert json.loads(lines[0])["status"] == "completed"

    def test_in_memory_store(self):
        store = JobStore(None)
        assert not store.persistent
        job = Job(source=SOURCE)
        store.append(job)
        assert store.poll() == []  # own appends are not re-polled
        assert list(store.replay()) == [job.id]

    def test_poll_recovers_from_concurrent_compaction(self, tmp_path):
        watcher = JobStore(str(tmp_path))
        writer = JobStore(str(tmp_path))
        job = Job(source=SOURCE)
        for status in (JobState.QUEUED, JobState.RUNNING, JobState.COMPLETED):
            job.status = status
            writer.append(job)
        watcher.replay()  # offset now at the 3-record end
        writer.compact([job])  # log shrinks below the watcher's offset
        late = Job(source=SOURCE)
        writer.append(late)
        polled = {item.id for item in watcher.poll()}
        assert late.id in polled  # re-read from the start, nothing missed

    def test_poll_detects_compaction_that_regrows_past_offset(self, tmp_path):
        """A size-only shrink heuristic misses this: the external compaction
        shrinks the log, but by the time the watcher polls, fresh appends
        have regrown it past the watcher's saved offset — a seek there lands
        in the middle of a record of the *new* log."""
        watcher = JobStore(str(tmp_path))
        writer = JobStore(str(tmp_path))
        job = Job(source=SOURCE)
        writer.append(job)
        job.status = JobState.RUNNING
        writer.append(job)
        watcher.replay()  # offset at the 2-record end
        job.status = JobState.COMPLETED
        writer.compact([job])  # 1 record, different length than the prefix
        late = [Job(source=SOURCE) for _ in range(3)]
        for item in late:
            writer.append(item)  # log is now longer than the saved offset
        polled = {item.id for item in watcher.poll()}
        assert all(item.id in polled for item in late)

    def test_compaction_generation_counter_increments(self, tmp_path):
        store = JobStore(str(tmp_path))
        job = Job(source=SOURCE)
        store.append(job)
        assert store._read_generation() == 0
        store.compact([job])
        assert store._read_generation() == 1
        store.compact([job])
        assert store._read_generation() == 2

    def test_generation_change_alone_forces_reread(self, tmp_path):
        """The inode-ABA case: if a later compaction's temp file reused the
        watched log's freed inode, (st_dev, st_ino) alone would match — the
        generation counter still flags the replacement."""
        watcher = JobStore(str(tmp_path))
        writer = JobStore(str(tmp_path))
        job = Job(source=SOURCE)
        writer.append(job)
        watcher.replay()
        with open(watcher.generation_path, "w", encoding="utf-8") as handle:
            handle.write("7\n")  # same inode, bumped generation
        late = Job(source=SOURCE)
        writer.append(late)
        polled = {item.id for item in watcher.poll()}
        assert {job.id, late.id} <= polled  # re-read from the start

    def test_append_after_external_compaction_is_not_skipped(self, tmp_path):
        """Appending must not fast-forward the poll offset across a log that
        another process replaced: the compacted records would be skipped."""
        writer = JobStore(str(tmp_path))
        compactor = JobStore(str(tmp_path))
        job = Job(source=SOURCE)
        writer.append(job)
        writer.replay()  # writer has seen everything so far
        foreign = Job(source=SOURCE)
        compactor.compact([job, foreign])  # new inode, unseen by writer
        own = Job(source=SOURCE)
        writer.append(own)  # lands on the replaced log
        polled = {item.id for item in writer.poll()}
        assert foreign.id in polled  # the compacted-in job is still seen

    def test_read_only_access_does_not_create_state_dir(self, tmp_path):
        missing = tmp_path / "never-written"
        store = JobStore(str(missing))
        assert store.replay() == {} and store.poll() == []
        assert not missing.exists()
        store.append(Job(source=SOURCE))  # first write creates it
        assert missing.exists()

    def test_append_records_batch_is_one_log_write(self, tmp_path):
        store = JobStore(str(tmp_path))
        jobs = [Job(source=SOURCE) for _ in range(3)]
        store.append_records([job.to_record() for job in jobs])
        assert store.poll() == []  # offset fast-forwarded past the batch
        assert set(JobStore(str(tmp_path)).replay()) == {job.id for job in jobs}


# ---------------------------------------------------------------------------
# queue
# ---------------------------------------------------------------------------
class TestJobQueue:
    def test_priority_then_fifo(self):
        queue = JobQueue()
        low1 = Job(source=SOURCE, priority=0)
        high = Job(source=SOURCE, priority=5)
        low2 = Job(source=SOURCE, priority=0)
        for job in (low1, high, low2):
            queue.push(job)
        assert [job.id for job in queue.pop_batch()] == [high.id, low1.id, low2.id]

    def test_pop_timeout(self):
        queue = JobQueue()
        assert queue.pop(timeout=0.01) is None
        assert queue.pop_batch(timeout=0.01) == []

    def test_len_and_clear(self):
        queue = JobQueue()
        queue.push(Job(source=SOURCE))
        assert len(queue) == 1
        queue.clear()
        assert len(queue) == 0


# ---------------------------------------------------------------------------
# coalescer
# ---------------------------------------------------------------------------
class TestCoalescer:
    def test_groups_by_fingerprint_and_backend(self, compiled_kernels):
        benchmark_a, circuit_a = compiled_kernels["dot_product_4"]
        benchmark_b, circuit_b = compiled_kernels["l2_distance_4"]
        jobs = [Job(program=circuit_a, inputs=benchmark_a.sample_inputs(s)) for s in range(3)]
        other = Job(program=circuit_b, inputs=benchmark_b.sample_inputs(0))
        cross = Job(program=circuit_a, inputs=benchmark_a.sample_inputs(9))
        entries = [
            (job, job.program, [job.inputs], "vector-vm") for job in jobs
        ]
        entries.append((other, other.program, [other.inputs], "vector-vm"))
        entries.append((cross, cross.program, [cross.inputs], "reference"))
        groups = coalesce(entries)
        assert len(groups) == 3
        first = groups[0]
        assert first.coalesced and len(first.jobs) == 3
        assert first.batched_inputs == [job.inputs for job in jobs]
        assert first.slices() == [(0, 1), (1, 2), (2, 3)]
        assert not groups[1].coalesced
        assert groups[2].backend_key == "reference"

    def test_identical_circuits_different_objects_share_group(self, compiled_kernels):
        benchmark, circuit = compiled_kernels["dot_product_4"]
        clone = circuit_from_record(circuit_to_record(circuit))
        one = Job(program=circuit, inputs=benchmark.sample_inputs(0))
        two = Job(program=clone, inputs=benchmark.sample_inputs(1))
        groups = coalesce(
            [
                (one, circuit, [one.inputs], "vector-vm"),
                (two, clone, [two.inputs], "vector-vm"),
            ]
        )
        assert len(groups) == 1 and len(groups[0].jobs) == 2


# ---------------------------------------------------------------------------
# the server
# ---------------------------------------------------------------------------
class TestJobServer:
    def test_mixed_workload_coalesces_and_verifies(self):
        server = make_server()
        execute_ids = [server.submit(Job(source=SOURCE, seed=seed)) for seed in range(5)]
        compile_id = server.submit(Job(source="(+ (* a b) c)", kind="compile"))
        explicit = server.submit(
            Job(source="(+ x y)", inputs={"x": 2, "y": 3})
        )
        processed = server.drain()
        assert processed == 7
        for job_id in execute_ids:
            payload = server.result(job_id)
            assert payload["correct"] and payload["coalesced_batch"] == 5
        assert server.result(explicit)["outputs"] == [[5]]
        compile_payload = server.result(compile_id)
        assert compile_payload["final_cost"] <= compile_payload["initial_cost"]
        counters = server.telemetry.snapshot()["counters"]
        assert counters["batches_coalesced"] >= 1
        assert counters["coalesced_jobs"] == 5
        assert counters["jobs_completed"] == 7
        assert counters["jobs_submitted"] == 7

    def test_seed_and_input_range_drive_sampling(self):
        server = make_server()
        narrow = server.submit(Job(source="(+ a b)", seed=3, input_range=0))
        wide = server.submit(Job(source="(+ a b)", seed=3, input_range=100))
        server.drain()
        narrow_inputs = server.result(narrow)["inputs"][0]
        assert set(narrow_inputs.values()) == {0}
        wide_inputs = server.result(wide)["inputs"][0]
        assert narrow_inputs != wide_inputs
        # Same seed and range as the facade's sampler: outcomes agree.
        outcome = api.execute("(+ a b)", seed=3, input_range=100)
        assert outcome.inputs == wide_inputs

    def test_unknown_compiler_fails_after_retries(self):
        server = make_server()
        job = Job(source=SOURCE, compiler="does-not-exist", max_retries=2)
        server.submit(job)
        server.drain()
        assert job.status is JobState.FAILED
        assert job.attempts == 3  # initial try + 2 retries
        with pytest.raises(RuntimeError, match="does-not-exist"):
            server.result(job.id)
        counters = server.telemetry.snapshot()["counters"]
        assert counters["jobs_retried"] == 2
        assert counters["jobs_failed"] == 1

    def test_unknown_backend_fails(self):
        server = make_server()
        job = Job(source=SOURCE, backend="warp-drive")
        server.submit(job)
        server.drain()
        assert job.status is JobState.FAILED
        assert "warp-drive" in job.error

    def test_priority_orders_processing(self):
        server = make_server()
        slow = Job(source=SOURCE, priority=0)
        fast = Job(source="(+ (* a b) c)", priority=9)
        server.submit(slow)
        server.submit(fast)
        server.drain()
        # Both completed; the higher priority job started no later.
        assert fast.started_at <= slow.started_at
        assert fast.status is JobState.COMPLETED and slow.status is JobState.COMPLETED

    def test_tick_interleaves_kinds_priorities_and_backends(self):
        """One tick over compile + execute jobs spread across priorities and
        both output-producing backends: everything terminal in that tick,
        coalescing per backend, nothing merged across backends."""
        server = make_server()
        vm_jobs = [
            Job(source=SOURCE, seed=seed, priority=seed % 3) for seed in range(4)
        ]
        ref_jobs = [
            Job(source=SOURCE, seed=seed, backend="reference", priority=1)
            for seed in range(2)
        ]
        other = Job(source="(+ (* a b) c)", seed=7, priority=2)
        compiles = [
            Job(source="(+ (* a b) c)", kind="compile", priority=5),
            Job(source=SOURCE, kind="compile", priority=0),
        ]
        for job in [*vm_jobs, *ref_jobs, other, *compiles]:
            server.submit(job)
        processed = server.tick()
        assert processed == 9
        assert all(
            job.status is JobState.COMPLETED
            for job in [*vm_jobs, *ref_jobs, other, *compiles]
        )
        # Same source, different backends: two separate groups.
        assert server.result(vm_jobs[0].id)["coalesced_batch"] == 4
        assert server.result(ref_jobs[0].id)["coalesced_batch"] == 2
        assert server.result(ref_jobs[0].id)["backend"] == "reference"
        assert all(server.result(job.id)["correct"] for job in [*vm_jobs, *ref_jobs, other])
        counters = server.telemetry.snapshot()["counters"]
        assert counters["batches_total"] == 3  # SOURCE x 2 backends + other
        assert counters["executions_total"] == 7
        assert counters["jobs_completed"] == 9

    def test_coalescing_never_reorders_across_priorities(self, compiled_kernels):
        """Groups come back ordered by their first (highest-priority) member
        and keep member order within the group, so coalescing merges equal
        circuits without ever promoting low-priority work past distinct
        high-priority work."""
        _, shared = compiled_kernels["dot_product_4"]
        _, distinct = compiled_kernels["l2_distance_4"]
        high = Job(program=shared, priority=9)
        middle = Job(program=distinct, priority=5)
        low = Job(program=shared, priority=0)
        entries = [  # already in queue (priority) order
            (high, shared, [{"a": 1}], "vector-vm"),
            (middle, distinct, [{"a": 2}], "vector-vm"),
            (low, shared, [{"a": 3}], "vector-vm"),
        ]
        groups = coalesce(entries)
        assert [group.jobs[0].id for group in groups] == [high.id, middle.id]
        assert [job.id for job in groups[0].jobs] == [high.id, low.id]
        assert groups[0].batched_inputs == [{"a": 1}, {"a": 3}]

    def test_failed_then_retried_jobs_do_not_inflate_drain_count(self):
        """drain() counts each job once, when it reaches a terminal state —
        retried attempts are requeued, not counted."""
        server = make_server()
        good = [Job(source=SOURCE, seed=seed) for seed in range(3)]
        flaky = Job(source=SOURCE, compiler="does-not-exist", max_retries=2)
        for job in [*good, flaky]:
            server.submit(job)
        processed = server.drain()
        assert processed == 4  # 3 completed + 1 failed, each counted once
        counters = server.telemetry.snapshot()["counters"]
        assert counters["jobs_retried"] == 2
        assert counters["jobs_failed"] == 1
        assert counters["jobs_completed"] == 3
        assert flaky.attempts == 3

    def test_duplicate_submission_rejected(self):
        server = make_server()
        job = Job(source=SOURCE)
        server.submit(job)
        with pytest.raises(ValueError, match="already submitted"):
            server.submit(job)

    def test_result_without_drain_raises(self):
        server = make_server()
        job_id = server.submit(Job(source=SOURCE))
        with pytest.raises(RuntimeError, match="queued"):
            server.result(job_id)
        with pytest.raises(KeyError, match="unknown job id"):
            server.status("job-nope")

    def test_persistence_restart_and_crash_recovery(self, tmp_path):
        server = make_server(tmp_path)
        done = server.submit(Job(source=SOURCE, inputs={"a": 1, "b": 2, "c": 3, "d": 4}))
        server.drain()
        server.close()

        # A "crashed" run left a job marked running in the log.
        crashed = Job(source="(+ x y)", inputs={"x": 1, "y": 1})
        crashed.status = JobState.RUNNING
        JobStore(str(tmp_path)).append(crashed)

        reborn = make_server(tmp_path)
        assert reborn.status(done)["status"] == "completed"
        assert reborn.result(done)["outputs"] == [[21]]
        assert reborn.telemetry.counter("jobs_recovered").value == 1
        reborn.drain()
        assert reborn.result(crashed.id)["outputs"] == [[2]]
        assert (tmp_path / "metrics.json").exists()

    def test_store_submission_is_polled_in(self, tmp_path):
        server = make_server(tmp_path)
        client = JobStore(str(tmp_path))
        job = Job(source=SOURCE, seed=1)
        client.append(job)
        server.drain()
        assert server.result(job.id)["correct"]

    def test_background_serving(self):
        server = make_server(poll_interval=0.005).start()
        try:
            job_ids = [server.submit(Job(source=SOURCE, seed=seed)) for seed in range(4)]
            for job_id in job_ids:
                assert server.result(job_id, wait=True, timeout=30.0)["correct"]
        finally:
            server.close()

    def test_program_jobs_execute(self, compiled_kernels):
        benchmark, circuit = compiled_kernels["dot_product_4"]
        server = make_server()
        inputs = benchmark.sample_inputs(seed=2)
        job = Job(program=circuit, inputs=inputs)
        server.submit(job)
        server.drain()
        payload = server.result(job.id)
        # Program-only jobs carry no source expression, so the server cannot
        # verify them itself; the caller (the harness) checks the outputs.
        assert payload["verified"] is False
        assert payload["outputs"][0] == list(benchmark.reference(inputs))

    def test_workers_validation(self):
        with pytest.raises(ValueError, match="workers"):
            JobServer(workers=0)


# ---------------------------------------------------------------------------
# api surface
# ---------------------------------------------------------------------------
class TestServerApi:
    def test_serve_submit_status_result(self):
        server = api.serve(backend="vector-vm", start=False)
        job_id = api.submit(SOURCE, {"a": 1, "b": 2, "c": 3, "d": 4}, server=server)
        assert api.status(job_id, server=server)["status"] == "queued"
        server.drain()
        payload = api.result(job_id, server=server, wait=False)
        assert payload["correct"] and payload["outputs"] == [[21]]

    def test_submit_to_state_dir_and_drain_elsewhere(self, tmp_path):
        state_dir = str(tmp_path)
        job_id = api.submit(SOURCE, seed=4, state_dir=state_dir)
        assert api.status(job_id, state_dir=state_dir)["status"] == "queued"
        server = api.serve(state_dir, backend="vector-vm", start=False)
        server.drain()
        server.close()
        payload = api.result(job_id, state_dir=state_dir, wait=False)
        assert payload["correct"]

    def test_server_and_state_dir_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            api.submit(SOURCE, server=object(), state_dir="/tmp/x")

    def test_facade_exports(self):
        for name in ("serve", "submit", "status", "result", "default_server"):
            assert callable(getattr(repro, name))

    def test_execute_input_range_and_seed_exposed(self):
        narrow = api.execute("(+ a b)", seed=5, input_range=0)
        assert set(narrow.inputs.values()) == {0} and narrow.correct
        wide = api.execute("(+ a b)", seed=5, input_range=1000)
        assert narrow.inputs != wide.inputs and wide.correct
        batch = api.execute_batch("(+ a b)", batch=3, seed=5, input_range=0)
        assert all(set(item.values()) == {0} for item in batch.inputs)
        assert batch.all_correct

    def test_run_cli_input_range(self, capsys):
        assert cli_main(["run", "(+ a b)", "--seed", "5", "--input-range", "0"]) == 0
        out = capsys.readouterr().out
        assert '"a": 0' in out and '"b": 0' in out
        assert (
            cli_main(
                ["run-batch", "(+ a b)", "--batch", "2", "--seed", "5", "--input-range", "0"]
            )
            == 0
        )


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestServerCli:
    def test_submit_serve_jobs_metrics(self, tmp_path, capsys):
        state = str(tmp_path)
        assert cli_main(["submit", SOURCE, "--state-dir", state, "--seed", "1"]) == 0
        assert cli_main(["submit", SOURCE, "--state-dir", state, "--seed", "2"]) == 0
        assert (
            cli_main(
                ["submit", "(+ (* a b) c)", "--state-dir", state, "--kind", "compile"]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            cli_main(["serve", "--state-dir", state, "--backend", "vector-vm", "--drain"])
            == 0
        )
        out = capsys.readouterr().out
        assert "drained 3 job(s)" in out
        assert cli_main(["jobs", "--state-dir", state]) == 0
        out = capsys.readouterr().out
        assert out.count("completed") == 3 and "3 job(s)" in out
        assert cli_main(["metrics", "--state-dir", state]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["counters"]["batches_coalesced"] >= 1

    def test_metrics_before_serve_fails(self, tmp_path, capsys):
        assert cli_main(["metrics", "--state-dir", str(tmp_path)]) == 1

    def test_jobs_status_filter(self, tmp_path, capsys):
        state = str(tmp_path)
        cli_main(["submit", SOURCE, "--state-dir", state])
        capsys.readouterr()
        assert cli_main(["jobs", "--state-dir", state, "--status", "queued"]) == 0
        assert "1 job(s)" in capsys.readouterr().out
        assert cli_main(["jobs", "--state-dir", state, "--status", "failed"]) == 0
        assert "0 job(s)" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# harness routing
# ---------------------------------------------------------------------------
class TestHarnessServerRouting:
    def test_runner_routes_through_server_with_identical_rows(self):
        from repro.experiments.harness import BenchmarkRunner

        suite = small_benchmark_suite()[:3]
        # Default params on both sides, so latency/noise figures must match
        # the direct path bit for bit.
        server = JobServer(backend="vector-vm")
        routed = BenchmarkRunner(
            {"greedy": "greedy"}, backend="vector-vm", server=server
        ).run(suite)
        direct = BenchmarkRunner({"greedy": "greedy"}, backend="vector-vm").run(suite)
        assert [r.correct for r in routed] == [True] * len(suite)
        for a, b in zip(routed, direct):
            assert (a.benchmark, a.execution_latency_ms, a.consumed_noise_budget) == (
                b.benchmark,
                b.execution_latency_ms,
                b.consumed_noise_budget,
            )
        assert server.telemetry.snapshot()["counters"]["jobs_completed"] == len(suite)


# ---------------------------------------------------------------------------
# satellite: bounded measured-time table (LRU) in ExecutionService
# ---------------------------------------------------------------------------
class TestMeasuredTimeLRU:
    def _circuits(self, count):
        compiler = build_compiler("initial")
        suite = small_benchmark_suite()
        return [
            compiler.compile_expression(b.expression(), name=b.name).circuit
            for b in suite[:count]
        ]

    def test_eviction_beyond_capacity(self):
        circuits = self._circuits(5)
        service = ExecutionService("vector-vm", params=PARAMS, max_measured=3)
        for circuit in circuits:
            service.record_measurement(circuit, 0.01, 1)
        assert service.measured_circuits == 3
        # Oldest two evicted: back to the analytical model.
        assert service.estimate_ms(circuits[0])[1] == "model"
        assert service.estimate_ms(circuits[1])[1] == "model"
        for circuit in circuits[2:]:
            assert service.estimate_ms(circuit)[1] == "measured"

    def test_estimate_touch_refreshes_recency(self):
        circuits = self._circuits(3)
        service = ExecutionService("vector-vm", params=PARAMS, max_measured=2)
        service.record_measurement(circuits[0], 0.01, 1)
        service.record_measurement(circuits[1], 0.01, 1)
        # Touch circuit 0 so circuit 1 becomes the LRU victim.
        assert service.estimate_ms(circuits[0])[1] == "measured"
        service.record_measurement(circuits[2], 0.01, 1)
        assert service.estimate_ms(circuits[0])[1] == "measured"
        assert service.estimate_ms(circuits[1])[1] == "model"

    def test_update_does_not_grow_table(self):
        circuits = self._circuits(2)
        service = ExecutionService("vector-vm", params=PARAMS, max_measured=2)
        for _ in range(5):
            for circuit in circuits:
                service.record_measurement(circuit, 0.01, 1)
        assert service.measured_circuits == 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="max_measured"):
            ExecutionService("vector-vm", max_measured=0)


# ---------------------------------------------------------------------------
# satellite: timer-augmented re-scheduling prefers measured times
# ---------------------------------------------------------------------------
class TestTimerAugmentedRescheduling:
    def test_second_run_jobs_uses_measured_estimates(self):
        compiler = build_compiler("initial")
        suite = small_benchmark_suite()[:3]
        jobs = [
            ExecutionJob(
                program=compiler.compile_expression(b.expression(), name=b.name).circuit,
                inputs=[b.sample_inputs(seed=0)],
                name=b.name,
            )
            for b in suite
        ]
        service = ExecutionService("vector-vm", params=PARAMS)
        first = service.run_jobs(jobs)
        assert {record.estimate_source for record in first.records} == {"model"}
        second = service.run_jobs(jobs)
        assert {record.estimate_source for record in second.records} == {"measured"}
        # The measured weight is a real timer, not the model figure.
        for job, record in zip(jobs, second.records):
            model_ms = job.program.estimated_latency_ms(service._latency_model)
            assert record.estimate_ms != pytest.approx(model_ms)

    def test_benchmark_runner_reruns_prefer_measured(self):
        from repro.experiments.harness import BenchmarkRunner

        suite = small_benchmark_suite()[:2]
        runner = BenchmarkRunner({"greedy": "greedy"}, backend="vector-vm")
        runner.run(suite)
        service = runner.execution_service
        assert service.measured_circuits == len(suite)
        # A second harness run schedules every circuit from recorded timers.
        for benchmark in suite:
            report = runner.services["greedy"].compile_expression(
                benchmark.expression(), name=benchmark.name
            )
            _, source = service.estimate_ms(report.circuit)
            assert source == "measured"
        runner.run(suite)
        assert service.measured_circuits == len(suite)

    def test_server_reschedules_repeat_circuits_from_timers(self):
        server = make_server()
        first = server.submit(Job(source=SOURCE, seed=0))
        server.drain()
        assert server.result(first)["estimate_source"] == "model"
        second = server.submit(Job(source=SOURCE, seed=1))
        server.drain()
        assert server.result(second)["estimate_source"] == "measured"


class TestHistogramPercentile:
    BOUNDS = (1.0, 2.0, 4.0, 8.0)
    VALUES = (0.5, 1.5, 1.7, 3.0, 3.5, 5.0, 7.0, 9.0)

    def _containing_bucket(self, value, minimum, maximum):
        lo = minimum
        for bound in self.BOUNDS:
            if value <= bound:
                return max(lo, minimum), min(bound, maximum)
            lo = bound
        return max(lo, minimum), maximum

    def test_estimate_error_bounded_by_containing_bucket(self):
        """The interpolated percentile always lies inside the bucket that
        holds the true rank statistic — error <= that bucket's width."""
        import math

        hist = Histogram("h", bounds=self.BOUNDS)
        for value in self.VALUES:
            hist.observe(value)
        ordered = sorted(self.VALUES)
        for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            true_value = ordered[math.ceil(q * len(ordered)) - 1]
            lo, hi = self._containing_bucket(true_value, ordered[0], ordered[-1])
            estimate = hist.percentile(q)
            assert lo <= estimate <= hi, (q, estimate, (lo, hi))
            assert abs(estimate - true_value) <= hi - lo

    def test_clamps_and_edge_cases(self):
        hist = Histogram("h", bounds=self.BOUNDS)
        assert hist.percentile(0.5) == 0.0  # empty
        for value in self.VALUES:
            hist.observe(value)
        assert hist.percentile(0.0) == min(self.VALUES)
        assert hist.percentile(1.0) == max(self.VALUES)
        with pytest.raises(ValueError):
            hist.percentile(-0.1)
        with pytest.raises(ValueError):
            hist.percentile(1.1)

    def test_single_observation_is_exact_everywhere(self):
        hist = Histogram("h", bounds=self.BOUNDS)
        hist.observe(3.25)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert hist.percentile(q) == 3.25

    def test_snapshot_round_trip_matches_live_histogram(self):
        hist = Histogram("h", bounds=self.BOUNDS)
        for value in self.VALUES:
            hist.observe(value)
        payload = hist.as_dict()
        for q in (0.0, 0.1, 0.5, 0.9, 0.99, 1.0):
            assert percentile_from_snapshot(payload, q) == hist.percentile(q)
        assert percentile_from_snapshot({}, 0.5) == 0.0

    def test_snapshot_without_min_max_falls_back_to_bucket_bounds(self):
        """A persisted payload lacking min/max (older writers, hand-built
        dicts) must yield estimates inside the populated buckets, not 0.0."""
        payload = {
            "count": 4,
            "sum": 1.2,
            "buckets": {"le_1": 0, "le_2": 4, "le_4": 0, "le_8": 0, "overflow": 0},
        }
        # All four observations sit in the (1, 2] bucket: every percentile —
        # including the q=0/q=1 extremes — must land inside those bounds.
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert 1.0 <= percentile_from_snapshot(payload, q) <= 2.0, q
        # Out-of-range q still raises even without min/max.
        with pytest.raises(ValueError):
            percentile_from_snapshot(payload, 1.5)
        with pytest.raises(ValueError):
            percentile_from_snapshot(payload, -0.5)

    def test_snapshot_without_min_max_overflow_uses_top_bound(self):
        """With the overflow bucket populated and no observed max, the top
        finite bound is the stand-in: bounded output, never a NaN or 0.0."""
        payload = {
            "count": 2,
            "buckets": {"le_1": 1, "le_2": 0, "le_4": 0, "le_8": 0, "overflow": 1},
        }
        assert percentile_from_snapshot(payload, 0.0) == 0.0  # lower bound of le_1
        assert percentile_from_snapshot(payload, 1.0) == 8.0  # top finite bound
        mid = percentile_from_snapshot(payload, 0.5)
        assert 0.0 <= mid <= 8.0

    def test_empty_snapshot_and_zero_count_are_defined(self):
        assert percentile_from_snapshot({}, 0.0) == 0.0
        assert percentile_from_snapshot({}, 1.0) == 0.0
        assert percentile_from_snapshot({"count": 0, "buckets": {}}, 0.5) == 0.0


class TestSLOPolicy:
    def test_from_budgets_and_lookups(self):
        policy = SLOPolicy.from_budgets({2: 0.1, 1: 0.5}, {2: 0.05})
        assert policy.wait_budget(2) == 0.1
        assert policy.run_budget(2) == 0.05
        assert policy.wait_budget(1) == 0.5
        assert policy.run_budget(1) is None
        assert policy.wait_budget(0) is None  # undeclared: best effort
        assert policy.class_for(0) is None
        assert [slo.priority for slo in policy.classes] == [2, 1]

    def test_duplicate_priorities_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SLOPolicy((SLOClass(priority=1), SLOClass(priority=1)))

    def test_as_dict_round_trips_budgets(self):
        policy = SLOPolicy.from_budgets({1: 0.25})
        payload = policy.as_dict()
        assert payload["classes"][0]["priority"] == 1
        assert payload["classes"][0]["max_wait_s"] == 0.25


class TestSLOTracker:
    def test_violations_counted_per_priority_and_kind(self):
        registry = MetricsRegistry()
        tracker = SLOTracker(SLOPolicy.from_budgets({1: 0.1}, {1: 0.2}), registry)
        assert tracker.observe_wait(1, 0.05) is False
        assert tracker.observe_wait(1, 0.5) is True
        assert tracker.observe_run(1, 0.3) is True
        counters = registry.snapshot()["counters"]
        assert counters["slo_violations"] == 2
        assert counters["slo_violations_wait_p1"] == 1
        assert counters["slo_violations_run_p1"] == 1
        report = tracker.report()
        assert report["1"]["violations_wait"] == 1
        assert report["1"]["violations_run"] == 1
        assert report["1"]["wait_p99_s"] > 0.0

    def test_undeclared_priority_is_tracked_but_never_violates(self):
        registry = MetricsRegistry()
        tracker = SLOTracker(SLOPolicy.from_budgets({1: 0.1}), registry)
        assert tracker.observe_wait(0, 99.0) is False
        assert "job_wait_s_p0" in registry.names()
        assert "0" not in tracker.report()
        assert registry.counter("slo_violations").value == 0


class TestJobQueueOverload:
    def test_full_queue_displaces_lowest_priority(self):
        queue = JobQueue(2)
        low_a = Job(source=SOURCE, priority=0)
        low_b = Job(source=SOURCE, priority=0)
        queue.push(low_a)
        queue.push(low_b)
        victim = queue.push(Job(source=SOURCE, priority=1))
        # Ties shed the youngest: of the two p0 entries, low_b goes.
        assert victim is low_b
        assert sorted(job.priority for job in queue.pop_batch(timeout=0)) == [0, 1]

    def test_incoming_job_is_own_victim_when_not_above_any_level(self):
        queue = JobQueue(2)
        queue.push(Job(source=SOURCE, priority=2))
        queue.push(Job(source=SOURCE, priority=2))
        incoming = Job(source=SOURCE, priority=1)
        assert queue.push(incoming) is incoming  # O(1) fast path
        assert len(queue) == 2

    def test_aged_low_priority_outranks_fresh_high_priority(self):
        queue = JobQueue(aging_interval_s=1.0)
        aged = Job(source=SOURCE, priority=0)
        aged.submitted_at -= 5.5  # effective priority ~5
        fresh = Job(source=SOURCE, priority=2)
        queue.push(fresh)
        queue.push(aged)
        drained = queue.pop_batch(timeout=0)
        assert [job is aged for job in drained] == [True, False]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            JobQueue(0)
        with pytest.raises(ValueError):
            JobQueue(per_priority_capacity=0)
        with pytest.raises(ValueError):
            JobQueue(aging_interval_s=0.0)


class TestAdmissionControl:
    def _warm_server(self, **kwargs):
        """A server whose service-time EWMA and circuit memo are non-zero, so
        admission estimates are real rather than the cold-start zero."""
        server = JobServer(**kwargs)
        server.submit(Job(source=SOURCE, seed=0))
        server.drain()
        return server

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="admission"):
            JobServer(admission="bogus")

    def test_shed_mode_rejects_over_budget_arrivals(self):
        policy = SLOPolicy.from_budgets({0: 1e-9})
        server = self._warm_server(slo=policy, admission="shed")
        try:
            job_id = server.submit(Job(source=SOURCE, seed=1))
            row = server.status(job_id)
            assert row["status"] == "shed"
            assert "admission control" in row["error"]
            counters = server.telemetry.snapshot()["counters"]
            assert counters["admission_rejects"] == 1
            assert counters["jobs_shed"] == 1
        finally:
            server.close()

    def test_downgrade_mode_demotes_then_sheds_at_floor(self):
        policy = SLOPolicy.from_budgets({0: 1e-9, 2: 1e-9})
        server = self._warm_server(slo=policy, admission="downgrade")
        try:
            demoted_id = server.submit(Job(source=SOURCE, seed=1, priority=2))
            demoted = server.get(demoted_id)
            assert demoted.status is JobState.QUEUED
            assert demoted.priority == 0  # accepted as best effort
            floor_id = server.submit(Job(source=SOURCE, seed=2, priority=0))
            assert server.status(floor_id)["status"] == "shed"
            counters = server.telemetry.snapshot()["counters"]
            assert counters["jobs_downgraded"] == 1
            assert counters["admission_rejects"] == 1
            server.drain()
            assert server.status(demoted_id)["status"] == "completed"
        finally:
            server.close()

    def test_best_effort_priority_bypasses_admission(self):
        # Priority 1 has no declared budget: nothing to protect, always admit.
        policy = SLOPolicy.from_budgets({0: 1e-9})
        server = self._warm_server(slo=policy, admission="shed")
        try:
            job_id = server.submit(Job(source=SOURCE, seed=1, priority=1))
            assert server.status(job_id)["status"] == "queued"
        finally:
            server.close()

    def test_slo_report_covers_declared_priorities(self):
        policy = SLOPolicy.from_budgets({0: 5.0, 1: 5.0})
        server = JobServer(slo=policy)
        try:
            server.submit(Job(source=SOURCE, seed=0))
            server.submit(Job(source=SOURCE, seed=1, priority=1))
            server.drain()
            report = server.slo_report()
            assert sorted(report) == ["0", "1"]
            for row in report.values():
                for field in (
                    "wait_p50_s",
                    "wait_p99_s",
                    "run_p50_s",
                    "run_p99_s",
                    "violations_wait",
                    "violations_run",
                ):
                    assert field in row
            assert report["0"]["slo"]["max_wait_s"] == 5.0
        finally:
            server.close()
