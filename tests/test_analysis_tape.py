"""Tape-verifier sweep: every workload × compiler × opt level is clean.

The acceptance gate of the static-analysis stack: the full workload
registry, compiled under both real compilers and analyzed at every vector-VM
opt level, must produce zero findings — pipeline invariants after every
pass, arena safety, output coverage, reduction-schedule soundness and
symbolic circuit equivalence all hold on everything the repo actually ships.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.analysis.tape_check import verify_tape
from repro.backends.tapeopt import compile_tape
from repro.fhe.params import BFVParameters
from repro.workloads import available_workloads, build_workload

PARAMS = BFVParameters.default(1024)
COMPILERS = ("greedy", "coyote")
WORKLOADS = tuple(sorted(available_workloads()))


@pytest.fixture(scope="module")
def compiled():
    """One verified compilation + tape per (workload, compiler)."""
    artifacts = {}
    for workload_name in WORKLOADS:
        workload = build_workload(workload_name)
        for compiler in COMPILERS:
            report = api.compile(
                workload.source, compiler, name=workload.name, verify=True
            )
            tape = compile_tape(report.circuit, PARAMS)
            artifacts[(workload_name, compiler)] = (report, tape)
    return artifacts


@pytest.mark.parametrize("compiler", COMPILERS)
@pytest.mark.parametrize("workload_name", WORKLOADS)
def test_pipeline_validators_clean(compiled, workload_name, compiler) -> None:
    """Opt level 0: the per-stage pipeline validators alone (no tape runs)."""
    report, _ = compiled[(workload_name, compiler)]
    assert report.analysis is not None
    assert report.analysis.ok, [
        f.render() for f in report.analysis.findings[:5]
    ]
    assert not report.analysis.findings


@pytest.mark.parametrize("compiler", COMPILERS)
@pytest.mark.parametrize("workload_name", WORKLOADS)
def test_tape_verifier_clean(compiled, workload_name, compiler) -> None:
    """Opt levels 1/2 share one tape; the verifier covers all its plans."""
    report, tape = compiled[(workload_name, compiler)]
    analysis = verify_tape(report.circuit, tape, location=workload_name)
    assert analysis.ok, [f.render() for f in analysis.findings[:5]]
    assert not analysis.findings


@pytest.mark.parametrize("opt_level", [0, 1, 2])
def test_analyze_facade_all_opt_levels(opt_level) -> None:
    workload = build_workload("dot-product")
    _, analysis = api.analyze(
        workload.source, "greedy", name=workload.name, opt_level=opt_level
    )
    assert analysis.ok
    assert not analysis.findings
    checkers = set(analysis.checkers_run)
    assert {"pipeline-expr", "pipeline-circuit"} <= checkers
    if opt_level >= 1:
        assert {"tape-arena", "tape-bounds", "tape-outputs", "tape-equivalence"} <= checkers
    else:
        assert "tape-arena" not in checkers


def test_verified_execution_through_backend() -> None:
    """VectorVMBackend(verify=True) runs the verifier on fresh tapes and
    still executes correctly."""
    from repro.backends.tapeopt import reset_tape_cache, tape_cache_stats
    from repro.backends.vector_vm import VectorVMBackend

    reset_tape_cache()
    report = api.compile("(+ (* a b) (<< c 2))", "greedy", name="verified-exec")
    backend = VectorVMBackend(verify=True)
    execution = backend.execute(
        report.circuit, {"a": 2, "b": 3, "c": 4}, params=PARAMS
    )
    assert execution.outputs
    stats = tape_cache_stats()
    assert stats["verified"] >= 1
    assert stats["findings"] == 0
