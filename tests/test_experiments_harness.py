"""Smoke tests for the experiment harness and reporting utilities."""

import pytest

from repro.baselines import GreedyChehabCompiler, ScalarCompiler
from repro.experiments import (
    BenchmarkRunner,
    format_table,
    geometric_mean,
    results_to_rows,
    run_motivating_example,
    write_csv,
)
from repro.experiments.reporting import series_by_compiler
from repro.kernels import benchmark_by_name


@pytest.fixture(scope="module")
def small_results():
    benchmarks = [benchmark_by_name("dot_product_4"), benchmark_by_name("l2_distance_4")]
    runner = BenchmarkRunner({"CHEHAB": GreedyChehabCompiler(), "Initial": ScalarCompiler()})
    return runner, runner.run(benchmarks)


class TestRunner:
    def test_results_cover_every_pair(self, small_results):
        _runner, results = small_results
        assert len(results) == 4
        assert all(result.correct for result in results)

    def test_optimized_compiler_wins(self, small_results):
        runner, results = small_results
        ratio = runner.summarize_ratio(results, "execution_latency_ms", "Initial", "CHEHAB")
        assert ratio > 1.0

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0

    def test_series_by_compiler(self, small_results):
        _runner, results = small_results
        series = series_by_compiler(results, "consumed_noise_budget")
        assert set(series) == {"CHEHAB", "Initial"}
        assert set(series["CHEHAB"]) == {"dot_product_4", "l2_distance_4"}

    def test_empty_runner_rejected(self):
        with pytest.raises(ValueError):
            BenchmarkRunner({})


class TestReporting:
    def test_rows_and_table(self, small_results):
        _runner, results = small_results
        rows = results_to_rows(results)
        table = format_table(rows, ["benchmark", "compiler", "execution_latency_ms"], title="demo")
        assert "demo" in table and "dot_product_4" in table

    def test_write_csv(self, tmp_path, small_results):
        _runner, results = small_results
        path = tmp_path / "out" / "results.csv"
        write_csv(results_to_rows(results), path)
        content = path.read_text()
        assert "benchmark" in content.splitlines()[0]
        assert len(content.splitlines()) == 5

    def test_write_empty_csv_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv([], tmp_path / "empty.csv")


class TestMotivatingExample:
    def test_paper_toy_costs(self):
        result = run_motivating_example()
        assert result.scalar_cost == pytest.approx(9.1)
        assert result.first_vectorization_cost == pytest.approx(8.1)
        assert result.second_vectorization_cost == pytest.approx(10.1)
        # The first vectorization is the beneficial one; the second is worse
        # than the scalar form -- not all vectorizations are equal.
        assert result.first_vectorization_cost < result.scalar_cost < result.second_vectorization_cost
        assert 0.0 <= result.compiled_cost_improvement <= 1.0
