"""Tests of the workload subsystem and the satellite fixes riding along.

Covers the workload registry (``@register_workload``, factories with
options, the ``Workload`` model and its Benchmark adapter), the built-in
suites (Coyote/Porcupine kernels, tree ensembles, the IR-lowered NN linear
layer and its autograd oracle), the mixed-traffic load generator (schedule
determinism, server-vs-direct bit-identical outputs, telemetry-derived
coalescing and latency reporting), the ``run_workload``/``list_workloads``
facade + CLI, ``BenchmarkRunner.run_workloads``, and the decorrelated
batch-seed derivation of ``api.execute_batch``.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro import api
from repro.__main__ import main as cli_main
from repro.experiments.harness import BenchmarkRunner
from repro.workloads import (
    Arrival,
    MixEntry,
    Workload,
    available_workloads,
    benchmark_workloads,
    build_workload,
    default_mix,
    generate_schedule,
    get_workload,
    register_workload,
    run_direct_traffic,
    run_server_traffic,
    workload_info,
)
from repro.workloads.neural import quantized_linear_weights


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
class TestWorkloadRegistry:
    def test_builtins_registered(self):
        names = set(available_workloads())
        assert {
            "matrix-multiply",
            "max-tree",
            "sort-network",
            "dot-product",
            "box-blur",
            "l2-distance",
            "hamming-distance",
            "tree-ensemble",
            "nn-linear",
        } <= names

    def test_factory_options_parameterize(self):
        small = build_workload("dot-product", size=4)
        large = build_workload("dot-product", size=16)
        assert small.name == "dot_product_4"
        assert large.name == "dot_product_16"
        assert len(large.input_names) == 32

    def test_info_carries_suite_and_description(self):
        info = workload_info("nn-linear")
        assert info.suite == "nn"
        assert info.description
        assert info.build().description == info.description

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="dot-product"):
            build_workload("no-such-workload")

    def test_get_workload_normalizes(self):
        built = build_workload("max-tree")
        assert get_workload(built) is built
        assert get_workload("max-tree").name == built.name
        with pytest.raises(ValueError, match="instance"):
            get_workload(built, size=5)
        with pytest.raises(TypeError):
            get_workload(42)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_workload("dot-product")(lambda: None)


# ---------------------------------------------------------------------------
# the workload model
# ---------------------------------------------------------------------------
class TestWorkloadModel:
    def test_sample_inputs_follow_the_facade_contract(self):
        workload = build_workload("l2-distance")
        assert workload.sample_inputs(11) == api.sample_named_inputs(
            workload.input_names, 11, workload.input_range
        )

    def test_hamming_inputs_are_binary(self):
        workload = build_workload("hamming-distance")
        for seed in range(5):
            assert set(workload.sample_inputs(seed).values()) <= {0, 1}

    def test_expected_defaults_to_reference(self):
        workload = build_workload("box-blur")
        inputs = workload.sample_inputs(2)
        assert workload.expected(inputs) == workload.reference(inputs)

    def test_as_benchmark_samples_and_references_identically(self):
        workload = build_workload("matrix-multiply")
        benchmark = workload.as_benchmark()
        assert benchmark.name == workload.name
        assert benchmark.input_names == workload.input_names
        inputs = benchmark.sample_inputs(seed=4)
        assert inputs == workload.sample_inputs(4)
        assert benchmark.reference(inputs) == workload.reference(inputs)

    def test_every_builtin_executes_correctly(self):
        for name in available_workloads():
            outcome = api.run_workload(name, batch=2, seed=1)
            assert outcome.all_correct, name
            assert outcome.oracle_correct, name
            assert outcome.outcome.batch_size == 2


# ---------------------------------------------------------------------------
# the NN layer lowered through the IR
# ---------------------------------------------------------------------------
class TestNeuralWorkload:
    def test_oracle_agrees_with_reference_evaluation(self):
        workload = build_workload("nn-linear", in_features=5, out_features=3, seed=2)
        for seed in range(6):
            inputs = workload.sample_inputs(seed)
            assert workload.oracle(inputs) == workload.reference(inputs)

    def test_weights_are_deterministic(self):
        first = quantized_linear_weights(4, 2, seed=0)
        second = quantized_linear_weights(4, 2, seed=0)
        assert (first[0] == second[0]).all() and (first[1] == second[1]).all()

    def test_circuit_matches_the_autograd_forward_pass(self):
        workload = build_workload("nn-linear")
        outcome = api.run_workload(workload, batch=4, seed=3, backend="vector-vm")
        assert outcome.all_correct and outcome.oracle_correct
        # The oracle is the independent check: outputs came from the nn stack.
        assert outcome.expected == outcome.outcome.outputs

    def test_validation(self):
        with pytest.raises(ValueError, match="feature"):
            build_workload("nn-linear", in_features=0)


class TestTreeEnsemble:
    def test_ensemble_sums_member_trees(self):
        single = build_workload("tree-ensemble", trees=1, depth=3)
        pair = build_workload("tree-ensemble", trees=2, depth=3)
        inputs = pair.sample_inputs(0)
        single_inputs = {k: inputs.get(k, 0) for k in single.input_names}
        assert single.reference(single_inputs)
        assert pair.reference(inputs)  # both evaluate end to end

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one tree"):
            build_workload("tree-ensemble", trees=0)


# ---------------------------------------------------------------------------
# decorrelated batch seeds (the api.execute_batch fix)
# ---------------------------------------------------------------------------
class TestBatchSeedDerivation:
    def test_adjacent_base_seeds_share_nothing(self):
        first = api.derive_batch_seeds(0, 32)
        second = api.derive_batch_seeds(1, 32)
        assert len(set(first)) == 32 and len(set(second)) == 32
        assert not set(first) & set(second)

    def test_deterministic_and_prefix_stable(self):
        assert api.derive_batch_seeds(7, 16) == api.derive_batch_seeds(7, 16)
        assert api.derive_batch_seeds(7, 16)[:8] == api.derive_batch_seeds(7, 8)

    def test_count_validation(self):
        assert api.derive_batch_seeds(0, 0) == []
        with pytest.raises(ValueError, match="non-negative"):
            api.derive_batch_seeds(0, -1)

    def test_execute_batch_draws_through_derived_seeds(self):
        source = "(* (+ a b) (+ c d))"
        batch = api.execute_batch(source, batch=5, seed=9, backend="vector-vm")
        expected = [
            api.sample_named_inputs(["a", "b", "c", "d"], item_seed)
            for item_seed in api.derive_batch_seeds(9, 5)
        ]
        assert batch.inputs == expected
        assert batch.all_correct

    def test_adjacent_batches_no_longer_overlap(self):
        """The regression: seed=0 and seed=1 used to share 31 of 32 sets."""
        workload = build_workload("dot-product")  # 16 input variables
        batch_zero = api.run_workload(workload, batch=32, seed=0).outcome.inputs
        batch_one = api.run_workload(workload, batch=32, seed=1).outcome.inputs
        shared = [inputs for inputs in batch_zero if inputs in batch_one]
        assert not shared


# ---------------------------------------------------------------------------
# the traffic generator
# ---------------------------------------------------------------------------
class TestTrafficSchedule:
    def test_deterministic_per_seed(self):
        first = generate_schedule(default_mix(), 20, seed=3)
        second = generate_schedule(default_mix(), 20, seed=3)
        assert [a.workload.name for a in first] == [a.workload.name for a in second]
        assert [a.seed for a in first] == [a.seed for a in second]
        different = generate_schedule(default_mix(), 20, seed=4)
        assert [a.seed for a in first] != [a.seed for a in different]

    def test_burst_and_open_loop_arrival_times(self):
        burst = generate_schedule(default_mix(), 10, seed=0)
        assert all(arrival.at_s == 0.0 for arrival in burst)
        timed = generate_schedule(default_mix(), 10, seed=0, rate=1000.0)
        times = [arrival.at_s for arrival in timed]
        assert times == sorted(times) and times[0] > 0.0

    def test_mix_weights_and_overrides(self):
        mix = [
            MixEntry("dot-product", weight=1.0, priority=3, backend="reference"),
            MixEntry("max-tree", weight=1.0, compiler="initial"),
        ]
        schedule = generate_schedule(mix, 12, seed=0)
        for arrival in schedule:
            if arrival.entry.workload == "dot-product":
                assert arrival.backend == "reference"
                assert arrival.entry.priority == 3
            else:
                assert arrival.compiler == "initial"
                assert arrival.backend == arrival.workload.backend

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one job"):
            generate_schedule(default_mix(), 0)
        with pytest.raises(ValueError, match="empty"):
            generate_schedule([], 4)
        with pytest.raises(ValueError, match="positive"):
            generate_schedule([MixEntry("dot-product", weight=0.0)], 4)
        with pytest.raises(ValueError, match="rate"):
            generate_schedule(default_mix(), 4, rate=0.0)


class TestTrafficRuns:
    @pytest.fixture(scope="class")
    def small_schedule(self):
        return generate_schedule(default_mix(), 16, seed=1)

    def test_server_and_direct_paths_are_bit_identical(self, small_schedule):
        server = run_server_traffic(small_schedule)
        direct = run_direct_traffic(small_schedule)
        assert server.outputs == direct.outputs
        assert server.correct == server.jobs == 16
        assert direct.correct == direct.jobs == 16
        assert not server.oracle_mismatches and not direct.oracle_mismatches
        assert sum(server.per_workload.values()) == 16
        assert server.per_workload == direct.per_workload

    def test_server_report_carries_telemetry(self, small_schedule):
        report = run_server_traffic(small_schedule)
        assert report.coalescing["batches_coalesced"] > 0
        assert 0.0 < report.coalescing["job_coalescing_rate"] <= 1.0
        assert report.histogram("job_wait_s")["count"] == 16
        assert report.histogram("job_run_s")["count"] == 16
        assert report.throughput_jobs_per_s > 0.0
        payload = report.as_dict()
        assert json.dumps(payload)  # JSON-serializable by construction
        assert payload["coalescing"]["batches_total"] > 0

    def test_open_loop_schedule_completes(self):
        schedule = generate_schedule(default_mix(), 6, seed=5, rate=500.0)
        report = run_server_traffic(schedule, workers=2)
        assert report.correct == report.jobs == 6
        direct = run_direct_traffic(schedule)
        assert report.outputs == direct.outputs

    def test_reuses_an_existing_server(self, small_schedule):
        from repro.server import JobServer

        server = JobServer()
        try:
            report = run_server_traffic(small_schedule[:4], server=server)
            assert report.correct == 4
            assert server.telemetry.snapshot()["counters"]["jobs_completed"] == 4
        finally:
            server.close()

    def test_priorities_reach_the_server_jobs(self):
        mix = [MixEntry("nn-linear", weight=1.0, priority=7)]
        schedule = generate_schedule(mix, 3, seed=0)
        from repro.server import JobServer

        server = JobServer()
        try:
            run_server_traffic(schedule, server=server)
            rows = server.jobs()
            assert {row["priority"] for row in rows} == {7}
        finally:
            server.close()


# ---------------------------------------------------------------------------
# facade + CLI + harness wiring
# ---------------------------------------------------------------------------
class TestWorkloadApi:
    def test_list_workloads_rows(self):
        rows = api.list_workloads()
        names = {row["name"] for row in rows}
        assert "nn-linear" in names and "tree-ensemble" in names
        nn_row = next(row for row in rows if row["name"] == "nn-linear")
        assert nn_row["has_oracle"] is True
        assert nn_row["compiler"] and nn_row["backend"]

    def test_run_workload_defaults_and_overrides(self):
        outcome = api.run_workload("max-tree", batch=3, seed=2)
        assert outcome.outcome.backend == "vector-vm"  # workload default
        overridden = api.run_workload("max-tree", batch=2, backend="reference")
        assert overridden.outcome.backend == "reference"
        assert overridden.all_correct

    def test_run_workload_cost_sim_is_vacuously_correct(self):
        outcome = api.run_workload("dot-product", batch=2, backend="cost-sim")
        assert not outcome.outcome.verified
        assert outcome.oracle_correct  # vacuous, by contract

    def test_facade_exports(self):
        assert repro.run_workload is api.run_workload
        assert repro.list_workloads is api.list_workloads
        assert repro.derive_batch_seeds is api.derive_batch_seeds
        assert repro.sample_named_inputs is api.sample_named_inputs

    def test_benchmark_runner_runs_workloads(self):
        runner = BenchmarkRunner({"greedy": "greedy"}, backend="vector-vm")
        rows = runner.run_workloads(["dot-product", "nn-linear"])
        assert [row.benchmark for row in rows] == ["dot_product_8", "nn_linear_4x2"]
        assert all(row.correct for row in rows)

    def test_benchmark_runner_server_mode_matches_direct(self):
        from repro.server import JobServer

        direct_rows = BenchmarkRunner({"greedy": "greedy"}, backend="vector-vm").run_workloads(
            ["l2-distance"]
        )
        server = JobServer(backend="vector-vm")
        try:
            server_rows = BenchmarkRunner(
                {"greedy": "greedy"}, backend="vector-vm", server=server
            ).run_workloads(["l2-distance"])
        finally:
            server.close()
        def stable(row):  # drop wall-clock fields; everything else matches
            fields = row.as_dict()
            fields.pop("compile_time_s")
            return fields

        assert [stable(row) for row in direct_rows] == [
            stable(row) for row in server_rows
        ]


class TestWorkloadCli:
    def test_workloads_lists_registry(self, capsys):
        assert cli_main(["workloads"]) == 0
        output = capsys.readouterr().out
        assert "nn-linear" in output and "tree-ensemble" in output

    def test_workloads_runs_one(self, capsys):
        assert cli_main(
            ["workloads", "dot-product", "--batch", "2", "--option", "size=4"]
        ) == 0
        output = capsys.readouterr().out
        assert "dot_product_4" in output
        assert "verified     : OK" in output
        assert "oracle       : OK" in output

    def test_workloads_unknown_name_raises(self):
        with pytest.raises(KeyError, match="no-such"):
            cli_main(["workloads", "no-such-workload"])


# ---------------------------------------------------------------------------
# the benchmark payload
# ---------------------------------------------------------------------------
class TestBenchmarkWorkloads:
    def test_small_payload_covers_and_agrees(self):
        payload = benchmark_workloads(
            names=["dot-product", "nn-linear"],
            backends=("vector-vm",),
            batch=3,
            traffic_jobs=8,
        )
        assert payload["version"] == repro.__version__
        rows = payload["per_workload"]
        assert {row["workload"] for row in rows} == {"dot_product_8", "nn_linear_4x2"}
        for row in rows:
            assert row["server_bit_identical"] and row["all_correct"]
            assert row["oracle_correct"] is True
        traffic = payload["mixed_traffic"]
        assert traffic["bit_identical"]
        assert traffic["server"]["jobs"] == 8
        assert json.dumps(payload)  # committed artifact must be serializable

    def test_committed_artifact_is_current(self):
        """BENCH_workloads.json (the committed artifact) matches the format
        and coverage bars the acceptance criteria name."""
        with open("BENCH_workloads.json", "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        rows = payload["per_workload"]
        assert len({row["workload"] for row in rows}) >= 5
        assert {row["backend"] for row in rows} >= {"reference", "vector-vm"}
        assert all(row["server_bit_identical"] for row in rows)
        assert all(row["all_correct"] for row in rows)
        assert payload["mixed_traffic"]["bit_identical"]
        assert payload["version"] == repro.__version__
