"""Tests for the observability stack (PR 9: repro.obs + server tracing).

Four layers, bottom up:

* the tracing primitives — fake-clock span nesting, ring-buffer bounds,
  the disabled tracer's shared no-op handle, the JSONL sink round-trip,
  and a hypothesis property pinning that random open/close interleavings
  always produce well-formed parent-contained intervals;
* the exporters — Chrome trace-event shape and the self-time math of the
  stage rollup (nested stages never double-count attributed time);
* the console — snapshot deltas/rates, counter-reset detection, the
  ``repro top`` frame, and the snapshot ``meta`` block it keys off;
* the served pipeline — one connected trace per submission across retries,
  shedding, crash recovery into a fresh process, and store compaction;
  plus the opt-in tape profiler's bit-for-bit output parity.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro import api
from repro.backends import compile_tape
from repro.fhe.params import BFVParameters
from repro.obs.console import read_snapshot, render_delta, render_top, snapshot_delta
from repro.obs.export import (
    STAGE_ORDER,
    chrome_trace,
    export_chrome_trace,
    render_stage_report,
    stage_rollup,
)
from repro.obs.trace import (
    NULL_TRACER,
    JsonlSpanSink,
    Span,
    Tracer,
    load_spans,
)
from repro.server import FaultInjector, InjectedFault, Job, JobServer, JobStore
from repro.__main__ import main as cli_main

SOURCE = "(+ (* a b) c)"


class FakeClock:
    """A deterministic clock: every read ticks forward by ``step``."""

    def __init__(self, start: float = 1000.0, step: float = 1.0) -> None:
        self.now = start
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def make_tracer(**kwargs) -> Tracer:
    clock = FakeClock()
    kwargs.setdefault("wall", clock)
    kwargs.setdefault("mono", clock)
    tracer = Tracer(**kwargs)
    tracer.clock = clock  # type: ignore[attr-defined]
    return tracer


# ---------------------------------------------------------------------------
# tracing primitives
# ---------------------------------------------------------------------------
class TestTracerCore:
    def test_nested_spans_share_trace_and_parent_implicitly(self):
        tracer = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
        outer_span, = [s for s in tracer.spans() if s.name == "outer"]
        inner_span, = [s for s in tracer.spans() if s.name == "inner"]
        assert inner_span.parent_id == outer_span.span_id
        assert outer_span.parent_id is None
        # Fake-clock intervals: the child is contained in the parent.
        assert inner_span.start_wall >= outer_span.start_wall
        assert inner_span.end_wall <= outer_span.end_wall
        assert inner_span.duration_s > 0

    def test_explicit_ids_override_the_thread_stack(self):
        tracer = make_tracer()
        with tracer.span("outer"):
            with tracer.span("adopted", trace_id="t-x", parent_id="s-root"):
                pass
        adopted, = [s for s in tracer.spans() if s.name == "adopted"]
        assert adopted.trace_id == "t-x"
        assert adopted.parent_id == "s-root"

    def test_exception_marks_error_status_and_propagates(self):
        tracer = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        span, = tracer.spans()
        assert span.status == "error"
        assert span.attrs["error"] == "RuntimeError"
        assert tracer.current_span() is None  # the stack unwound

    def test_ring_buffer_keeps_newest_and_counts_drops(self):
        tracer = make_tracer(capacity=3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [s.name for s in tracer.spans()] == ["s2", "s3", "s4"]
        assert tracer.stats() == {"buffered": 3, "emitted": 5, "dropped": 2}

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_disabled_tracer_is_a_shared_noop(self):
        handle_a = NULL_TRACER.span("anything")
        handle_b = NULL_TRACER.span("else", attrs={"k": 1})
        assert handle_a is handle_b  # one shared handle, no allocation
        with handle_a as handle:
            handle.set_attr("ignored", True)
        assert NULL_TRACER.record("x", 0.0, 1.0) is None
        assert NULL_TRACER.spans() == []

    def test_retro_dated_span_uses_supplied_clocks(self):
        tracer = make_tracer()
        with tracer.span("tick", start_wall=500.0, start_mono=100.0):
            pass
        span, = tracer.spans()
        assert span.start_wall == 500.0
        # One fake-clock read closed the span: duration = mono() - 100.
        assert span.duration_s == tracer.clock.now - 100.0

    def test_record_pins_span_id_and_clamps_duration(self):
        tracer = make_tracer()
        span = tracer.record(
            "job", 10.0, 12.5, trace_id="t-1", span_id="s-pinned", status="error"
        )
        assert span.span_id == "s-pinned"
        assert span.trace_id == "t-1"
        assert span.duration_s == 2.5
        backwards = tracer.record("oops", 12.5, 10.0)
        assert backwards.duration_s == 0.0

    def test_observer_sees_every_finished_span(self):
        seen = []
        tracer = make_tracer(observer=seen.append)
        with tracer.span("a"):
            pass
        tracer.record("b", 0.0, 1.0)
        assert [span.name for span in seen] == ["a", "b"]

    def test_jsonl_sink_round_trips_and_skips_garbage(self, tmp_path):
        path = str(tmp_path / "traces.jsonl")
        tracer = make_tracer(sink=JsonlSpanSink(path))
        with tracer.span("persist", attrs={"jobs": 2}):
            pass
        tracer.record("job", 1.0, 2.0, trace_id="t-1", status="retry")
        tracer.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{not json\n\n")
        spans = load_spans(path)
        assert [s.name for s in spans] == ["persist", "job"]
        assert spans[0].attrs == {"jobs": 2}
        assert spans[1].status == "retry"
        # Round-trip equality through to_record/from_record.
        original = tracer.spans()[0]
        assert Span.from_record(original.to_record()) == original


@settings(max_examples=60, deadline=None)
@given(st.lists(st.booleans(), max_size=40))
def test_random_interleavings_nest_well(actions):
    """Random open/close sequences always yield stack-disciplined trees.

    True opens a child span, False closes the innermost open span; every
    finished span's parent must be exactly the span that was open beneath
    it, and its wall interval must be contained in that parent's.
    """
    tracer = make_tracer()
    open_handles = []
    serial = 0
    expected_parent = {}  # span_id -> parent span_id (or None)
    for action in actions:
        if action:
            handle = tracer.span(f"s{serial}")
            serial += 1
            expected_parent[handle.span_id] = (
                open_handles[-1].span_id if open_handles else None
            )
            handle.__enter__()
            open_handles.append(handle)
        elif open_handles:
            open_handles.pop().__exit__(None, None, None)
    while open_handles:
        open_handles.pop().__exit__(None, None, None)

    spans = {span.span_id: span for span in tracer.spans()}
    assert len(spans) == serial
    for span in spans.values():
        assert span.parent_id == expected_parent[span.span_id]
        if span.parent_id is not None:
            parent = spans[span.parent_id]
            assert span.trace_id == parent.trace_id
            assert span.start_wall >= parent.start_wall
            assert span.end_wall <= parent.end_wall


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------
def make_span(name, start, end, *, span_id=None, parent_id=None, cat="stage",
              trace_id="t-1", status="ok"):
    return Span(
        trace_id=trace_id,
        span_id=span_id or f"s-{name}-{start}",
        parent_id=parent_id,
        name=name,
        cat=cat,
        start_wall=start,
        duration_s=end - start,
        status=status,
    )


class TestChromeExport:
    def test_complete_events_with_microsecond_timestamps(self, tmp_path):
        spans = [
            make_span("execute", 2.0, 3.5),
            make_span("submit", 1.0, 2.0, status="error"),
        ]
        payload = chrome_trace(spans)
        events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(events) == 2
        assert events[0]["name"] == "submit"  # sorted by ts
        assert events[0]["ts"] == pytest.approx(1.0e6)
        assert events[0]["dur"] == pytest.approx(1.0e6)
        assert events[0]["args"]["status"] == "error"
        assert events[1]["args"]["trace_id"] == "t-1"
        metadata = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert metadata and all(e["name"] == "thread_name" for e in metadata)

        path = str(tmp_path / "trace.json")
        assert export_chrome_trace(spans, path) == 2
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle)["displayTimeUnit"] == "ms"


class TestStageRollup:
    def test_self_time_subtracts_included_children(self):
        parent = make_span("submit", 0.0, 10.0, span_id="p")
        child = make_span("persist", 2.0, 6.0, parent_id="p")
        rollup = stage_rollup([parent, child], window_s=10.0)
        rows = {row["stage"]: row for row in rollup["stages"]}
        assert rows["submit"]["self_s"] == pytest.approx(6.0)
        assert rows["persist"]["self_s"] == pytest.approx(4.0)
        assert rollup["attributed_s"] == pytest.approx(10.0)
        assert rollup["coverage"] == pytest.approx(1.0)
        assert rows["submit"]["share"] == pytest.approx(0.6)

    def test_other_categories_are_excluded_by_default(self):
        stage = make_span("execute", 0.0, 1.0)
        job = make_span("run", 0.0, 5.0, cat="job")
        tick = make_span("tick", 0.0, 9.0, cat="tick")
        rollup = stage_rollup([stage, job, tick])
        assert [row["stage"] for row in rollup["stages"]] == ["execute"]
        jobs = stage_rollup([stage, job, tick], cats=("job",))
        assert [row["stage"] for row in jobs["stages"]] == ["run"]

    def test_window_defaults_to_span_extent_and_rows_follow_stage_order(self):
        spans = [
            make_span("execute", 4.0, 9.0),
            make_span("submit", 1.0, 2.0),
            make_span("zz_custom", 2.0, 3.0),
        ]
        rollup = stage_rollup(spans)
        assert rollup["window_s"] == pytest.approx(8.0)  # 1.0 .. 9.0
        names = [row["stage"] for row in rollup["stages"]]
        assert names == ["submit", "execute", "zz_custom"]  # STAGE_ORDER, then extras
        assert set(names[:2]) < set(STAGE_ORDER)

    def test_percentiles_error_counts_and_render(self):
        spans = [
            make_span("execute", 0.0, 1.0),
            make_span("execute", 1.0, 4.0, status="error"),
        ]
        rollup = stage_rollup(spans)
        row, = rollup["stages"]
        assert row["count"] == 2
        assert row["errors"] == 1
        assert row["p50_s"] == pytest.approx(2.0)  # interpolated between 1 and 3
        assert row["max_s"] == pytest.approx(3.0)
        report = render_stage_report(rollup)
        assert "execute" in report
        assert "coverage" in report

    def test_empty_rollup_renders(self):
        rollup = stage_rollup([])
        assert rollup["stages"] == []
        assert rollup["coverage"] == 0.0
        assert "0 spans" in render_stage_report(rollup)


# ---------------------------------------------------------------------------
# console + snapshot meta
# ---------------------------------------------------------------------------
def snapshot(seq, mono, counters, gauges=None, histograms=None):
    return {
        "meta": {"sequence": seq, "wall_time": 100.0 + mono, "monotonic_time": mono},
        "counters": counters,
        "gauges": gauges or {},
        "histograms": histograms or {},
    }


class TestConsole:
    def test_delta_rates_use_the_monotonic_clock(self):
        old = snapshot(1, 10.0, {"jobs_completed": 4})
        new = snapshot(3, 14.0, {"jobs_completed": 10, "jobs_shed": 1})
        delta = snapshot_delta(old, new)
        assert delta["elapsed_s"] == pytest.approx(4.0)
        assert delta["counters"] == {"jobs_completed": 6.0, "jobs_shed": 1.0}
        assert delta["rates"]["jobs_completed"] == pytest.approx(1.5)
        assert not delta["reset"]
        body = render_delta(delta)
        assert "seq 1 -> 3" in body
        assert "+6" in body

    def test_counter_reset_reports_absolutes_not_negatives(self):
        old = snapshot(7, 10.0, {"jobs_completed": 50})
        new = snapshot(1, 2.0, {"jobs_completed": 3})  # restarted server
        delta = snapshot_delta(old, new)
        assert delta["reset"]
        assert delta["counters"]["jobs_completed"] == 3.0
        assert "reset" in render_delta(delta)

    def test_render_top_frame(self, tmp_path):
        state = str(tmp_path)
        server = JobServer(state)
        server.submit(Job(source=SOURCE, seed=1))
        server.drain()
        server.close()
        snap = read_snapshot(server.store.metrics_path)
        assert snap is not None
        frame = render_top(snap, source=state)
        assert "repro top" in frame
        assert "queue_depth" in frame
        assert "submitted 1" in frame
        assert "p99_ms" in frame  # histogram table present

    def test_read_snapshot_tolerates_missing_and_garbage(self, tmp_path):
        assert read_snapshot(str(tmp_path / "nope.json")) is None
        path = tmp_path / "metrics.json"
        path.write_text("{mid-replace garbage")
        assert read_snapshot(str(path)) is None


class TestSnapshotMeta:
    def test_write_snapshot_stamps_increasing_sequence(self, tmp_path):
        state = str(tmp_path)
        server = JobServer(state)
        server.submit(Job(source=SOURCE, seed=1))
        server.drain()
        first = read_snapshot(server.store.metrics_path)["meta"]
        assert first["sequence"] >= 1
        assert first["wall_time"] > 0
        assert first["monotonic_time"] > 0
        assert first["pid"] == os.getpid()
        server.telemetry.write_snapshot(server.store.metrics_path)
        second = read_snapshot(server.store.metrics_path)["meta"]
        assert second["sequence"] > first["sequence"]
        server.close()


# ---------------------------------------------------------------------------
# trace continuity through the served pipeline
# ---------------------------------------------------------------------------
def trees_by_trace(spans):
    by_trace = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    return by_trace


def assert_connected(tree, trace_root):
    """One root — the persisted trace_root — and no dangling parents.

    Roots are deduped by span id: a crashed process may have recorded the
    job envelope before its commit was lost, and the reborn process records
    it again pinned to the *same* ``trace_root``, so by-id the trace still
    has exactly one root.
    """
    roots = {span.span_id for span in tree if span.parent_id is None}
    assert roots == {trace_root}
    ids = {span.span_id for span in tree}
    for span in tree:
        if span.parent_id is not None:
            assert span.parent_id in ids, f"dangling {span.name}"


class TestTraceContinuity:
    def test_one_connected_trace_per_submission(self):
        server = JobServer(tracer=Tracer())
        jobs = [Job(source=SOURCE, seed=seed) for seed in range(3)]
        for job in jobs:
            server.submit(job)
        server.drain()
        server.close()
        by_trace = trees_by_trace(server.tracer.spans(cat="job"))
        for job in jobs:
            tree = by_trace[job.trace_id]
            assert_connected(tree, job.trace_root)
            names = {span.name for span in tree}
            assert {"submit", "queue_wait", "run", "job"} <= names
            envelope, = [span for span in tree if span.span_id == job.trace_root]
            assert envelope.status == "ok"

    def test_retries_extend_the_same_trace(self):
        server = JobServer(tracer=Tracer())
        job = Job(source="(+ broken", max_retries=2)
        server.submit(job)
        server.drain()
        server.close()
        tree = trees_by_trace(server.tracer.spans(cat="job"))[job.trace_id]
        assert_connected(tree, job.trace_root)
        runs = sorted(
            (span for span in tree if span.name == "run"),
            key=lambda span: span.start_wall,
        )
        assert [span.status for span in runs] == ["retry", "retry", "error"]
        waits = [span for span in tree if span.name == "queue_wait"]
        assert len(waits) == 3  # one per attempt
        envelope, = [span for span in tree if span.span_id == job.trace_root]
        assert envelope.status == "error"

    def test_shed_jobs_close_their_trace_with_an_error(self):
        server = JobServer(queue_capacity=1, tracer=Tracer())
        jobs = [Job(source=SOURCE, seed=seed) for seed in range(4)]
        for job in jobs:
            server.submit(job)
        server.drain()
        server.close()
        shed = [job for job in jobs if server.status(job.id)["status"] == "shed"]
        assert shed  # capacity 1 under a burst of 4 must shed someone
        by_trace = trees_by_trace(server.tracer.spans(cat="job"))
        for job in shed:
            tree = by_trace[job.trace_id]
            assert_connected(tree, job.trace_root)
            event, = [span for span in tree if span.name == "shed"]
            assert event.status == "error"
            assert "reason" in event.attrs

    def test_crash_recovery_resumes_the_same_trace_across_processes(self, tmp_path):
        state = str(tmp_path)
        faults = FaultInjector()
        faults.arm("server.before_commit", exc=InjectedFault)
        server = JobServer(state, fault_injector=faults, tracing=True)
        jobs = [Job(source=SOURCE, seed=seed) for seed in range(2)]
        for job in jobs:
            server.submit(job)
        with pytest.raises(InjectedFault):
            server.drain()
        # The crash models the OS flushing what was written, then the
        # process dying without a graceful close.
        server.tracer.flush()
        trace_path = server.store.trace_path
        del server

        reborn = JobServer(state, tracing=True)
        reborn.drain()
        reborn.close()

        by_trace = trees_by_trace(
            span for span in load_spans(trace_path) if span.cat == "job"
        )
        for job in jobs:
            assert reborn.status(job.id)["status"] == "completed"
            tree = by_trace[job.trace_id]
            assert_connected(tree, job.trace_root)
            names = [span.name for span in tree]
            # The first process saw the submit (and ran the job before the
            # commit was lost); the reborn one re-ran it — all on the one
            # trace rooted at the persisted id, so "run" appears once per
            # instance that executed the job.
            assert "submit" in names
            assert names.count("run") >= 2
            pids = {span.pid for span in tree}
            assert len(pids) == 1  # same test process, but both instances


class TestStoreTraceDurability:
    def test_trace_context_round_trips_records(self):
        job = Job(source=SOURCE, seed=1)
        clone = Job.from_record(job.to_record())
        assert clone.trace_id == job.trace_id
        assert clone.trace_root == job.trace_root

    def test_pre_observability_records_mint_fresh_context(self):
        record = Job(source=SOURCE, seed=1).to_record()
        del record["trace_id"], record["trace_root"]
        upgraded = Job.from_record(record)
        assert upgraded.trace_id
        assert upgraded.trace_root

    def test_replay_and_compaction_preserve_trace_context(self, tmp_path):
        state = str(tmp_path)
        server = JobServer(state)
        job = Job(source=SOURCE, seed=1)
        server.submit(job)
        server.drain()
        server.close()  # compacts the log
        replayed = JobStore(state).replay()[job.id]
        assert replayed.trace_id == job.trace_id
        assert replayed.trace_root == job.trace_root

    def test_torn_tail_spares_earlier_trace_context(self, tmp_path):
        state = str(tmp_path)
        store = JobStore(state, fault_injector=FaultInjector())
        survivor = Job(source=SOURCE, seed=1)
        store.append(survivor)
        store.faults.arm("store.append", payload="torn")
        with pytest.raises(InjectedFault):
            store.append(Job(source=SOURCE, seed=2))
        replayed = JobStore(state).replay()
        assert replayed[survivor.id].trace_id == survivor.trace_id
        assert replayed[survivor.id].trace_root == survivor.trace_root

    def test_requeued_running_job_keeps_its_trace(self, tmp_path):
        state = str(tmp_path)
        store = JobStore(state, fault_injector=FaultInjector())
        job = Job(source=SOURCE, seed=1)
        store.append(job)
        from repro.server.jobs import JobState

        job.status = JobState.RUNNING
        store.append(job)  # then the "process" dies
        reborn = JobServer(state, tracer=Tracer())
        assert reborn.status(job.id)["status"] in ("queued", "running")
        reborn.drain()
        recovered = reborn.store.replay()[job.id]
        assert recovered.trace_id == job.trace_id
        assert recovered.trace_root == job.trace_root
        # The requeue marked the recovery on the job's original trace.
        events = [
            span
            for span in reborn.tracer.spans(cat="job")
            if span.trace_id == job.trace_id and span.name == "recovered"
        ]
        assert len(events) == 1
        assert events[0].parent_id == job.trace_root
        reborn.close()


# ---------------------------------------------------------------------------
# tape profiling
# ---------------------------------------------------------------------------
class TestTapeProfile:
    def test_profiled_execution_is_bit_identical(self):
        from repro.backends.tape import set_tape_profiling

        program = api.compile(SOURCE, compiler="greedy").circuit
        params = BFVParameters.default(1024)
        tape = compile_tape(program, params)
        inputs = [{"a": row, "b": 2, "c": 3} for row in range(6)]
        baseline = tape.execute_batch(inputs)
        assert tape.profile_snapshot() is None  # profiling is opt-in

        previous = set_tape_profiling(True)
        assert previous is False
        try:
            profiled = tape.execute_batch(inputs)
        finally:
            assert set_tape_profiling(previous) is True

        for before, after in zip(baseline, profiled):
            assert after.outputs == before.outputs
            assert after.latency_ms == before.latency_ms
            assert after.operation_counts == before.operation_counts
            assert after.consumed_noise_budget == before.consumed_noise_budget
            assert after.remaining_noise_budget == before.remaining_noise_budget

        profile = tape.profile_snapshot()
        assert profile["batches"] == 1
        assert profile["rows"] == len(inputs)
        assert profile["ops"]
        for row in profile["ops"].values():
            assert row["count"] >= 1
            assert row["total_ns"] >= 0
            assert row["mean_ns"] == pytest.approx(
                row["total_ns"] / row["count"]
            )

    def test_profile_accumulates_across_batches(self):
        from repro.backends.tape import set_tape_profiling, tape_profiling_enabled

        program = api.compile("(* (+ a b) (+ c d))", compiler="greedy").circuit
        tape = compile_tape(program, BFVParameters.default(1024))
        previous = set_tape_profiling(True)
        try:
            assert tape_profiling_enabled()
            tape.execute_batch([{"a": 1, "b": 2, "c": 3, "d": 4}])
            tape.execute_batch([{"a": 5, "b": 6, "c": 0, "d": 1}] * 3)
        finally:
            set_tape_profiling(previous)
        assert not tape_profiling_enabled()
        profile = tape.profile_snapshot()
        assert profile["batches"] == 2
        assert profile["rows"] == 4


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestObservabilityCLI:
    def test_trace_export_report_and_top(self, tmp_path, capsys):
        state = str(tmp_path)
        assert cli_main(["submit", SOURCE, "--state-dir", state, "--seed", "1"]) == 0
        assert cli_main(["submit", SOURCE, "--state-dir", state, "--seed", "2"]) == 0
        assert (
            cli_main(["serve", "--state-dir", state, "--drain", "--trace"]) == 0
        )
        out = str(tmp_path / "trace.json")
        assert cli_main(["trace", "export", "--state-dir", state, "--out", out]) == 0
        with open(out, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert any(e.get("ph") == "X" for e in payload["traceEvents"])

        assert cli_main(["trace", "report", "--state-dir", state]) == 0
        report = capsys.readouterr().out
        assert "stage" in report
        assert "coverage" in report

        assert cli_main(["top", "--state-dir", state]) == 0
        frame = capsys.readouterr().out
        assert "repro top" in frame

        assert cli_main(["metrics", "--state-dir", state, "--watch", "--count", "1",
                         "--interval", "0.05"]) == 0

    def test_trace_report_without_traces_fails_cleanly(self, tmp_path):
        assert cli_main(["trace", "report", "--state-dir", str(tmp_path)]) == 1
        assert cli_main(["top", "--state-dir", str(tmp_path)]) == 1
