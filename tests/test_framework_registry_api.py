"""Tests for the pass framework, the compiler registry and the repro.api facade."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

import repro
from repro import api
from repro.baselines import CoyoteCompiler, GreedyChehabCompiler, ScalarCompiler
from repro.compiler import (
    Ciphertext,
    Compiler,
    CompilerOptions,
    CompilerSpec,
    PassPipeline,
    PipelineState,
    Program,
    available_compilers,
    build_compiler,
    circuit_stage,
    compiler_info,
    expr_stage,
)
from repro.compiler.passes import constant_fold, dead_code_eliminate
from repro.compiler.registry import compiler_fingerprint
from repro.ir.nodes import Add, Var
from repro.ir.parser import parse
from repro.kernels.registry import benchmark_by_name
from repro.service import CompilationCache, CompilationService

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


def _subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


EXPR = parse("(* (+ a b) (+ c d))")


# ---------------------------------------------------------------------------
# the pass framework
# ---------------------------------------------------------------------------
class TestPassPipeline:
    def test_default_pipeline_stage_names(self):
        compiler = Compiler(CompilerOptions(optimizer="greedy"))
        assert compiler.pipeline.stage_names == [
            "constant-fold",
            "optimize",
            "lower",
            "dce",
            "rotation-keys",
        ]

    def test_report_carries_trace_with_all_stages(self):
        report = Compiler().compile_expression(EXPR, name="t")
        assert report.trace is not None
        assert report.trace.stage_names == [
            "constant-fold",
            "optimize",
            "lower",
            "dce",
            "rotation-keys",
        ]
        assert all(stage.wall_time_s >= 0.0 for stage in report.trace.stages)

    @pytest.mark.parametrize(
        "compiler",
        [Compiler(), ScalarCompiler(), GreedyChehabCompiler(), CoyoteCompiler()],
        ids=["pipeline", "scalar", "greedy", "coyote"],
    )
    def test_stage_times_sum_to_compile_time(self, compiler):
        report = compiler.compile_expression(EXPR, name="t")
        assert report.trace is not None
        total = report.trace.total_time_s
        # compile_time_s is measured around the whole run; the delta is the
        # (tiny) state-construction and report-assembly overhead.
        assert 0.0 <= report.compile_time_s - total < 0.1

    def test_coyote_trace_has_vectorize_stage(self):
        report = CoyoteCompiler().compile_expression(EXPR, name="t")
        assert report.trace.stage_names == ["constant-fold", "vectorize-search", "dce"]
        search = report.trace.stage("vectorize-search")
        assert search.wall_time_s > 0.0

    def test_optimize_stage_cost_snapshots_match_report_costs(self):
        report = GreedyChehabCompiler().compile_expression(EXPR, name="t")
        optimize = report.trace.stage("optimize")
        assert optimize.cost_before == pytest.approx(report.initial_cost)
        assert optimize.cost_after == pytest.approx(report.final_cost)

    def test_custom_pipeline_runs_and_traces(self):
        from repro.compiler.lowering import lower

        class _Lower:
            name = "lower"
            kind = "circuit"

            def run(self, state):
                state.circuit = lower(state.expr, name=state.name)

        pipeline = PassPipeline(
            [
                expr_stage("fold", lambda expr, state: constant_fold(expr)),
                _Lower(),
                circuit_stage("dce", lambda circuit, state: dead_code_eliminate(circuit)),
            ]
        )
        report = pipeline.compile(Add(Var("x"), Var("y")), name="custom")
        assert report.trace.stage_names == ["fold", "lower", "dce"]
        assert report.stats.total_operations > 0

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate stage"):
            PassPipeline(
                [
                    expr_stage("fold", lambda expr, state: expr),
                    expr_stage("fold", lambda expr, state: expr),
                ]
            )

    def test_circuit_stage_before_lowering_rejected(self):
        pipeline = PassPipeline(
            [circuit_stage("dce", lambda circuit, state: circuit)]
        )
        state = PipelineState(name="t", source_expr=EXPR, expr=EXPR)
        with pytest.raises(ValueError, match="before any lowering"):
            pipeline.run(state)

    def test_pipeline_without_lowering_cannot_compile(self):
        pipeline = PassPipeline([expr_stage("fold", lambda expr, state: expr)])
        with pytest.raises(ValueError, match="produced no circuit"):
            pipeline.compile(EXPR, name="t")

    def test_trace_pickles_with_report(self):
        import pickle

        report = ScalarCompiler().compile_expression(EXPR, name="t")
        clone = pickle.loads(pickle.dumps(report))
        assert clone.trace.stage_names == report.trace.stage_names


# ---------------------------------------------------------------------------
# the registry and specs
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_builtin_names_registered(self):
        names = available_compilers()
        for name in ("initial", "coyote", "greedy", "beam", "chehab-rl"):
            assert name in names

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="available:"):
            compiler_info("no-such-compiler")

    def test_build_compiler_types(self):
        assert isinstance(build_compiler("initial"), ScalarCompiler)
        assert isinstance(build_compiler("greedy"), GreedyChehabCompiler)
        assert isinstance(build_compiler("coyote"), CoyoteCompiler)
        assert isinstance(build_compiler("beam"), Compiler)

    def test_factory_options_forwarded(self):
        compiler = build_compiler("coyote", layout_candidates=3, seed=7)
        assert compiler.options.layout_candidates == 3
        assert compiler.options.seed == 7

    def test_describe_is_version_stamped_and_renders_options(self):
        spec = CompilerSpec.create("coyote", layout_candidates=3)
        text = spec.describe()
        assert repro.__version__ in text
        assert "coyote" in text
        # Every CoyoteOptions field is rendered, defaults included.
        for field_name in ("layout_candidates=3", "search_candidates=32", "max_candidates=192", "seed=0"):
            assert field_name in text

    def test_describe_differs_across_options_and_names(self):
        base = CompilerSpec.create("coyote").describe()
        assert CompilerSpec.create("coyote", seed=1).describe() != base
        assert CompilerSpec.create("greedy").describe() != base

    def test_spec_built_compiler_fingerprints_as_describe(self):
        spec = CompilerSpec.create("greedy", max_rewrite_steps=5)
        compiler = spec.build()
        fingerprint, stable = compiler_fingerprint(compiler)
        assert stable
        assert fingerprint == spec.describe()

    def test_spec_is_picklable_and_hashable(self):
        import pickle

        spec = CompilerSpec.create("coyote", layout_candidates=2)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert hash(clone) == hash(spec)
        assert clone.options_dict == {"layout_candidates": 2}

    def test_spec_with_live_object_option_is_unstable(self):
        """An agent (or any live object) option must not produce disk keys."""
        assert CompilerSpec.create("chehab-rl", agent=object()).stable is False
        assert CompilerSpec.create("chehab-rl", train_timesteps=0).stable is True
        assert CompilerSpec.create("coyote", seed=1).stable is True

    def test_unstable_spec_entries_stay_out_of_disk_tier(self, tmp_path):
        """A live-object option (here: a custom optimizer, standing in for a
        trained agent) must keep the service's entries memory-tier-only."""
        from repro.trs.rewriter import RewriteResult

        class _LiveOptimizer:
            def optimize(self, expr):
                return RewriteResult(
                    initial=expr, optimized=expr, steps=[], initial_cost=0.0, final_cost=0.0
                )

        spec = CompilerSpec.create("chehab-rl", agent=_LiveOptimizer())
        assert spec.stable is False
        # chehab-rl wraps the agent directly; swap in a cheap equivalent via
        # the same unstable-spec machinery using the plain pipeline factory.
        compiler = Compiler(CompilerOptions(optimizer=_LiveOptimizer()))
        compiler._compiler_spec = spec
        cache_dir = tmp_path / "cache"
        service = CompilationService(compiler, cache=CompilationCache(directory=str(cache_dir)))
        assert service._stable is False
        service.compile_expression(parse("(+ a b)"), name="t")
        assert list(cache_dir.glob("*.pkl")) == []

    def test_describe_byte_stable_across_processes(self):
        """The acceptance-criteria subprocess round-trip."""
        script = (
            "from repro.compiler import CompilerSpec\n"
            "print(CompilerSpec.create('coyote', layout_candidates=3).describe())\n"
            "print(CompilerSpec.create('greedy').describe())\n"
            "print(CompilerSpec.create('initial').describe())\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            env=_subprocess_env(),
            capture_output=True,
            text=True,
            check=True,
        )
        lines = completed.stdout.strip().splitlines()
        assert lines[0] == CompilerSpec.create("coyote", layout_candidates=3).describe()
        assert lines[1] == CompilerSpec.create("greedy").describe()
        assert lines[2] == CompilerSpec.create("initial").describe()


# ---------------------------------------------------------------------------
# the cache-stability satellite: Coyote hits the disk tier across services
# ---------------------------------------------------------------------------
class TestCoyoteDiskCache:
    def test_coyote_disk_cache_hit_across_fresh_services(self, tmp_path):
        """Regression: Coyote must have a stable (disk-eligible) fingerprint."""
        cache_dir = str(tmp_path / "cache")
        expr = benchmark_by_name("dot_product_4").expression()

        first = CompilationService("coyote", cache=CompilationCache(directory=cache_dir))
        assert first._stable
        cold = first.compile_expression(expr, name="dot_product_4")
        assert first.cache.stats.misses == 1

        # A brand-new service + cache instance (fresh process simulation):
        # the only shared state is the on-disk tier.
        second = CompilationService("coyote", cache=CompilationCache(directory=cache_dir))
        assert second.fingerprint == first.fingerprint
        warm = second.compile_expression(expr, name="dot_product_4")
        assert second.cache.stats.disk_hits == 1
        assert warm.stats.as_dict() == cold.stats.as_dict()

    def test_coyote_disk_cache_hit_from_subprocess_key(self, tmp_path):
        """A subprocess computes the same cache key, so its entries are shared."""
        cache_dir = str(tmp_path / "cache")
        service = CompilationService("coyote", cache=CompilationCache(directory=cache_dir))
        expr = parse("(+ (* a b) c)")
        service.compile_expression(expr, name="k")
        key = service.job_key(expr)
        script = (
            "from repro.service import CompilationService, CompilationCache\n"
            "from repro.ir.parser import parse\n"
            f"service = CompilationService('coyote', cache=CompilationCache(directory={cache_dir!r}))\n"
            "expr = parse('(+ (* a b) c)')\n"
            "print(service.job_key(expr))\n"
            "report = service.compile_expression(expr, name='k')\n"
            "print(service.cache.stats.disk_hits)\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            env=_subprocess_env(),
            capture_output=True,
            text=True,
            check=True,
        )
        subprocess_key, disk_hits = completed.stdout.split()
        assert subprocess_key == key
        assert int(disk_hits) == 1

    def test_hand_built_coyote_shares_entries_with_named_service(self, tmp_path):
        """Direct CoyoteCompiler construction stays stable (options dataclass)."""
        fingerprint, stable = compiler_fingerprint(CoyoteCompiler())
        assert stable
        again, _ = compiler_fingerprint(CoyoteCompiler())
        assert fingerprint == again


# ---------------------------------------------------------------------------
# the facade
# ---------------------------------------------------------------------------
class TestApiFacade:
    def test_compile_accepts_sexpr_string(self):
        report = repro.compile("(+ (* a b) c)", compiler="initial")
        assert report.stats.total_operations > 0
        assert report.trace is not None

    def test_compile_accepts_expr_and_program(self):
        with Program("prog") as program:
            a, b = Ciphertext("a"), Ciphertext("b")
            (a * b).set_output("x")
        from_program = repro.compile(program, compiler="initial")
        assert from_program.name == "prog"
        from_expr = repro.compile(program.output_expr, compiler="initial", name="prog")
        assert from_expr.stats.as_dict() == from_program.stats.as_dict()

    def test_compile_rejects_garbage_source(self):
        with pytest.raises(TypeError, match="s-expression"):
            repro.compile(12345, compiler="initial")

    def test_compile_options_forwarded_to_factory(self):
        report = repro.compile(EXPR, compiler="greedy", max_rewrite_steps=1)
        assert len(report.rewrite_steps) <= 1

    def test_options_with_instance_rejected(self):
        with pytest.raises(ValueError, match="registry name"):
            repro.compile(EXPR, compiler=ScalarCompiler(), max_rewrite_steps=1)

    def test_service_conflicts_with_compiler_arguments(self):
        service = api.make_service("initial")
        with pytest.raises(ValueError, match="not both"):
            repro.compile(EXPR, "coyote", service=service)
        with pytest.raises(ValueError, match="not both"):
            repro.compile(EXPR, service=service, workers=2)
        # A bare service= is the supported reuse path.
        report = repro.compile(EXPR, service=service)
        assert report.stats.total_operations > 0

    def test_declared_outputs_concatenates_in_declaration_order(self):
        from repro.compiler import declared_outputs

        report = repro.compile("(Vec (+ a b) (* a b))", compiler="initial")
        outcome = repro.execute(report, {"a": 2, "b": 3})
        assert outcome.correct
        assert outcome.outputs == declared_outputs(
            report.circuit, outcome.execution.outputs
        )

    def test_cli_value_parser_handles_shell_booleans(self):
        from repro.__main__ import _parse_value

        assert _parse_value("false") is False
        assert _parse_value("TRUE") is True
        assert _parse_value("no") is False
        assert _parse_value("3") == 3
        assert _parse_value("[1, 2]") == [1, 2]
        assert _parse_value("hello") == "hello"

    def test_execute_verifies_against_reference(self):
        outcome = repro.execute(
            "(+ (* a b) c)", {"a": 2, "b": 3, "c": 4}, compiler="greedy"
        )
        assert outcome.correct
        assert outcome.outputs == [10]
        assert outcome.reference == [10]
        assert outcome.execution.latency_ms > 0

    def test_execute_generates_seeded_inputs(self):
        one = repro.execute("(* a b)", compiler="initial", seed=3)
        two = repro.execute("(* a b)", compiler="initial", seed=3)
        assert one.inputs == two.inputs
        assert one.correct and two.correct

    def test_execute_accepts_prebuilt_report(self):
        report = repro.compile("(- a b)", compiler="initial")
        outcome = repro.execute(report, {"a": 9, "b": 4})
        assert outcome.correct
        assert outcome.outputs == [5]

    def test_compile_batch_names_and_caches(self, tmp_path):
        sources = ["(+ a b)", ("(* a b)", "product")]
        batch = api.compile_batch(sources, compiler="initial", cache_dir=str(tmp_path))
        assert [report.name for report in batch.reports] == ["circuit_0", "product"]
        warm = api.compile_batch(sources, compiler="initial", cache_dir=str(tmp_path))
        assert warm.cache_hits == 2

    def test_list_compilers_rows(self):
        rows = repro.list_compilers()
        names = [row["name"] for row in rows]
        assert "coyote" in names and "greedy" in names
        assert all(row["description"] for row in rows)

    def test_describe_compiler_matches_spec(self):
        assert repro.describe_compiler("coyote", seed=2) == CompilerSpec.create(
            "coyote", seed=2
        ).describe()

    @pytest.mark.parametrize("name", ["initial", "greedy", "beam", "coyote"])
    def test_facade_stats_bit_identical_to_direct_construction(self, name):
        """repro.compile(name) == the pre-redesign hand-built compiler path."""
        direct = {
            "initial": ScalarCompiler(),
            "greedy": GreedyChehabCompiler(),
            "beam": Compiler(CompilerOptions(optimizer="beam")),
            "coyote": CoyoteCompiler(),
        }[name]
        kernels = ("dot_product_4", "box_blur_3x3", "hamming_distance_4", "linear_regression_4")
        if name == "beam":  # beam search is the slow one; one kernel suffices
            kernels = ("dot_product_4",)
        for kernel in kernels:
            expr = benchmark_by_name(kernel).expression()
            expected = direct.compile_expression(expr, name=kernel)
            actual = repro.compile(expr, compiler=name, name=kernel)
            assert actual.stats.as_dict() == expected.stats.as_dict()
            assert actual.initial_cost == expected.initial_cost
            assert actual.final_cost == expected.final_cost

    def test_facade_stats_bit_identical_for_chehab_rl(self):
        """The RL registry name matches the hand-wrapped agent compiler.

        train_timesteps=0 keeps the (seeded, lru-cached) agent untrained, so
        both paths share the identical policy and the comparison is exact.
        """
        from repro.experiments.harness import make_agent_compiler, make_default_agent

        agent = make_default_agent(train_timesteps=0, dataset_size=8, seed=0)
        direct = make_agent_compiler(agent)
        expr = benchmark_by_name("dot_product_4").expression()
        expected = direct.compile_expression(expr, name="dot_product_4")
        actual = repro.compile(
            expr,
            compiler="chehab-rl",
            name="dot_product_4",
            train_timesteps=0,
            dataset_size=8,
            seed=0,
        )
        assert actual.stats.as_dict() == expected.stats.as_dict()
        assert actual.final_cost == expected.final_cost


# ---------------------------------------------------------------------------
# the CLI
# ---------------------------------------------------------------------------
class TestCli:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            env=_subprocess_env(),
            capture_output=True,
            text=True,
        )

    def test_list_compilers(self):
        completed = self._run("list-compilers")
        assert completed.returncode == 0
        for name in ("initial", "coyote", "greedy", "beam", "chehab-rl"):
            assert name in completed.stdout

    def test_compile_prints_stats_and_trace(self):
        completed = self._run("compile", "(* (+ a b) (+ c d))", "--compiler", "greedy")
        assert completed.returncode == 0
        assert "total_operations" in completed.stdout
        assert "optimize" in completed.stdout  # the trace table

    def test_run_verifies(self):
        completed = self._run(
            "run", "(+ (* a b) c)", "--inputs", "a=2,b=3,c=4", "--compiler", "initial"
        )
        assert completed.returncode == 0
        assert "OK" in completed.stdout

    def test_compile_with_cache_dir_and_options(self, tmp_path):
        argv = (
            "compile",
            "(+ a b)",
            "--compiler",
            "coyote",
            "--option",
            "layout_candidates=2",
            "--cache-dir",
            str(tmp_path),
        )
        assert self._run(*argv).returncode == 0
        # Second invocation is a fresh process: it must hit the disk tier.
        assert self._run(*argv).returncode == 0
        assert len(list(tmp_path.glob("*.pkl"))) == 1
