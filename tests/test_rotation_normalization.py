"""Rotation-step normalization: congruent steps behave identically everywhere.

A rotation by ``step`` and by ``step mod n`` is the same Galois automorphism,
so every layer must treat them interchangeably:

* the :class:`~repro.fhe.evaluator.Evaluator` accepts any step congruent to
  a generated Galois key, and rotation by a multiple of ``n`` is a free,
  budget-preserving copy;
* the :class:`~repro.backends.base.NoiseLedger` charges (or skips) the same
  cost for congruent steps, keeping VM noise accounting in lockstep with the
  reference;
* all execution backends produce bit-identical outputs for circuits built
  with pathological steps (negative, ``>= n``, multiples of ``n``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.backends import resolve_backend
from repro.backends.base import NoiseLedger
from repro.fhe.evaluator import FHEContext
from repro.fhe.meter import ExecutionMeter
from repro.fhe.params import BFVParameters

PARAMS = BFVParameters.default(1024)
N = PARAMS.slot_count


@pytest.fixture(scope="module")
def context() -> FHEContext:
    return FHEContext(PARAMS, galois_steps=[1, 3])


class TestEvaluatorNormalization:
    def test_multiple_of_n_is_identity_copy(self, context) -> None:
        ct = context.encryptor.encrypt_values([5, 6, 7, 8])
        for step in (0, N, -N, 2 * N, -3 * N):
            out = context.evaluator.rotate(ct, step)
            assert np.array_equal(out.slots, ct.slots)
            # identity rotations are free: no key needed, no budget charged
            assert out.noise_budget == ct.noise_budget

    @pytest.mark.parametrize("step", [N + 1, 1 - N, 1 + 2 * N, -(N - 1)])
    def test_congruent_step_uses_existing_key(self, context, step) -> None:
        ct = context.encryptor.encrypt_values([5, 6, 7, 8])
        base = context.evaluator.rotate(ct, 1)
        out = context.evaluator.rotate(ct, step)
        assert np.array_equal(out.slots, base.slots)
        assert out.noise_budget == base.noise_budget

    def test_missing_key_still_raises(self, context) -> None:
        from repro.core.exceptions import RotationKeyMissing

        ct = context.encryptor.encrypt_values([5, 6, 7, 8])
        with pytest.raises(RotationKeyMissing):
            context.evaluator.rotate(ct, 2)  # only keys for 1 and 3 exist


class TestLedgerNormalization:
    def test_identity_rotation_charges_nothing(self) -> None:
        ledger = NoiseLedger(ExecutionMeter(PARAMS))
        ledger.load_input(0)
        for step in (N, -N, 2 * N):
            ledger.rotate(1, 0, step)
            assert ledger.budget[1] == ledger.budget[0]

    def test_congruent_steps_charge_identically(self) -> None:
        ledger = NoiseLedger(ExecutionMeter(PARAMS))
        ledger.load_input(0)
        ledger.rotate(1, 0, 3)
        ledger.rotate(2, 0, 3 + N)
        ledger.rotate(3, 0, 3 - N)
        assert ledger.budget[1] == ledger.budget[2] == ledger.budget[3]
        assert ledger.budget[1] < ledger.budget[0]


SOURCE = (
    "(+ (<< (* (Vec a0 a1 a2 a3) (Vec b0 b1 b2 b3)) %d)"
    " (<< (Vec c0 c1 c2 c3) %d))"
)
INPUTS = {
    f"{var}{i}": (i + 2) * (ord(var) - ord("a") + 1)
    for var in "abc"
    for i in range(4)
}
BACKENDS = ("reference", "vector-vm", "vector-vm-interp")


@pytest.mark.parametrize(
    "steps",
    [(3, 1), (N + 2, -3), (2 * N + 3, N - 1), (-N, 1)],
    ids=lambda s: f"{s[0]}_{s[1]}",
)
def test_backend_parity_on_pathological_steps(steps) -> None:
    """All backends agree on outputs for negative / >= n / multiple-of-n steps."""
    report = api.compile(
        SOURCE % steps, compiler="greedy", name=f"rot_{steps[0]}_{steps[1]}"
    )
    outputs = {}
    for backend_name in BACKENDS:
        backend, _ = resolve_backend(backend_name)
        execution = backend.execute(report.circuit, INPUTS, params=PARAMS)
        outputs[backend_name] = execution.outputs
    reference = outputs["reference"]
    for backend_name, produced in outputs.items():
        assert produced == reference, backend_name
