"""Property-based tests (hypothesis) for the core invariants.

* every rewrite rule preserves the meaningful output slots of random
  expressions it matches;
* ICI canonicalisation is invariant under variable renaming;
* the parser/printer round-trips arbitrary generated expressions;
* constant folding preserves semantics;
* the autograd's arithmetic matches numpy.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.compiler.passes import constant_fold
from repro.ir import parse, to_sexpr
from repro.ir.analysis import variables
from repro.ir.evaluate import evaluate, output_arity
from repro.ir.nodes import Add, Const, Expr, Mul, Neg, Sub, Var, Vec
from repro.ir.tokenize import canonical_form
from repro.nn.tensor import Tensor
from repro.trs.registry import default_ruleset

_RULESET = default_ruleset()

# ---------------------------------------------------------------------------
# Expression strategies
# ---------------------------------------------------------------------------
_VARIABLE_NAMES = tuple(f"x{i}" for i in range(6))


def _scalar_expressions(max_depth: int = 3) -> st.SearchStrategy[Expr]:
    leaves = st.one_of(
        st.sampled_from(_VARIABLE_NAMES).map(Var),
        st.integers(min_value=-4, max_value=4).map(Const),
    )

    def extend(children: st.SearchStrategy[Expr]) -> st.SearchStrategy[Expr]:
        return st.one_of(
            st.tuples(children, children).map(lambda pair: Add(*pair)),
            st.tuples(children, children).map(lambda pair: Sub(*pair)),
            st.tuples(children, children).map(lambda pair: Mul(*pair)),
            children.map(Neg),
        )

    return st.recursive(leaves, extend, max_leaves=2 ** max_depth)


def _expressions() -> st.SearchStrategy[Expr]:
    scalars = _scalar_expressions()
    vectors = st.lists(scalars, min_size=1, max_size=4).map(lambda items: Vec(*items))
    return st.one_of(scalars, vectors)


def _environment(expr: Expr, fill: int = 3) -> dict:
    return {name: ((index * 7 + fill) % 11) - 5 for index, name in enumerate(variables(expr))}


def _meaningful(expr: Expr, env: dict, arity: int) -> list:
    return evaluate(expr, env, slot_count=48)[:arity]


# ---------------------------------------------------------------------------
# Rule soundness
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(expr=_expressions(), rule_index=st.integers(min_value=0, max_value=len(_RULESET) - 1), data=st.data())
def test_rules_preserve_meaningful_slots(expr, rule_index, data):
    rule = _RULESET[rule_index]
    locations = rule.find(expr)
    if not locations:
        return
    location = data.draw(st.sampled_from(locations))
    rewritten = rule.apply_at(expr, location)
    env = _environment(expr)
    arity = output_arity(expr)
    assert _meaningful(expr, env, arity) == _meaningful(rewritten, env, arity), rule.name


@settings(max_examples=40, deadline=None)
@given(expr=_expressions())
def test_constant_fold_preserves_semantics(expr):
    env = _environment(expr)
    arity = output_arity(expr)
    folded = constant_fold(expr)
    assert _meaningful(expr, env, arity) == _meaningful(folded, env, arity)


# ---------------------------------------------------------------------------
# Tokenization / parsing invariants
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(expr=_expressions())
def test_parser_printer_round_trip(expr):
    assert parse(to_sexpr(expr)) == expr


@settings(max_examples=60, deadline=None)
@given(expr=_expressions())
def test_ici_invariant_under_renaming(expr):
    mapping = {name: f"renamed_{index}" for index, name in enumerate(variables(expr))}

    def rename(node: Expr) -> Expr:
        if isinstance(node, Var):
            return Var(mapping[node.name])
        if node.is_leaf():
            return node
        return node.with_children([rename(child) for child in node.children])

    assert canonical_form(expr) == canonical_form(rename(expr))


@settings(max_examples=40, deadline=None)
@given(expr=_scalar_expressions())
def test_cost_is_nonnegative_and_monotone_in_size(expr):
    from repro.core.cost import CostModel

    model = CostModel()
    assert model.cost(expr) >= 0.0
    wrapped = Add(expr, Var("extra"))
    assert model.cost(wrapped) >= model.cost(expr)


# ---------------------------------------------------------------------------
# Autograd arithmetic invariants
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(st.floats(min_value=-3, max_value=3, allow_nan=False), min_size=2, max_size=6),
    scale=st.floats(min_value=-2, max_value=2, allow_nan=False),
)
def test_tensor_matches_numpy(values, scale):
    array = np.asarray(values)
    tensor = Tensor(array, requires_grad=True)
    result = (tensor * scale + 1.0).sum()
    assert np.isclose(result.item(), (array * scale + 1.0).sum())
    result.backward()
    assert np.allclose(tensor.grad, np.full_like(array, scale))
