"""Property-based tests (hypothesis) for the core invariants.

* every rewrite rule preserves the meaningful output slots of random
  expressions it matches;
* ICI canonicalisation is invariant under variable renaming;
* the parser/printer round-trips arbitrary generated expressions;
* constant folding preserves semantics;
* the autograd's arithmetic matches numpy;
* study-matrix seeding hands every (condition, replicate) cell a distinct
  input stream, deterministically per spec.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.compiler.passes import constant_fold
from repro.ir import parse, to_sexpr
from repro.ir.analysis import variables
from repro.ir.evaluate import evaluate, output_arity
from repro.ir.nodes import Add, Const, Expr, Mul, Neg, Sub, Var, Vec
from repro.ir.tokenize import canonical_form
from repro.nn.tensor import Tensor
from repro.trs.registry import default_ruleset

_RULESET = default_ruleset()

# ---------------------------------------------------------------------------
# Expression strategies
# ---------------------------------------------------------------------------
_VARIABLE_NAMES = tuple(f"x{i}" for i in range(6))


def _scalar_expressions(max_depth: int = 3) -> st.SearchStrategy[Expr]:
    leaves = st.one_of(
        st.sampled_from(_VARIABLE_NAMES).map(Var),
        st.integers(min_value=-4, max_value=4).map(Const),
    )

    def extend(children: st.SearchStrategy[Expr]) -> st.SearchStrategy[Expr]:
        return st.one_of(
            st.tuples(children, children).map(lambda pair: Add(*pair)),
            st.tuples(children, children).map(lambda pair: Sub(*pair)),
            st.tuples(children, children).map(lambda pair: Mul(*pair)),
            children.map(Neg),
        )

    return st.recursive(leaves, extend, max_leaves=2 ** max_depth)


def _expressions() -> st.SearchStrategy[Expr]:
    scalars = _scalar_expressions()
    vectors = st.lists(scalars, min_size=1, max_size=4).map(lambda items: Vec(*items))
    return st.one_of(scalars, vectors)


def _environment(expr: Expr, fill: int = 3) -> dict:
    return {name: ((index * 7 + fill) % 11) - 5 for index, name in enumerate(variables(expr))}


def _meaningful(expr: Expr, env: dict, arity: int) -> list:
    return evaluate(expr, env, slot_count=48)[:arity]


# ---------------------------------------------------------------------------
# Rule soundness
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(expr=_expressions(), rule_index=st.integers(min_value=0, max_value=len(_RULESET) - 1), data=st.data())
def test_rules_preserve_meaningful_slots(expr, rule_index, data):
    rule = _RULESET[rule_index]
    locations = rule.find(expr)
    if not locations:
        return
    location = data.draw(st.sampled_from(locations))
    rewritten = rule.apply_at(expr, location)
    env = _environment(expr)
    arity = output_arity(expr)
    assert _meaningful(expr, env, arity) == _meaningful(rewritten, env, arity), rule.name


@settings(max_examples=40, deadline=None)
@given(expr=_expressions())
def test_constant_fold_preserves_semantics(expr):
    env = _environment(expr)
    arity = output_arity(expr)
    folded = constant_fold(expr)
    assert _meaningful(expr, env, arity) == _meaningful(folded, env, arity)


# ---------------------------------------------------------------------------
# Tokenization / parsing invariants
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(expr=_expressions())
def test_parser_printer_round_trip(expr):
    assert parse(to_sexpr(expr)) == expr


@settings(max_examples=60, deadline=None)
@given(expr=_expressions())
def test_ici_invariant_under_renaming(expr):
    mapping = {name: f"renamed_{index}" for index, name in enumerate(variables(expr))}

    def rename(node: Expr) -> Expr:
        if isinstance(node, Var):
            return Var(mapping[node.name])
        if node.is_leaf():
            return node
        return node.with_children([rename(child) for child in node.children])

    assert canonical_form(expr) == canonical_form(rename(expr))


@settings(max_examples=40, deadline=None)
@given(expr=_scalar_expressions())
def test_cost_is_nonnegative_and_monotone_in_size(expr):
    from repro.core.cost import CostModel

    model = CostModel()
    assert model.cost(expr) >= 0.0
    wrapped = Add(expr, Var("extra"))
    assert model.cost(wrapped) >= model.cost(expr)


# ---------------------------------------------------------------------------
# Autograd arithmetic invariants
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(st.floats(min_value=-3, max_value=3, allow_nan=False), min_size=2, max_size=6),
    scale=st.floats(min_value=-2, max_value=2, allow_nan=False),
)
def test_tensor_matches_numpy(values, scale):
    array = np.asarray(values)
    tensor = Tensor(array, requires_grad=True)
    result = (tensor * scale + 1.0).sum()
    assert np.isclose(result.item(), (array * scale + 1.0).sum())
    result.backward()
    assert np.allclose(tensor.grad, np.full_like(array, scale))


# ---------------------------------------------------------------------------
# Job queue invariants (overload protection)
# ---------------------------------------------------------------------------
def _queue_job(priority: int):
    from repro.server import Job

    return Job(source="(+ a b)", priority=priority)


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("push"), st.integers(min_value=0, max_value=3)),
            st.tuples(st.just("pop"), st.just(0)),
            st.tuples(st.just("pop_batch"), st.just(0)),
        ),
        max_size=40,
    ),
    capacity=st.integers(min_value=1, max_value=6),
)
def test_job_queue_conserves_jobs_under_random_interleavings(ops, capacity):
    """Capacity is never exceeded, and pushed == drained + shed exactly."""
    from repro.server import JobQueue

    queue = JobQueue(capacity)
    pushed, shed, drained = [], [], []
    for op, priority in ops:
        if op == "push":
            job = _queue_job(priority)
            pushed.append(job.id)
            victim = queue.push(job)
            if victim is not None:
                shed.append(victim.id)
        elif op == "pop":
            job = queue.pop(timeout=0)
            if job is not None:
                drained.append(job.id)
        else:
            drained.extend(job.id for job in queue.pop_batch(timeout=0))
        assert len(queue) <= capacity
    drained.extend(job.id for job in queue.pop_batch(timeout=0))
    # Every pushed job comes back exactly once — drained or shed, never both,
    # never twice, never lost.
    assert sorted(drained + shed) == sorted(pushed)
    assert len(set(drained)) == len(drained)


@settings(max_examples=50, deadline=None)
@given(
    jobs=st.lists(
        st.tuples(st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=5)),
        min_size=1,
        max_size=12,
    ),
    interval=st.floats(min_value=0.5, max_value=5.0, allow_nan=False),
)
def test_job_queue_aging_drain_order_is_a_total_order(jobs, interval):
    """Drain order == sort by (-effective priority, arrival): deterministic.

    Each job is backdated to the *middle* of an aging bucket so the
    milliseconds between push and drain cannot flip the floor division,
    making the expected order exactly computable.
    """
    from repro.server import JobQueue

    queue = JobQueue(aging_interval_s=interval)
    entries = []
    for sequence, (priority, aged_levels) in enumerate(jobs):
        job = _queue_job(priority)
        job.submitted_at -= interval * (aged_levels + 0.5)
        queue.push(job)
        entries.append((-(priority + aged_levels), sequence, job.id))
    expected = [job_id for _, _, job_id in sorted(entries)]
    drained = [job.id for job in queue.pop_batch(timeout=0)]
    assert drained == expected


@settings(max_examples=50, deadline=None)
@given(
    priorities=st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=20),
    level_capacity=st.integers(min_value=1, max_value=3),
)
def test_job_queue_per_priority_backpressure(priorities, level_capacity):
    """Each base-priority level is bounded separately; overflow is shed."""
    from collections import Counter

    from repro.server import JobQueue

    queue = JobQueue(per_priority_capacity=level_capacity)
    shed = 0
    for priority in priorities:
        if queue.push(_queue_job(priority)) is not None:
            shed += 1
    drained = queue.pop_batch(timeout=0)
    level_counts = Counter(job.priority for job in drained)
    assert all(count <= level_capacity for count in level_counts.values())
    offered = Counter(priorities)
    assert shed == sum(max(0, count - level_capacity) for count in offered.values())
    assert len(drained) + shed == len(priorities)


# ---------------------------------------------------------------------------
# Study-matrix seeding
# ---------------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    study_seed=st.integers(min_value=0, max_value=2**32 - 1),
    n_components=st.integers(min_value=1, max_value=5),
    replicates=st.integers(min_value=1, max_value=4),
)
def test_study_replicate_seeds_yield_distinct_input_sets(
    study_seed, n_components, replicates
):
    """Every run in a study matrix samples its own input stream.

    The two-level ``SeedSequence.spawn`` scheme behind
    :func:`repro.studies.condition_seeds` must hand every
    (condition, replicate) cell a seed whose ``sample_named_inputs`` stream
    collides with no other cell's — otherwise cross-condition metric deltas
    partially measure shared inputs instead of the ablated component.  The
    mapping must also be a pure function of the spec (same seed, same
    conditions, same replicate count -> same seeds) or resume would silently
    re-seed unfinished runs.
    """
    from repro.api import sample_named_inputs
    from repro.studies import condition_seeds

    conditions = ["baseline"] + [f"component-{i}" for i in range(n_components)]
    seeds = condition_seeds(study_seed, conditions, replicates)
    flat = [seed for condition in conditions for seed in seeds[condition]]
    assert len(set(flat)) == len(flat)  # pairwise-distinct seeds

    # Distinct seeds must translate into distinct sampled input sets: draw
    # a wide input vector per run (16 variables over [0, 63] puts accidental
    # collisions at ~2**-96) and require all streams pairwise distinct.
    names = tuple(f"v{i}" for i in range(16))
    streams = [
        tuple(sample_named_inputs(names, seed, input_range=63).values())
        for seed in flat
    ]
    assert len(set(streams)) == len(streams)

    assert condition_seeds(study_seed, conditions, replicates) == seeds
