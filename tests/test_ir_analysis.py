"""Unit tests for depth, multiplicative depth, operation counts and the DAG."""

import pytest

from repro.ir import circuit_depth, count_ops, expression_size, multiplicative_depth, parse, variables
from repro.ir.analysis import constants, dag_size, rotation_steps, unique_subexpressions
from repro.ir.dag import build_dag


class TestDepths:
    @pytest.mark.parametrize(
        "text, depth, mult_depth",
        [
            ("x", 0, 0),
            ("(+ a b)", 1, 0),
            ("(* a b)", 1, 1),
            ("(* (* a b) c)", 2, 2),
            ("(+ (* a b) (* c d))", 2, 1),
            ("(* (+ a b) (+ c d))", 2, 1),
            ("(* (* (* a b) c) d)", 3, 3),
            ("(Vec (+ a b) (* c d))", 1, 1),
            ("(VecAdd (Vec a b) (Vec c d))", 1, 0),
            ("(VecMul (VecMul (Vec a b) (Vec c d)) (Vec e f))", 2, 2),
            ("(<< (VecAdd (Vec a b) (Vec c d)) 1)", 2, 0),
        ],
    )
    def test_depths(self, text, depth, mult_depth):
        expr = parse(text)
        assert circuit_depth(expr) == depth
        assert multiplicative_depth(expr) == mult_depth

    def test_motivating_example_depths(self, motivating_expression):
        assert circuit_depth(motivating_expression) == 4
        assert multiplicative_depth(motivating_expression) == 3

    def test_depth_uses_dag_sharing(self):
        # (* t t) where t = (* a b): the shared sub-term is one DAG node.
        expr = parse("(* (* a b) (* a b))")
        assert multiplicative_depth(expr) == 2
        assert dag_size(expr) < expression_size(expr)


class TestCounts:
    def test_scalar_counts(self):
        counts = count_ops(parse("(+ (* a b) (- c d))"))
        assert counts.scalar_add == 1
        assert counts.scalar_mul == 1
        assert counts.scalar_sub == 1
        assert counts.scalar_ops == 3

    def test_vector_counts(self):
        counts = count_ops(parse("(VecAdd (VecMul (Vec a b) (Vec c d)) (<< (Vec e f) 1))"))
        assert counts.vec_add == 1
        assert counts.vec_mul == 1
        assert counts.rotations == 1
        assert counts.vec_constructors == 3

    def test_counts_are_dag_based(self):
        # The shared (* a b) sub-expression is counted once.
        counts = count_ops(parse("(+ (* a b) (* a b))"))
        assert counts.scalar_mul == 1
        assert counts.scalar_add == 1

    def test_total(self):
        counts = count_ops(parse("(+ (* a b) c)"))
        assert counts.total == 2
        assert counts.multiplications == 1

    def test_as_dict_keys(self):
        data = count_ops(parse("(+ a b)")).as_dict()
        assert data["scalar_add"] == 1
        assert set(data) == {
            "scalar_add",
            "scalar_sub",
            "scalar_mul",
            "scalar_neg",
            "vec_add",
            "vec_sub",
            "vec_mul",
            "vec_neg",
            "rotations",
            "vec_constructors",
        }


class TestStructure:
    def test_variables_in_order(self):
        assert variables(parse("(+ (* b a) (* a c))")) == ["b", "a", "c"]

    def test_constants(self):
        assert constants(parse("(+ (* 2 a) (* 3 a))")) == [2, 3]

    def test_rotation_steps(self):
        assert rotation_steps(parse("(VecAdd (<< x 4) (<< (<< x 4) 2))")) == [2, 4]

    def test_expression_vs_dag_size(self):
        expr = parse("(+ (* a b) (* a b))")
        assert expression_size(expr) == 7
        assert dag_size(expr) == 4

    def test_unique_subexpressions(self):
        expr = parse("(+ (* a b) (* a b))")
        nodes = unique_subexpressions(expr)
        assert len(nodes) == 4


class TestDag:
    def test_dag_output_and_depths(self):
        expr = parse("(* (+ a b) (+ a b))")
        dag = build_dag(expr)
        assert dag.depth == 2
        assert dag.mult_depth == 1
        assert len(dag) == 4  # a, b, (+ a b), (* .. ..)

    def test_dag_use_counts(self):
        expr = parse("(* (+ a b) (+ a b))")
        dag = build_dag(expr)
        shared = dag.node_for(parse("(+ a b)"))
        assert shared.use_count == 2

    def test_dag_topological_order(self):
        expr = parse("(+ (* a b) c)")
        dag = build_dag(expr)
        for node in dag.nodes:
            for operand in node.operands:
                assert operand < node.node_id
