"""Tests for the study engine: specs, matrix, resumable runner, analysis.

The kill/resume acceptance test is here: a study interrupted mid-matrix
(``max_runs`` stands in for the kill, plus a genuinely torn log tail) must
resume to completion executing exactly the missing replicates — never
re-running a finished one.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro.studies import (
    BASELINE,
    Component,
    RunConfig,
    StudyRunner,
    StudySpec,
    available_components,
    bootstrap_ci,
    component_importance,
    condition_seeds,
    condition_summary,
    default_components,
    generate_runs,
    get_component,
    load_study_spec,
    rank_components,
    study_report,
)

# A deliberately tiny spec: 1 component, 1 workload, 2 replicates, 2 jobs —
# the runner tests boot real JobServers, so every extra cell costs seconds.
TINY = StudySpec(
    name="tiny",
    components=("coalescing",),
    workloads=("dot-product",),
    replicates=2,
    jobs_per_replicate=2,
    warmup_runs=0,
)


def _run_record(condition, metrics, replicate=0):
    return {
        "type": "run",
        "status": "completed",
        "condition": condition,
        "run_id": f"{condition}/r{replicate}",
        "replicate": replicate,
        "metrics": metrics,
    }


class TestComponents:
    def test_registry_contents(self):
        names = available_components()
        assert names == sorted(names)
        for expected in (
            "compiler-opt",
            "vector-backend",
            "vm-tapeopt",
            "coalescing",
            "compile-cache",
            "measured-scheduler",
            "admission-control",
        ):
            assert expected in names

    def test_default_excludes_non_default(self):
        defaults = default_components()
        assert "admission-control" not in defaults  # opt-in component
        assert set(defaults) < set(available_components())

    def test_unknown_component_raises_with_known_list(self):
        with pytest.raises(KeyError, match="coalescing"):
            get_component("no-such-component")

    def test_as_dict_round_trips_fields(self):
        component = get_component("compile-cache")
        assert isinstance(component, Component)
        payload = component.as_dict()
        assert payload["name"] == "compile-cache"
        assert payload["ablated"] == {"cache_capacity": 0, "memoize_circuits": False}


class TestRunConfig:
    def test_with_overrides_rejects_unknown_keys(self):
        with pytest.raises(KeyError, match="not_a_knob"):
            RunConfig().with_overrides({"not_a_knob": 1})

    def test_dict_round_trip(self):
        config = RunConfig(coalesce=False, cache_capacity=7, backend="reference")
        assert RunConfig.from_dict(config.as_dict()) == config


class TestStudySpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            StudySpec(replicates=0)
        with pytest.raises(ValueError):
            StudySpec(jobs_per_replicate=0)
        with pytest.raises(ValueError):
            StudySpec(workloads=())
        with pytest.raises(ValueError):
            StudySpec(priorities=())

    def test_empty_components_resolve_to_defaults(self):
        assert StudySpec().component_names() == default_components()

    def test_unknown_component_rejected(self):
        with pytest.raises(KeyError):
            StudySpec(components=("bogus",)).component_names()

    def test_baseline_config_merges_component_baselines(self):
        # admission-control's baseline turns admission on; selecting it must
        # flow into the baseline condition, not just the ablated one.
        spec = StudySpec(components=("admission-control",))
        assert spec.baseline_config().admission == "shed"
        assert StudySpec(components=("coalescing",)).baseline_config().admission == "off"

    def test_dict_round_trip(self):
        spec = StudySpec(
            components=("coalescing", "compile-cache"),
            workloads=("dot-product",),
            replicates=4,
            seed=9,
            warmup_runs=2,
            base_config=RunConfig(workers=3),
        )
        clone = StudySpec.from_dict(json.loads(json.dumps(spec.as_dict())))
        assert clone.as_dict() == spec.as_dict()


class TestRunMatrix:
    def test_shape_and_uniqueness(self):
        spec = StudySpec(components=("coalescing", "compile-cache"), replicates=3)
        runs = generate_runs(spec)
        assert len(runs) == (1 + 2) * 3
        run_ids = [run.run_id for run in runs]
        assert len(set(run_ids)) == len(run_ids)
        seeds = [run.seed for run in runs]
        assert len(set(seeds)) == len(seeds)

    def test_replicate_major_order(self):
        """Conditions interleave: condition-major order would hand the first
        condition the whole process-warm-up cost and bias every score."""
        spec = StudySpec(components=("coalescing", "compile-cache"), replicates=2)
        order = [(run.replicate, run.condition) for run in generate_runs(spec)]
        assert order == [
            (0, BASELINE),
            (0, "coalescing"),
            (0, "compile-cache"),
            (1, BASELINE),
            (1, "coalescing"),
            (1, "compile-cache"),
        ]

    def test_single_delta_conditions(self):
        spec = StudySpec(components=("coalescing",))
        runs = generate_runs(spec)
        baseline = next(r for r in runs if r.condition == BASELINE)
        ablated = next(r for r in runs if r.condition == "coalescing")
        changed = {
            f.name
            for f in dataclasses.fields(RunConfig)
            if getattr(baseline.config, f.name) != getattr(ablated.config, f.name)
        }
        assert changed == set(get_component("coalescing").ablated)

    def test_condition_seeds_deterministic(self):
        conditions = [BASELINE, "a", "b"]
        assert condition_seeds(7, conditions, 3) == condition_seeds(7, conditions, 3)
        assert condition_seeds(7, conditions, 3) != condition_seeds(8, conditions, 3)


class TestStudyRunner:
    def test_interrupt_then_resume_executes_exactly_the_missing_runs(self, tmp_path):
        """The acceptance test: kill mid-study, resume, nothing re-runs."""
        study_dir = str(tmp_path / "study")
        matrix = [run.run_id for run in generate_runs(TINY)]

        first = StudyRunner(TINY, study_dir).run(max_runs=2)  # the "kill"
        assert not first.complete
        assert len(first.executed) == 2
        assert first.remaining == matrix[2:]
        log_before = open(os.path.join(study_dir, "study.jsonl")).read()

        second = StudyRunner(TINY, study_dir).run()
        assert second.complete
        assert second.skipped == first.executed  # finished replicates skipped
        assert second.executed == first.remaining  # only the missing ran
        # The resumed log extends, never rewrites, the interrupted one.
        log_after = open(os.path.join(study_dir, "study.jsonl")).read()
        assert log_after.startswith(log_before)
        # Every matrix cell recorded exactly once.
        recorded = [
            record["run_id"]
            for record in StudyRunner(TINY, study_dir).load_records()
            if record.get("type") == "run"
        ]
        assert sorted(recorded) == sorted(matrix)
        assert len(recorded) == len(matrix)

    def test_resume_tolerates_torn_tail(self, tmp_path):
        study_dir = str(tmp_path / "study")
        StudyRunner(TINY, study_dir).run(max_runs=1)
        log_path = os.path.join(study_dir, "study.jsonl")
        with open(log_path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "run", "run_id": "baseline/r1", "status"')  # torn
        runner = StudyRunner(TINY, study_dir)
        assert len(runner.completed_runs()) == 1  # torn line ignored
        outcome = runner.run()
        assert outcome.complete
        assert len(outcome.skipped) == 1

    def test_spec_mismatch_refused(self, tmp_path):
        study_dir = str(tmp_path / "study")
        StudyRunner(TINY, study_dir).run(max_runs=1)
        other = dataclasses.replace(TINY, replicates=3)
        with pytest.raises(ValueError, match="different spec"):
            StudyRunner(other, study_dir).run(max_runs=0)

    def test_run_records_carry_metrics(self, tmp_path):
        study_dir = str(tmp_path / "study")
        runner = StudyRunner(TINY, study_dir)
        runner.run(max_runs=1)
        (record,) = runner.completed_runs().values()
        metrics = record["metrics"]
        assert metrics["jobs_completed"] == TINY.jobs_per_replicate
        assert metrics["jobs_failed"] == 0
        assert metrics["throughput_jobs_per_s"] > 0
        assert metrics["verified_fraction"] == 1.0
        assert record["config"] == TINY.baseline_config().as_dict()

    def test_load_study_spec(self, tmp_path):
        study_dir = str(tmp_path / "study")
        assert load_study_spec(study_dir) is None
        StudyRunner(TINY, study_dir).run(max_runs=1)
        assert load_study_spec(study_dir) == TINY


class TestAnalysis:
    def test_importance_sign_conventions(self):
        records = [
            _run_record(BASELINE, {"throughput_jobs_per_s": 10.0}, 0),
            _run_record(BASELINE, {"throughput_jobs_per_s": 10.0}, 1),
            _run_record("comp", {"throughput_jobs_per_s": 5.0}, 0),
            _run_record("comp", {"throughput_jobs_per_s": 5.0}, 1),
        ]
        (row,) = component_importance(
            records, ["comp"], metric="throughput_jobs_per_s", resamples=100
        )
        # Removing the component halved throughput: it is worth half the
        # baseline, and the sign says removing it hurts.
        assert row["importance"] == pytest.approx(0.5)
        assert row["delta"] == pytest.approx(-5.0)

        records = [
            _run_record(BASELINE, {"mean_latency_ms": 10.0}, 0),
            _run_record("comp", {"mean_latency_ms": 20.0}, 0),
        ]
        (row,) = component_importance(
            records, ["comp"], metric="mean_latency_ms", resamples=100
        )
        # Latency doubled when ablated — lower-is-better flips the sign so
        # the component still scores positive.
        assert row["importance"] == pytest.approx(1.0)

    def test_importance_edge_cases(self):
        # Zero baseline: no denominator, defined as zero importance.
        records = [
            _run_record(BASELINE, {"jobs_failed": 0.0}, 0),
            _run_record("comp", {"jobs_failed": 3.0}, 0),
        ]
        (row,) = component_importance(records, ["comp"], metric="jobs_failed", resamples=50)
        assert row["importance"] == 0.0
        # Missing ablated replicates: no evidence, zero importance + CI.
        records = [_run_record(BASELINE, {"throughput_jobs_per_s": 10.0}, 0)]
        (row,) = component_importance(
            records, ["comp"], metric="throughput_jobs_per_s", resamples=50
        )
        assert row["importance"] == 0.0
        assert (row["ci_low"], row["ci_high"]) == (0.0, 0.0)
        assert row["ablated_replicates"] == 0

    def test_bootstrap_ci_degenerate_data_is_zero_width(self):
        low, high = bootstrap_ci([10.0, 10.0, 10.0], [5.0, 5.0, 5.0], "throughput_jobs_per_s")
        assert low == high == pytest.approx(0.5)

    def test_bootstrap_ci_contains_point_estimate(self):
        baseline = [10.0, 11.0, 9.0, 10.5]
        ablated = [5.0, 6.0, 4.5, 5.5]
        low, high = bootstrap_ci(baseline, ablated, "throughput_jobs_per_s", resamples=500)
        point = (sum(baseline) / 4 - sum(ablated) / 4) / (sum(baseline) / 4)
        assert low <= point <= high

    def test_condition_summary(self):
        records = [
            _run_record(BASELINE, {"x": 1.0}, 0),
            _run_record(BASELINE, {"x": 3.0}, 1),
            _run_record("comp", {"x": 9.0}, 0),
        ]
        summary = condition_summary(records, BASELINE, ["x", "missing"])
        assert summary["metrics"]["x"] == {
            "mean": pytest.approx(2.0),
            "std": pytest.approx(2.0 ** 0.5),
            "n": 2,
        }
        assert summary["metrics"]["missing"]["n"] == 0

    def test_rank_components_orders_by_magnitude(self):
        rows = [
            {"component": "small", "importance": 0.1},
            {"component": "negative", "importance": -0.9},
            {"component": "large", "importance": 0.5},
        ]
        ranked = rank_components(rows)
        assert [row["component"] for row in ranked] == ["negative", "large", "small"]
        assert [row["rank"] for row in ranked] == [1, 2, 3]

    def test_study_report_structure(self):
        spec = StudySpec(components=("coalescing",), replicates=1)
        records = [
            _run_record(BASELINE, {"throughput_jobs_per_s": 10.0}, 0),
            _run_record("coalescing", {"throughput_jobs_per_s": 8.0}, 0),
        ]
        report = study_report(spec.as_dict(), records, resamples=50)
        assert report["primary_metric"] == "throughput_jobs_per_s"
        assert report["runs_recorded"] == 2
        assert [c["condition"] for c in report["conditions"]] == [BASELINE, "coalescing"]
        assert report["ranking"][0]["component"] == "coalescing"
        assert report["ranking"][0]["importance"] == pytest.approx(0.2)
