"""Unit tests for pattern matching, substitution and path addressing."""

import pytest

from repro.ir import PatternVar, find_matches, get_at, match, parse, replace_at, substitute
from repro.ir.nodes import Add, Const, Mul, Var
from repro.trs.rule import pattern


class TestMatch:
    def test_pattern_var_matches_anything(self):
        bindings = match(PatternVar("x"), parse("(+ a b)"))
        assert bindings == {"x": parse("(+ a b)")}

    def test_structured_match(self):
        bindings = match(pattern("(+ ?a ?b)"), parse("(+ x (* y z))"))
        assert bindings["a"] == Var("x")
        assert bindings["b"] == parse("(* y z)")

    def test_non_linear_match_success(self):
        bindings = match(pattern("(+ (* ?a ?b) (* ?a ?c))"), parse("(+ (* x y) (* x z))"))
        assert bindings["a"] == Var("x")

    def test_non_linear_match_failure(self):
        assert match(pattern("(+ (* ?a ?b) (* ?a ?c))"), parse("(+ (* x y) (* w z))")) is None

    def test_constant_in_pattern(self):
        assert match(pattern("(* ?x 1)"), parse("(* q 1)")) == {"x": Var("q")}
        assert match(pattern("(* ?x 1)"), parse("(* q 2)")) is None

    def test_kind_restriction_const(self):
        assert match(pattern("(+ ?a:const ?b:const)"), parse("(+ 1 2)")) is not None
        assert match(pattern("(+ ?a:const ?b:const)"), parse("(+ x 2)")) is None

    def test_kind_restriction_var(self):
        restricted = PatternVar("v", kind="var")
        assert match(restricted, Var("x")) is not None
        assert match(restricted, Const(1)) is None

    def test_kind_restriction_leaf(self):
        restricted = PatternVar("l", kind="leaf")
        assert match(restricted, Const(1)) is not None
        assert match(restricted, parse("(+ a b)")) is None

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            PatternVar("x", kind="weird")

    def test_operator_mismatch(self):
        assert match(pattern("(+ ?a ?b)"), parse("(* a b)")) is None


class TestSubstitute:
    def test_substitute_simple(self):
        bindings = match(pattern("(+ (* ?a ?b) (* ?a ?c))"), parse("(+ (* x y) (* x z))"))
        result = substitute(pattern("(* ?a (+ ?b ?c))"), bindings)
        assert result == parse("(* x (+ y z))")

    def test_substitute_missing_binding_raises(self):
        with pytest.raises(KeyError):
            substitute(pattern("(+ ?a ?missing)"), {"a": Var("x")})

    def test_substitute_without_pattern_vars_is_identity(self):
        template = parse("(+ a 1)")
        assert substitute(template, {}) is template


class TestLocations:
    def test_find_matches_preorder(self):
        expr = parse("(+ (* a b) (* c d))")
        matches = find_matches(pattern("(* ?x ?y)"), expr)
        assert [m.path for m in matches] == [(0,), (1,)]

    def test_find_matches_limit(self):
        expr = parse("(+ (* a b) (* c d))")
        assert len(find_matches(pattern("(* ?x ?y)"), expr, limit=1)) == 1

    def test_find_matches_includes_root(self):
        expr = parse("(* (* a b) c)")
        matches = find_matches(pattern("(* ?x ?y)"), expr)
        assert matches[0].path == ()

    def test_get_at(self):
        expr = parse("(+ (* a b) (* c d))")
        assert get_at(expr, (1, 0)) == Var("c")
        assert get_at(expr, ()) == expr

    def test_replace_at(self):
        expr = parse("(+ (* a b) c)")
        replaced = replace_at(expr, (0,), Var("t"))
        assert replaced == parse("(+ t c)")

    def test_replace_at_root(self):
        expr = parse("(+ a b)")
        assert replace_at(expr, (), Var("z")) == Var("z")

    def test_replace_preserves_siblings(self):
        expr = parse("(Vec (+ a b) (+ c d) (+ e f))")
        replaced = replace_at(expr, (1,), Var("t"))
        assert replaced == parse("(Vec (+ a b) t (+ e f))")


class TestPatternParsing:
    def test_pattern_helper_builds_pattern_vars(self):
        p = pattern("(+ ?a ?b)")
        assert isinstance(p, Add)
        assert isinstance(p.lhs, PatternVar)

    def test_pattern_helper_constants_stay_literal(self):
        p = pattern("(* ?x 0)")
        assert isinstance(p, Mul)
        assert p.rhs == Const(0)
