"""Tests for the parallel cached compilation service (repro.service)."""

from __future__ import annotations

import dataclasses
import time
from types import SimpleNamespace

import pytest

from repro.baselines.coyote import CoyoteCompiler
from repro.baselines.greedy_trs import GreedyChehabCompiler
from repro.compiler.circuit import CircuitProgram, InputSlot, Opcode
from repro.compiler.pipeline import Compiler, CompilerOptions
from repro.core.cost import CostModel, CostWeights
from repro.experiments.harness import BenchmarkRunner
from repro.fhe.params import BFVParameters
from repro.ir.parser import parse
from repro.kernels.registry import benchmark_suite, small_benchmark_suite
from repro.service import (
    BatchReport,
    CompilationCache,
    CompilationJob,
    CompilationService,
    cache_key,
    compiler_fingerprint,
    makespan,
    partition_jobs,
)

FAST_GREEDY = CompilerOptions(optimizer="greedy", max_rewrite_steps=3)


def _jobs(suite):
    return [CompilationJob(expr=b.expression(), name=b.name) for b in suite]


# ---------------------------------------------------------------------------
# cache semantics
# ---------------------------------------------------------------------------
class TestCacheSemantics:
    def test_miss_then_hit(self):
        service = CompilationService(options=FAST_GREEDY)
        expr = parse("(+ (* a b) c)")
        service.compile_expression(expr, name="one")
        assert service.cache.stats.misses == 1 and service.cache.stats.hits == 0
        report = service.compile_expression(expr, name="one")
        assert service.cache.stats.hits == 1
        assert report.name == "one"

    def test_structurally_equal_expressions_share_an_entry(self):
        service = CompilationService(options=FAST_GREEDY)
        service.compile_expression(parse("(+ a b)"))
        service.compile_expression(parse("(+ a b)"))
        assert service.cache.stats.hits == 1

    def test_different_expression_misses(self):
        service = CompilationService(options=FAST_GREEDY)
        service.compile_expression(parse("(+ a b)"))
        service.compile_expression(parse("(+ a c)"))
        assert service.cache.stats.hits == 0
        assert service.cache.stats.misses == 2

    def test_cached_report_is_renamed_per_job(self):
        service = CompilationService(options=FAST_GREEDY)
        expr = parse("(* (+ a b) c)")
        first = service.compile_expression(expr, name="alpha")
        second = service.compile_expression(expr, name="beta")
        assert first.name == "alpha" and second.name == "beta"
        assert second.circuit.name == "beta"
        assert first.stats == second.stats

    def test_lru_eviction(self):
        cache = CompilationCache(capacity=2)
        service = CompilationService(options=FAST_GREEDY, cache=cache)
        a, b, c = parse("(+ a b)"), parse("(+ a c)"), parse("(+ a d)")
        service.compile_expression(a)
        service.compile_expression(b)
        service.compile_expression(c)  # evicts a
        assert cache.stats.evictions == 1
        service.compile_expression(a)  # miss again
        assert cache.stats.misses == 4

    def test_disk_tier_survives_a_new_cache_instance(self, tmp_path):
        directory = str(tmp_path / "compile-cache")
        expr = parse("(VecAdd (Vec a b) (Vec c d))")
        cold = CompilationService(
            options=FAST_GREEDY, cache=CompilationCache(directory=directory)
        )
        report = cold.compile_expression(expr, name="k")
        warm = CompilationService(
            options=FAST_GREEDY, cache=CompilationCache(directory=directory)
        )
        cached = warm.compile_expression(expr, name="k")
        assert warm.cache.stats.disk_hits == 1
        assert cached.stats == report.stats

    def test_unstable_fingerprints_stay_out_of_the_disk_tier(self, tmp_path):
        class OpaqueOptimizer:
            def optimize(self, expr):
                raise AssertionError("not exercised")

        directory = str(tmp_path / "compile-cache")
        compiler = Compiler(CompilerOptions(optimizer="none"))
        service = CompilationService(
            Compiler(CompilerOptions(optimizer=OpaqueOptimizer())),
            cache=CompilationCache(directory=directory),
        )
        _, stable = compiler_fingerprint(service.compiler)
        assert not stable
        del compiler


# ---------------------------------------------------------------------------
# cache-key sensitivity to the compiler configuration
# ---------------------------------------------------------------------------
class TestCacheKeySensitivity:
    BASE = CompilerOptions()

    @pytest.mark.parametrize(
        "variant",
        [
            CompilerOptions(optimizer="none"),
            CompilerOptions(optimizer="beam"),
            CompilerOptions(cost_model=CostModel(weights=CostWeights(ops=1, depth=50, mult_depth=50))),
            CompilerOptions(layout_before_encryption=False),
            CompilerOptions(select_rotation_keys=True),
            CompilerOptions(rotation_key_budget=4),
            CompilerOptions(params=BFVParameters(poly_modulus_degree=8192, plain_modulus=786433, coeff_modulus_bits=389)),
            CompilerOptions(max_rewrite_steps=10),
        ],
        ids=[
            "optimizer-none",
            "optimizer-beam",
            "cost_model",
            "layout_before_encryption",
            "select_rotation_keys",
            "rotation_key_budget",
            "params",
            "max_rewrite_steps",
        ],
    )
    def test_every_options_field_changes_the_key(self, variant):
        expr = parse("(+ a b)")
        base_print, base_stable = compiler_fingerprint(Compiler(self.BASE))
        variant_print, variant_stable = compiler_fingerprint(Compiler(variant))
        assert base_stable and variant_stable
        assert base_print != variant_print
        assert cache_key(expr, base_print) != cache_key(expr, variant_print)

    def test_equal_options_share_a_fingerprint(self):
        first, _ = compiler_fingerprint(Compiler(CompilerOptions()))
        second, _ = compiler_fingerprint(Compiler(CompilerOptions()))
        assert first == second

    def test_wrapper_compilers_fingerprint_their_inner_pipeline(self):
        wrapped, stable = compiler_fingerprint(GreedyChehabCompiler())
        assert stable and wrapped.startswith("Compiler(")

    def test_coyote_fingerprints_its_options(self):
        fingerprint, stable = compiler_fingerprint(CoyoteCompiler())
        assert stable and fingerprint.startswith("CoyoteCompiler(")

    def test_no_cross_configuration_hits(self):
        cache = CompilationCache()
        expr = parse("(* a b)")
        greedy = CompilationService(options=CompilerOptions(optimizer="greedy"), cache=cache)
        none = CompilationService(options=CompilerOptions(optimizer="none"), cache=cache)
        greedy.compile_expression(expr)
        none.compile_expression(expr)
        assert cache.stats.hits == 0 and cache.stats.misses == 2


# ---------------------------------------------------------------------------
# cost-aware scheduling
# ---------------------------------------------------------------------------
class TestScheduler:
    def test_largest_first_balances_loads(self):
        plans = partition_jobs([8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0], workers=2)
        loads = sorted(plan.load for plan in plans)
        assert sum(loads) == pytest.approx(36.0)
        assert loads[1] == pytest.approx(18.0)  # perfect split for this instance

    def test_one_heavy_job_does_not_drag_peers(self):
        # Round-robin would pair the heavy job with others; LPT isolates it.
        plans = partition_jobs([100.0, 1.0, 1.0, 1.0], workers=2)
        assert makespan(plans) == pytest.approx(100.0)

    def test_deterministic_partition(self):
        weights = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        first = partition_jobs(weights, workers=3)
        second = partition_jobs(weights, workers=3)
        assert [plan.job_indices for plan in first] == [plan.job_indices for plan in second]

    def test_fewer_jobs_than_workers(self):
        plans = partition_jobs([2.0], workers=4)
        assert sum(len(plan.job_indices) for plan in plans) == 1


# ---------------------------------------------------------------------------
# parallel vs serial equivalence and fallbacks
# ---------------------------------------------------------------------------
class TestParallelCompilation:
    def test_parallel_matches_serial_on_the_full_benchmark_suite(self):
        jobs = _jobs(benchmark_suite())
        serial = CompilationService(options=FAST_GREEDY, workers=1, cache=CompilationCache())
        parallel = CompilationService(options=FAST_GREEDY, workers=2, cache=CompilationCache())
        serial_batch = serial.compile_batch(jobs)
        parallel_batch = parallel.compile_batch(jobs)
        assert parallel_batch.serial_fallback_reason is None
        assert len(parallel_batch.reports) == len(jobs)
        for serial_report, parallel_report in zip(serial_batch.reports, parallel_batch.reports):
            assert serial_report.name == parallel_report.name
            assert serial_report.stats.as_dict() == parallel_report.stats.as_dict()
            assert serial_report.optimized_expr == parallel_report.optimized_expr
            assert serial_report.final_cost == parallel_report.final_cost
        used_workers = {
            record.worker for record in parallel_batch.records if not record.cache_hit
        }
        assert len(used_workers) > 1

    def test_unpicklable_compiler_falls_back_to_serial(self):
        class UnpicklableOptimizer:
            def __init__(self):
                self.blocker = lambda expr: expr  # lambdas do not pickle

            def optimize(self, expr):
                from repro.trs.rewriter import RewriteResult

                return RewriteResult(
                    initial=expr, optimized=expr, steps=[], initial_cost=0.0, final_cost=0.0
                )

        service = CompilationService(
            Compiler(CompilerOptions(optimizer=UnpicklableOptimizer())), workers=2
        )
        batch = service.compile_batch(_jobs(small_benchmark_suite()[:3]))
        assert batch.serial_fallback_reason is not None
        assert len(batch.reports) == 3

    def test_duplicate_expressions_in_one_batch_compile_once(self):
        service = CompilationService(options=FAST_GREEDY)
        expr = parse("(+ (* a b) (* c d))")
        batch = service.compile_batch(
            [CompilationJob(expr=expr, name="first"), CompilationJob(expr=expr, name="second")]
        )
        assert [report.name for report in batch.reports] == ["first", "second"]
        assert batch.reports[0].stats == batch.reports[1].stats
        # One real compilation; the duplicate is fanned out, not recompiled,
        # and is reported as a dedup, not as a (cold-cache) hit.
        assert service.cache.stats.stores == 1
        assert batch.cache_hits == 0
        assert [record.deduplicated for record in batch.records] == [False, True]

    def test_batch_report_accounting(self):
        service = CompilationService(options=FAST_GREEDY)
        jobs = _jobs(small_benchmark_suite()[:4])
        batch = service.compile_batch(jobs)
        assert isinstance(batch, BatchReport)
        assert [record.name for record in batch.records] == [job.name for job in jobs]
        assert all(record.estimated_cost > 0 for record in batch.records)
        assert batch.cache_hits == 0
        rerun = service.compile_batch(jobs)
        assert rerun.cache_hits == len(jobs)
        assert all(record.worker == -1 for record in rerun.records)


# ---------------------------------------------------------------------------
# warm-cache speedup (the headline acceptance criterion)
# ---------------------------------------------------------------------------
class TestWarmCacheSpeedup:
    def test_warm_suite_compilation_is_at_least_5x_faster(self):
        service = CompilationService(options=FAST_GREEDY)
        jobs = _jobs(small_benchmark_suite())
        start = time.perf_counter()
        cold = service.compile_batch(jobs)
        cold_wall = time.perf_counter() - start
        start = time.perf_counter()
        warm = service.compile_batch(jobs)
        warm_wall = time.perf_counter() - start
        assert cold.cache_hits == 0
        assert warm.cache_hits == len(jobs)
        assert [r.stats for r in warm.reports] == [r.stats for r in cold.reports]
        assert cold_wall >= 5 * warm_wall, (
            f"warm run not >=5x faster: cold {cold_wall:.3f}s, warm {warm_wall:.3f}s"
        )


# ---------------------------------------------------------------------------
# harness integration
# ---------------------------------------------------------------------------
class TestHarnessIntegration:
    def test_runner_routes_compilation_through_the_shared_cache(self):
        cache = CompilationCache()
        suite = small_benchmark_suite()[:3]
        runner = BenchmarkRunner(
            {"greedy": GreedyChehabCompiler(max_rewrite_steps=3)}, cache=cache
        )
        first = runner.run(suite)
        assert cache.stats.misses == len(suite) and cache.stats.hits == 0
        second = runner.run(suite)
        assert cache.stats.hits == len(suite)
        assert [r.as_dict() for r in first] == [r.as_dict() for r in second]
        assert runner.last_batch_reports["greedy"].cache_hits == len(suite)
        assert all(result.correct for result in first)

    def test_multi_output_circuits_are_verified_by_declared_name(self):
        # A two-output circuit: out "first" carries input x, out "second"
        # carries input y.  Correctness must compare the concatenation of the
        # declared outputs, not an arbitrary dict entry.
        circuit = CircuitProgram(name="two_output", scalar_inputs=["x", "y"])
        rx = circuit.emit(Opcode.LOAD_INPUT, layout=[InputSlot(name="x")])
        ry = circuit.emit(Opcode.LOAD_INPUT, layout=[InputSlot(name="y")])
        circuit.mark_output(rx, "first", 1)
        circuit.mark_output(ry, "second", 1)
        report = SimpleNamespace(circuit=circuit, compile_time_s=0.0, stats=circuit.stats())
        runner = BenchmarkRunner({"greedy": GreedyChehabCompiler(max_rewrite_steps=1)})
        result = runner._make_result(
            SimpleNamespace(name="two_output"),
            "label",
            report,
            reference=[3, 5],
            inputs={"x": 3, "y": 5},
        )
        assert result.correct
