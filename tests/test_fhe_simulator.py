"""Unit tests for the BFV simulator: parameters, encoder, evaluator, noise, keys."""

import pytest

from repro.core.exceptions import InvalidParameters, NoiseBudgetExhausted, RotationKeyMissing
from repro.fhe import (
    BFVParameters,
    BatchEncoder,
    FHEContext,
    KeyGenerator,
    LatencyModel,
    NoiseModel,
)


class TestParameters:
    def test_paper_defaults(self):
        params = BFVParameters.default()
        assert params.poly_modulus_degree == 16384
        assert params.coeff_modulus_bits == 389
        assert params.plain_modulus_bits == 20
        assert params.initial_noise_budget == 369.0

    def test_slot_count_equals_degree(self):
        assert BFVParameters.default(4096).slot_count == 4096

    def test_batching_supported(self):
        for degree in (1024, 2048, 4096, 8192, 16384):
            assert BFVParameters.default(degree).supports_batching()

    def test_non_power_of_two_rejected(self):
        with pytest.raises(InvalidParameters):
            BFVParameters(poly_modulus_degree=1000)

    def test_coeff_modulus_must_exceed_plain(self):
        with pytest.raises(InvalidParameters):
            BFVParameters(poly_modulus_degree=1024, plain_modulus=2**30, coeff_modulus_bits=20)

    def test_unknown_degree_default_rejected(self):
        with pytest.raises(InvalidParameters):
            BFVParameters.default(512)


class TestEncoder:
    def test_encode_decode_round_trip(self, small_params):
        encoder = BatchEncoder(small_params)
        values = [1, -2, 3, 0, 7]
        decoded = encoder.decode(encoder.encode(values), len(values))
        assert decoded == values

    def test_encode_pads_with_zeros(self, small_params):
        encoder = BatchEncoder(small_params)
        plaintext = encoder.encode([5])
        assert plaintext.slots[1] == 0

    def test_encode_scalar_broadcasts(self, small_params):
        encoder = BatchEncoder(small_params)
        plaintext = encoder.encode_scalar(3)
        assert all(int(v) == 3 for v in plaintext.slots[:10])

    def test_too_many_values_rejected(self, small_params):
        encoder = BatchEncoder(small_params)
        with pytest.raises(ValueError):
            encoder.encode([0] * (small_params.slot_count + 1))


class TestEvaluator:
    @pytest.fixture()
    def context(self):
        # n = 4096 gives a ~93-bit budget: enough for a few multiplications,
        # small enough that a chain of them visibly exhausts it.
        return FHEContext(BFVParameters.default(4096), galois_steps=[1, 2, -1, 4])

    def _encrypt(self, context, values):
        return context.encryptor.encrypt(context.encoder.encode(values))

    def _decrypt(self, context, ciphertext, count):
        return context.encoder.decode(context.decryptor.decrypt(ciphertext), count)

    def test_addition(self, context):
        result = context.evaluator.add(self._encrypt(context, [1, 2]), self._encrypt(context, [10, 20]))
        assert self._decrypt(context, result, 2) == [11, 22]

    def test_subtraction(self, context):
        result = context.evaluator.sub(self._encrypt(context, [5, 5]), self._encrypt(context, [2, 7]))
        assert self._decrypt(context, result, 2) == [3, -2]

    def test_multiplication(self, context):
        result = context.evaluator.multiply(self._encrypt(context, [3, 4]), self._encrypt(context, [5, 6]))
        assert self._decrypt(context, result, 2) == [15, 24]

    def test_multiply_plain(self, context):
        plain = context.encoder.encode([2, 3])
        result = context.evaluator.multiply_plain(self._encrypt(context, [7, 7]), plain)
        assert self._decrypt(context, result, 2) == [14, 21]

    def test_square(self, context):
        result = context.evaluator.square(self._encrypt(context, [4]))
        assert self._decrypt(context, result, 1) == [16]

    def test_negation(self, context):
        result = context.evaluator.negate(self._encrypt(context, [9]))
        assert self._decrypt(context, result, 1) == [-9]

    def test_rotation_left(self, context):
        result = context.evaluator.rotate(self._encrypt(context, [1, 2, 3]), 1)
        assert self._decrypt(context, result, 2) == [2, 3]

    def test_rotation_right(self, context):
        result = context.evaluator.rotate(self._encrypt(context, [1, 2, 3]), -1)
        assert self._decrypt(context, result, 3)[1:] == [1, 2]

    def test_rotation_requires_key(self, context):
        with pytest.raises(RotationKeyMissing):
            context.evaluator.rotate(self._encrypt(context, [1, 2, 3]), 7)

    def test_rotation_by_zero_is_identity(self, context):
        ct = self._encrypt(context, [1, 2, 3])
        result = context.evaluator.rotate(ct, 0)
        assert self._decrypt(context, result, 3) == [1, 2, 3]

    def test_noise_budget_decreases(self, context):
        a = self._encrypt(context, [2])
        b = self._encrypt(context, [3])
        product = context.evaluator.multiply(a, b)
        assert product.noise_budget < a.noise_budget
        total = context.evaluator.add(a, b)
        assert total.noise_budget > product.noise_budget

    def test_multiplication_grows_size_and_relinearize_restores(self, context):
        product = context.evaluator.multiply(self._encrypt(context, [2]), self._encrypt(context, [3]))
        assert product.size == 3
        assert context.evaluator.relinearize(product).size == 2

    def test_decrypt_fails_when_budget_exhausted(self, context):
        ct = self._encrypt(context, [2])
        for _ in range(30):
            ct = context.evaluator.multiply(ct, self._encrypt(context, [1]))
        assert context.decryptor.invariant_noise_budget(ct) == 0.0
        with pytest.raises(NoiseBudgetExhausted):
            context.decryptor.decrypt(ct)

    def test_operation_metering_is_per_evaluator(self, context):
        from repro.fhe import Evaluator

        evaluator = Evaluator(context)
        a = self._encrypt(context, [1])
        evaluator.add(a, a)
        evaluator.multiply(a, a)
        log = evaluator.log
        assert log.counts["add"] == 1
        assert log.counts["multiply"] == 1
        assert log.total_latency_ms > 0
        # A fresh evaluator starts with a fresh meter: no shared accumulation
        # (and no reset_log() footgun to remember).
        assert Evaluator(context).log.counts == {}
        assert not hasattr(evaluator, "reset_log")

    def test_consumed_noise_budget(self, context):
        a = self._encrypt(context, [1])
        product = context.evaluator.multiply(a, a)
        consumed = context.decryptor.consumed_noise_budget(product)
        assert consumed == pytest.approx(context.noise_model.multiply_cost())


class TestNoiseAndLatencyModels:
    def test_multiplication_dominates(self):
        params = BFVParameters.default(16384)
        noise = NoiseModel(params)
        assert noise.multiply_cost() > noise.rotate_cost(1) > noise.add_cost()
        assert noise.multiply_cost() > noise.multiply_plain_cost()

    def test_latency_ordering_matches_cost_model(self):
        latency = LatencyModel(BFVParameters.default(16384))
        assert latency.cost_ms("multiply") > latency.cost_ms("rotate") > latency.cost_ms("add")
        assert latency.cost_ms("multiply_plain") < latency.cost_ms("multiply")

    def test_latency_scales_with_degree(self):
        small = LatencyModel(BFVParameters.default(4096))
        large = LatencyModel(BFVParameters.default(16384))
        assert large.cost_ms("multiply") > small.cost_ms("multiply")

    def test_unknown_operation_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(BFVParameters.default(1024)).cost_ms("bootstrap")


class TestKeys:
    def test_default_galois_steps(self, small_params):
        keygen = KeyGenerator(small_params)
        keys = keygen.create_galois_keys()
        assert keys.key_count == 2 * 10  # 2 * log2(1024)
        assert keys.supports(1) and keys.supports(-512)
        assert not keys.supports(3)

    def test_explicit_steps(self, small_params):
        keys = KeyGenerator(small_params).create_galois_keys([3, -5])
        assert keys.supports(3) and keys.supports(-5) and keys.supports(0)
        assert not keys.supports(5)

    def test_key_sizes_reported(self, small_params):
        keys = KeyGenerator(small_params).create_galois_keys([1, 2, 3])
        assert keys.total_bytes == 3 * keys.bytes_per_key
