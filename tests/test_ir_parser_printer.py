"""Unit tests for the s-expression parser and printer."""

import pytest

from repro.ir import ParseError, parse, to_sexpr
from repro.ir.nodes import Add, Const, Mul, Neg, Rotate, Sub, Var, Vec, VecAdd, VecMul
from repro.ir.parser import parse_many
from repro.ir.printer import pretty


class TestParsing:
    def test_parse_variable(self):
        assert parse("x") == Var("x")

    def test_parse_constant(self):
        assert parse("42") == Const(42)

    def test_parse_negative_constant(self):
        assert parse("-3") == Const(-3)

    def test_parse_addition(self):
        assert parse("(+ a b)") == Add(Var("a"), Var("b"))

    def test_parse_nary_addition_folds_left(self):
        assert parse("(+ a b c)") == Add(Add(Var("a"), Var("b")), Var("c"))

    def test_parse_subtraction(self):
        assert parse("(- a b)") == Sub(Var("a"), Var("b"))

    def test_parse_unary_negation(self):
        assert parse("(- a)") == Neg(Var("a"))

    def test_parse_multiplication(self):
        assert parse("(* a b)") == Mul(Var("a"), Var("b"))

    def test_parse_rotation(self):
        assert parse("(<< x 2)") == Rotate(Var("x"), 2)

    def test_parse_right_rotation_normalised(self):
        assert parse("(>> x 2)") == Rotate(Var("x"), -2)

    def test_parse_vec(self):
        assert parse("(Vec a b 1)") == Vec(Var("a"), Var("b"), Const(1))

    def test_parse_vector_ops(self):
        assert parse("(VecAdd (Vec a) (Vec b))") == VecAdd(Vec(Var("a")), Vec(Var("b")))
        assert parse("(VecMul x y)") == VecMul(Var("x"), Var("y"))

    def test_parse_nested(self):
        expr = parse("(Vec (+ (* a b) (* c d)) (+ e f))")
        assert isinstance(expr, Vec)
        assert expr.elements[0] == Add(Mul(Var("a"), Var("b")), Mul(Var("c"), Var("d")))

    def test_parse_many(self):
        exprs = parse_many("(+ a b) (* c d)")
        assert len(exprs) == 2


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "(",
            ")",
            "(+ a",
            "(+ a b) extra)",
            "(?? a b)",
            "(<< x y)",
            "(Vec)",
            "(VecNeg a b)",
            "(- a b c)",
        ],
    )
    def test_invalid_inputs_raise(self, text):
        with pytest.raises(ParseError):
            parse(text)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "x",
            "5",
            "(+ a b)",
            "(- a b)",
            "(- a)",
            "(* a b)",
            "(<< x 3)",
            "(Vec a b c)",
            "(VecAdd (Vec a c) (Vec b d))",
            "(VecMul (Vec a c) (Vec b d))",
            "(VecNeg (Vec a b))",
            "(VecSub (Vec a c) (Vec b d))",
            "(* (+ a 1) (- b 0))",
            "(Vec (+ (* a b) (* c d)) (+ (* e f) (* g h)))",
        ],
    )
    def test_round_trip(self, text):
        expr = parse(text)
        assert parse(to_sexpr(expr)) == expr

    def test_printed_form_matches_input(self):
        text = "(VecAdd (Vec a c) (Vec b d))"
        assert to_sexpr(parse(text)) == text

    def test_pretty_contains_all_leaves(self):
        expr = parse("(+ (* a b) c)")
        rendered = pretty(expr)
        for leaf in ("a", "b", "c"):
            assert leaf in rendered
