"""Pipeline structural validators: clean on real compilers, loud on damage."""

from __future__ import annotations

import pytest

from repro import api
from repro.analysis import AnalysisReport, Severity
from repro.analysis.pipeline_check import check_circuit, check_expression
from repro.ir.nodes import Expr, Rotate
from repro.ir.parser import parse


class _Frob(Expr):
    """A node whose operator no pass should ever emit."""

    op = "frobnicate"
    __slots__ = ()


class _LooseAdd(Expr):
    """An ``+`` node built with the wrong child count."""

    op = "+"
    __slots__ = ()


SCALAR_KERNELS = [
    "(+ (* a b) (* c d))",
    "(- (- a) (+ b 3))",
]
VECTOR_KERNELS = [
    "(<< (VecMul (Vec a b c) (Vec d e f)) 1)",
]


@pytest.mark.parametrize("source", SCALAR_KERNELS + VECTOR_KERNELS)
def test_greedy_compilations_verify_clean(source) -> None:
    report = api.compile(source, "greedy", verify=True)
    assert report.analysis is not None
    assert report.analysis.ok
    assert not report.analysis.findings
    # every stage of the trace carried an (empty) findings tuple
    assert all(stage.findings == () for stage in report.trace.stages)


@pytest.mark.parametrize("source", SCALAR_KERNELS)
def test_coyote_compilations_verify_clean(source) -> None:
    report = api.compile(source, "coyote", verify=True)
    assert report.analysis is not None
    assert report.analysis.ok


def test_expression_unknown_op_detected() -> None:
    bad = _Frob((parse("a"), parse("b")))
    report = check_expression(bad)
    assert not report.ok
    assert any(f.rule == "unknown-op" for f in report.findings)


def test_expression_arity_detected() -> None:
    report = check_expression(_LooseAdd((parse("a"),)))
    assert any(f.rule == "arity" for f in report.findings)


def test_expression_rotation_step_range() -> None:
    report = check_expression(Rotate(parse("a"), 1 << 40))
    assert any(f.rule == "rotation-step-range" for f in report.findings)


def test_malformed_circuit_detected() -> None:
    program = api.compile("(+ (* a b) c)", "greedy", name="probe").circuit
    assert check_circuit(program).ok
    # damage it: dangle an output and reorder an operand past its def
    program.mark_output(len(program.instructions) + 5, "dangling", 1)
    last = program.instructions[-1]
    last.operands = (last.result + 7,) + tuple(last.operands[1:])
    report = check_circuit(program)
    assert not report.ok
    rules = {f.rule for f in report.findings}
    assert "orphan-output" in rules
    assert "use-before-def" in rules


def test_report_severity_machinery() -> None:
    report = AnalysisReport()
    report.add("probe", "r1", Severity.WARNING, "w")
    assert report.ok and report.warnings == 1
    report.add("probe", "r2", Severity.ERROR, "e", location="here")
    assert not report.ok
    assert report.counts() == {"error": 1, "warning": 1, "info": 0}
    rendered = report.by_severity(Severity.ERROR)[0].render()
    assert "here" in rendered and "probe/r2" in rendered
