"""Property test: the tape verifier's interval analysis is sound.

For randomly generated kernels and random inputs within a declared
magnitude bucket, every concrete value a tape op writes — including the
intermediate products fused superinstructions materialize in ``dst``
before accumulating — must stay within the static bound
:func:`repro.analysis.tape_check.iter_op_bounds` derives for that op.
The concrete side is an exact-arithmetic (Python int) re-interpretation
of the scheduled ops, so numpy's int64 wraparound can never mask an
unsound bound.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import api
from repro.analysis.tape_check import iter_op_bounds
from repro.backends.tapeopt import compile_tape
from repro.fhe.params import BFVParameters

PARAMS = BFVParameters.default(1024)

VARIABLES = ("a", "b", "c", "d")


# -- random kernel generation -------------------------------------------------
def _leaf() -> st.SearchStrategy[str]:
    return st.one_of(
        st.sampled_from(VARIABLES),
        st.integers(min_value=-5, max_value=5).map(str),
    )


def _node(children: st.SearchStrategy[str]) -> st.SearchStrategy[str]:
    binary = st.tuples(st.sampled_from("+-*"), children, children).map(
        lambda t: f"({t[0]} {t[1]} {t[2]})"
    )
    rotate = st.tuples(
        children, st.integers(min_value=-4, max_value=4).filter(bool)
    ).map(lambda t: f"(<< {t[0]} {t[1]})")
    negate = children.map(lambda c: f"(- {c})")
    return st.one_of(binary, rotate, negate)


def _kernels() -> st.SearchStrategy[str]:
    # recursive trees, then require at least one variable so the bucket
    # actually parameterizes something
    return st.recursive(_leaf(), _node, max_leaves=12).filter(
        lambda s: any(v in s for v in VARIABLES)
    )


# -- exact concrete interpretation -------------------------------------------
def _rotated(row, step, n):
    return [row[(i + step) % n] for i in range(n)]


def _concrete_rows(tape, inputs):
    """Materialize every buffer's initial row as exact Python ints."""
    t, half = tape.t, tape.half
    rows = [
        [int(v) for v in np.asarray(const).reshape(-1)]
        for const in tape.consts
    ]
    rows.extend([0] * tape.n for _ in range(tape.slot_count))
    for load in tape.loads:
        row = [int(v) for v in np.asarray(load.template).reshape(-1)]
        for column, name in load.var_columns:
            residue = int(inputs[name]) % t
            row[column] = residue - t if residue > half else residue
        rows[load.buffer] = row
    return rows


def _max_abs(row) -> int:
    return max(abs(v) for v in row)


def _check_plan(tape, ops, bucket, inputs) -> None:
    t, half, n = tape.t, tape.half, tape.n
    rows = _concrete_rows(tape, inputs)
    for index, op, product_bound, result_bound in iter_op_bounds(
        tape, ops, bucket=bucket
    ):
        kind = op.kind
        a = rows[op.a] if op.a >= 0 else None
        b = rows[op.b] if op.b >= 0 else None
        c = rows[op.c] if op.c >= 0 else None
        if kind == "add":
            result = [x + y for x, y in zip(a, b)]
        elif kind == "sub":
            result = [x - y for x, y in zip(a, b)]
        elif kind == "mul":
            result = [x * y for x, y in zip(a, b)]
        elif kind == "neg":
            result = [-x for x in a]
        elif kind == "rot":
            result = _rotated(a, op.step, n)
        elif kind == "rot_add":
            result = [x + y for x, y in zip(_rotated(a, op.step, n), b)]
        elif kind == "rot_mul":
            result = [x * y for x, y in zip(_rotated(a, op.step, n), b)]
        elif kind in ("mul_add", "mul_sub_l", "mul_sub_r", "rot_mul_add"):
            lhs = _rotated(a, op.step, n) if kind == "rot_mul_add" else a
            intermediate = [x * y for x, y in zip(lhs, b)]
            assert product_bound is not None
            assert _max_abs(intermediate) <= product_bound, (index, kind)
            if kind == "mul_sub_r":
                result = [z - p for p, z in zip(intermediate, c)]
            elif kind == "mul_sub_l":
                result = [p - z for p, z in zip(intermediate, c)]
            else:
                result = [p + z for p, z in zip(intermediate, c)]
        elif kind == "reduce":
            result = [
                (v % t) - t if (v % t) > half else v % t for v in rows[op.dst]
            ]
        else:
            raise AssertionError(f"unexpected op kind {kind!r}")
        assert _max_abs(result) <= result_bound, (index, kind)
        rows[op.dst] = result


@settings(max_examples=30, deadline=None)
@given(
    source=_kernels(),
    bucket=st.integers(min_value=1, max_value=10_000),
    data=st.data(),
)
def test_concrete_magnitudes_never_exceed_static_bounds(
    source, bucket, data
) -> None:
    report = api.compile(source, "greedy", name="interval-probe")
    tape = compile_tape(report.circuit, PARAMS)
    inputs = {
        name: data.draw(
            st.integers(min_value=-bucket, max_value=bucket), label=name
        )
        for name in VARIABLES
    }
    plan = tape.plan_for(bucket)
    _check_plan(tape, plan.ops, plan.bucket, inputs)
