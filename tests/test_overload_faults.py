"""Fault-injection tests for the overload-hardened serving stack.

Every test injects one of the :mod:`repro.server.faults` faults — crash
before the tick's store commit, an exception mid-batch, a slow worker, a
torn or corrupt JSONL record — and proves the recovery invariants:

* no job is lost: every submitted job ends terminal (completed, shed or
  failed) on some server instance, and
  ``jobs_completed + jobs_shed + jobs_failed == jobs_submitted`` holds
  per instance;
* no job is duplicated: recovery requeues exactly the incomplete jobs and
  each completes once;
* no deadlock: every drain/close returns;
* telemetry stays consistent: skipped store records and SLO violations are
  counted where the fault demands them.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.__main__ import main as cli_main
from repro.server import (
    FaultInjector,
    InjectedFault,
    Job,
    JobServer,
    JobStore,
    SLOPolicy,
)

SOURCE = "(+ (* a b) c)"


def _invariant(server: JobServer) -> None:
    counters = server.telemetry.snapshot()["counters"]
    assert (
        counters.get("jobs_completed", 0)
        + counters.get("jobs_shed", 0)
        + counters.get("jobs_failed", 0)
        == counters["jobs_submitted"]
    )


class TestFaultInjector:
    def test_unarmed_sites_are_noops(self):
        faults = FaultInjector()
        assert faults.fire("server.before_commit") is None
        assert faults.fired("server.before_commit") == 0

    def test_times_decrements_and_disarms(self):
        faults = FaultInjector()
        faults.arm("site", times=2, exc=InjectedFault)
        with pytest.raises(InjectedFault):
            faults.fire("site")
        with pytest.raises(InjectedFault):
            faults.fire("site")
        assert faults.fire("site") is None
        assert faults.fired("site") == 2

    def test_disarm_and_validation(self):
        faults = FaultInjector()
        faults.arm("site", exc=InjectedFault)
        faults.disarm("site")
        assert faults.fire("site") is None
        with pytest.raises(ValueError):
            faults.arm("site", times=0)


class TestCrashBeforeCommit:
    def test_recovery_completes_every_job_exactly_once(self, tmp_path):
        state = str(tmp_path)
        faults = FaultInjector()
        faults.arm("server.before_commit", exc=InjectedFault)
        server = JobServer(state, fault_injector=faults)
        job_ids = [server.submit(Job(source=SOURCE, seed=seed)) for seed in range(3)]
        with pytest.raises(InjectedFault):
            server.drain()
        # A crashed process never runs close() (a graceful close would
        # compact the in-memory terminal states to disk and undo the
        # crash); abandoning the instance models the death.
        del server

        # The "process" died after executing the batch but before committing
        # the terminal records: the reborn server must requeue and finish
        # every job, and each exactly once.
        reborn = JobServer(state)
        reborn.drain()
        statuses = {job_id: reborn.status(job_id)["status"] for job_id in job_ids}
        assert set(statuses.values()) == {"completed"}
        rows = reborn.jobs()
        assert len(rows) == len(job_ids) == len({row["id"] for row in rows})
        _invariant(reborn)
        reborn.close()


class TestTornAndCorruptRecords:
    def test_torn_final_record_is_skipped_and_job_requeued(self, tmp_path):
        state = str(tmp_path)
        server = JobServer(state)
        done_id = server.submit(Job(source=SOURCE, seed=1))
        server.drain()
        # The next job's queued record commits, then the terminal record of
        # its completion is torn mid-write (simulated crash).
        torn_id = server.submit(Job(source=SOURCE, seed=2))
        server.faults.arm("store.append", payload="torn")
        with pytest.raises(InjectedFault):
            server.drain()
        del server  # crash mid-write: no graceful close

        reborn = JobServer(state)
        # Exactly the job whose terminal record was torn away is requeued;
        # the torn tail is counted, not crashed on.
        assert reborn.status(torn_id)["status"] in ("queued", "running")
        assert reborn.status(done_id)["status"] == "completed"
        assert reborn.store.skipped_records == 1
        counters = reborn.telemetry.snapshot()["counters"]
        assert counters["store_skipped_records"] == 1
        reborn.drain()
        assert reborn.status(torn_id)["status"] == "completed"
        _invariant(reborn)
        reborn.close()

    def test_corrupt_mid_log_record_is_skipped_with_counter(self, tmp_path):
        state = str(tmp_path)
        store = JobStore(state, fault_injector=FaultInjector())
        first = Job(source=SOURCE, seed=1)
        second = Job(source=SOURCE, seed=2)
        store.append(first)
        store.faults.arm("store.append", payload="corrupt")
        store.append(second)  # this record's bytes rot on disk
        third = Job(source=SOURCE, seed=3)
        store.append(third)

        fresh = JobStore(state)
        jobs = fresh.replay()
        assert set(jobs) == {first.id, third.id}
        assert fresh.skipped_records == 1

        # A server over the same directory serves what survived and mirrors
        # the skip count into telemetry.
        server = JobServer(state)
        counters = server.telemetry.snapshot()["counters"]
        assert counters["store_skipped_records"] == 1
        server.drain()
        assert server.status(first.id)["status"] == "completed"
        assert server.status(third.id)["status"] == "completed"
        _invariant(server)
        server.close()

    def test_append_after_torn_tail_starts_on_fresh_line(self, tmp_path):
        state = str(tmp_path)
        store = JobStore(state, fault_injector=FaultInjector())
        store.faults.arm("store.append", payload="torn")
        with pytest.raises(InjectedFault):
            store.append(Job(source=SOURCE, seed=1))
        survivor = Job(source=SOURCE, seed=2)
        store.append(survivor)  # must seal the torn tail, not extend it
        jobs = JobStore(state).replay()
        assert set(jobs) == {survivor.id}


class TestMidBatchFaults:
    def test_exception_mid_batch_is_retried_to_completion(self):
        faults = FaultInjector()
        faults.arm("server.mid_batch", exc=RuntimeError)
        server = JobServer(fault_injector=faults)
        job_ids = [
            server.submit(Job(source=SOURCE, seed=seed, max_retries=1))
            for seed in range(3)
        ]
        server.drain()
        for job_id in job_ids:
            assert server.status(job_id)["status"] == "completed"
        counters = server.telemetry.snapshot()["counters"]
        assert counters["jobs_retried"] >= 1
        _invariant(server)
        server.close()

    def test_exception_mid_batch_without_retries_fails_jobs(self):
        faults = FaultInjector()
        faults.arm("server.mid_batch", exc=RuntimeError)
        server = JobServer(fault_injector=faults)
        job_id = server.submit(Job(source=SOURCE, seed=0, max_retries=0))
        server.drain()
        row = server.status(job_id)
        assert row["status"] == "failed"
        assert row["error"]
        _invariant(server)
        server.close()

    def test_slow_worker_trips_run_slo_violation(self):
        policy = SLOPolicy.from_budgets({0: 60.0}, {0: 0.01})
        faults = FaultInjector()
        faults.arm("server.slow_worker", sleep_s=0.05)
        server = JobServer(slo=policy, fault_injector=faults)
        job_id = server.submit(Job(source=SOURCE, seed=0))
        server.drain()
        assert server.status(job_id)["status"] == "completed"
        counters = server.telemetry.snapshot()["counters"]
        assert counters["slo_violations_run_p0"] >= 1
        assert counters["slo_violations"] >= 1
        assert server.slo_report()["0"]["violations_run"] >= 1
        _invariant(server)
        server.close()


class TestShedSurface:
    def test_shed_status_reaches_api_and_cli(self, tmp_path, capsys):
        state = str(tmp_path)
        server = JobServer(state, queue_capacity=1)
        job_ids = [server.submit(Job(source=SOURCE, seed=seed)) for seed in range(3)]
        statuses = [server.status(job_id)["status"] for job_id in job_ids]
        assert statuses.count("shed") == 2 and statuses.count("queued") == 1
        shed_id = job_ids[statuses.index("shed")]

        # api.status surfaces the terminal shed state + reason, api.result
        # refuses to wait for a result that will never exist.
        row = api.status(shed_id, server=server)
        assert row["status"] == "shed"
        assert "shed" in row["error"]
        with pytest.raises(RuntimeError, match="shed"):
            api.result(shed_id, server=server)
        server.drain()
        _invariant(server)
        server.close()

        # The state dir read path and the CLI agree.
        assert api.status(shed_id, state_dir=state)["status"] == "shed"
        with pytest.raises(RuntimeError, match="shed"):
            api.result(shed_id, state_dir=state, timeout=5.0)
        assert cli_main(["jobs", "--state-dir", state, "--status", "shed"]) == 0
        out = capsys.readouterr().out
        assert out.count("shed") >= 2 and "2 job(s)" in out

    def test_closed_server_after_faults_is_reusable_dir(self, tmp_path):
        # A dir that saw a crash plus sheds still opens cleanly.
        state = str(tmp_path)
        faults = FaultInjector()
        faults.arm("server.before_commit", exc=InjectedFault)
        server = JobServer(state, queue_capacity=1, fault_injector=faults)
        for seed in range(3):
            server.submit(Job(source=SOURCE, seed=seed))
        with pytest.raises(InjectedFault):
            server.drain()
        del server  # crash: no graceful close

        reborn = JobServer(state)
        reborn.drain()
        statuses = sorted(row["status"] for row in reborn.jobs())
        assert statuses == ["completed", "shed", "shed"]
        _invariant(reborn)
        reborn.close()
