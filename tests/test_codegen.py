"""Golden-ish tests for the SEAL-style C++ code generator."""

from __future__ import annotations

import pytest

import repro
from repro.compiler.circuit import CircuitProgram, InputSlot, Opcode
from repro.compiler.codegen import generate_seal_code
from repro.kernels.registry import benchmark_by_name


@pytest.fixture()
def golden_program() -> CircuitProgram:
    """A small hand-built circuit exercising one opcode of every kind."""
    program = CircuitProgram(name="golden kernel")
    program.scalar_inputs = ["a", "b"]
    packed = program.emit(
        Opcode.LOAD_INPUT,
        name="packed",
        layout=(InputSlot(name="a"), InputSlot(name="b")),
    )
    rotated = program.emit(Opcode.ROTATE, (packed,), step=1)
    added = program.emit(Opcode.ADD, (packed, rotated))
    subtracted = program.emit(Opcode.SUB, (added, packed))
    multiplied = program.emit(Opcode.MUL, (subtracted, packed))
    negated = program.emit(Opcode.NEGATE, (multiplied,))
    mask = program.emit(Opcode.LOAD_PLAIN, name="vector", values=(1, 0))
    masked = program.emit(Opcode.MUL_PLAIN, (negated, mask))
    broadcast = program.emit(Opcode.LOAD_PLAIN, name="broadcast", values=(3,))
    shifted = program.emit(Opcode.ADD_PLAIN, (masked, broadcast))
    program.mark_output(shifted, "result", 2)
    program.mark_output(added, "partial", 2)
    return program


class TestGenerateSealCode:
    def test_function_name_sanitized_from_program_name(self, golden_program):
        code = generate_seal_code(golden_program)
        assert "void golden_kernel(" in code

    def test_every_declared_output_is_named(self, golden_program):
        code = generate_seal_code(golden_program)
        for _, output_name, _ in golden_program.outputs:
            assert f'encrypted_outputs["{output_name}"]' in code

    def test_one_opcode_of_each_kind_emitted(self, golden_program):
        code = generate_seal_code(golden_program)
        assert 'encrypted_inputs.at("packed")' in code
        assert "evaluator.add(" in code
        assert "evaluator.sub(" in code
        assert "evaluator.multiply(" in code
        assert "evaluator.negate(" in code
        assert "evaluator.rotate_rows(" in code
        assert "evaluator.multiply_plain(" in code
        assert "evaluator.add_plain(" in code
        # Every ct-ct multiplication is followed by relinearization.
        assert "evaluator.relinearize_inplace(" in code

    def test_plain_literals_render_masks_and_broadcasts(self, golden_program):
        code = generate_seal_code(golden_program)
        assert "vector<uint64_t>{1ULL, 0ULL}" in code
        assert "vector<uint64_t>(encoder.slot_count(), 3ULL)" in code

    def test_rotation_step_appears_with_galois_keys(self, golden_program):
        code = generate_seal_code(golden_program)
        rotate_line = next(line for line in code.splitlines() if "rotate_rows" in line)
        assert ", 1, galois_keys" in rotate_line

    def test_explicit_function_name_override(self, golden_program):
        code = generate_seal_code(golden_program, function_name="custom_entry")
        assert "void custom_entry(" in code

    def test_compiled_kernel_names_all_outputs(self):
        """End-to-end: a real compiled benchmark declares every output."""
        report = repro.compile(
            benchmark_by_name("dot_product_4").expression(),
            compiler="greedy",
            name="dot_product_4",
        )
        code = report.seal_code()
        assert code.startswith("// Auto-generated")
        for _, output_name, _ in report.circuit.outputs:
            assert f'encrypted_outputs["{output_name}"]' in code
