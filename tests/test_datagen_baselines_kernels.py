"""Tests for the data generators, the baseline compilers and the benchmark kernels."""

import pytest

from repro.baselines import CoyoteCompiler, CoyoteOptions, GreedyChehabCompiler, ScalarCompiler
from repro.compiler import execute
from repro.datagen import (
    ExpressionDataset,
    RandomExpressionGenerator,
    SyntheticKernelGenerator,
    build_dataset,
)
from repro.ir import canonical_form, parse
from repro.ir.analysis import variables
from repro.ir.evaluate import evaluate, output_arity
from repro.kernels import benchmark_by_name, benchmark_suite, small_benchmark_suite
from repro.kernels.trees import polynomial_tree


class TestRandomGenerator:
    def test_deterministic_with_seed(self):
        first = RandomExpressionGenerator(seed=7).generate_many(5)
        second = RandomExpressionGenerator(seed=7).generate_many(5)
        assert [str(a) for a in first] == [str(b) for b in second]

    def test_generated_expressions_are_evaluable(self):
        generator = RandomExpressionGenerator(max_depth=4, max_vector_size=4, seed=1)
        for expr in generator.generate_many(10):
            env = {name: 2 for name in variables(expr)}
            slots = evaluate(expr, env, slot_count=16)
            assert len(slots) == 16

    def test_respects_depth_and_size_arguments(self):
        generator = RandomExpressionGenerator(seed=0)
        expr = generator.generate(depth=1, vector_size=3)
        assert output_arity(expr) in (1, 3)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RandomExpressionGenerator(max_depth=0)


class TestSyntheticGenerator:
    def test_deterministic_with_seed(self):
        assert [str(e) for e in SyntheticKernelGenerator(seed=3).generate_many(5)] == [
            str(e) for e in SyntheticKernelGenerator(seed=3).generate_many(5)
        ]

    def test_motifs_contain_optimizable_structure(self, ruleset):
        generator = SyntheticKernelGenerator(seed=0, max_size=6)
        optimizable = 0
        for expr in generator.generate_many(20):
            if len(ruleset.applicable_rules(expr)) > 0:
                optimizable += 1
        assert optimizable >= 18  # nearly every motif exposes at least one rewrite

    def test_generated_expressions_are_evaluable(self):
        generator = SyntheticKernelGenerator(seed=0)
        for expr in generator.generate_many(10):
            env = {name: 1 for name in variables(expr)}
            evaluate(expr, env, slot_count=32)


class TestDataset:
    def test_deduplication_by_canonical_form(self):
        dataset = ExpressionDataset()
        assert dataset.add(parse("(+ a b)"))
        assert not dataset.add(parse("(+ x y)"))  # alpha-equivalent duplicate
        assert dataset.duplicates_rejected == 1
        assert len(dataset) == 1

    def test_benchmark_exclusion(self):
        dataset = ExpressionDataset()
        dataset.exclude([parse("(+ a b)")])
        assert not dataset.add(parse("(+ u v)"))
        assert dataset.exclusions_rejected == 1

    def test_build_dataset_reaches_target(self):
        generator = SyntheticKernelGenerator(seed=0)
        dataset = build_dataset(generator, 20)
        assert len(dataset) == 20
        forms = {canonical_form(expr) for expr in dataset}
        assert len(forms) == 20

    def test_split_and_persistence(self, tmp_path):
        dataset = build_dataset(SyntheticKernelGenerator(seed=1), 12)
        train, validation = dataset.split(validation_fraction=0.25, seed=0)
        assert len(train) + len(validation) == 12
        path = tmp_path / "dataset.txt"
        dataset.save(path)
        restored = ExpressionDataset.load(path)
        assert len(restored) == 12


def _run_and_check(compiler, benchmark):
    expr = benchmark.expression()
    inputs = benchmark.sample_inputs(seed=1)
    report = compiler.compile_expression(expr, name=benchmark.name)
    execution = execute(report.circuit, inputs)
    assert execution.outputs["result"] == benchmark.reference(inputs), benchmark.name
    return report, execution


class TestBaselines:
    @pytest.mark.parametrize(
        "name",
        ["dot_product_4", "l2_distance_4", "gx_3x3", "max_3", "matrix_multiply_3x3", "tree_50_50_5"],
    )
    def test_coyote_produces_correct_circuits(self, name):
        _report, _execution = _run_and_check(CoyoteCompiler(), benchmark_by_name(name))

    def test_coyote_layout_signature(self):
        # Coyote's post-packing layout resolution shows up as rotations and
        # ciphertext-plaintext mask multiplications.
        report, _ = _run_and_check(CoyoteCompiler(), benchmark_by_name("dot_product_8"))
        assert report.stats.rotations > 0
        assert report.stats.ct_pt_multiplications > 0

    def test_coyote_search_effort_configurable(self):
        fast = CoyoteCompiler(CoyoteOptions(layout_candidates=1, search_candidates=2, max_candidates=4))
        thorough = CoyoteCompiler(CoyoteOptions(layout_candidates=8))
        bench = benchmark_by_name("dot_product_8")
        fast_report, _ = _run_and_check(fast, bench)
        thorough_report, _ = _run_and_check(thorough, bench)
        assert thorough_report.compile_time_s >= fast_report.compile_time_s

    def test_greedy_chehab_beats_scalar_baseline(self):
        bench = benchmark_by_name("dot_product_8")
        greedy_report, greedy_exec = _run_and_check(GreedyChehabCompiler(), bench)
        scalar_report, scalar_exec = _run_and_check(ScalarCompiler(), bench)
        assert greedy_exec.latency_ms < scalar_exec.latency_ms
        assert greedy_report.stats.ct_ct_multiplications < scalar_report.stats.ct_ct_multiplications


class TestKernels:
    def test_suite_covers_all_three_sub_suites(self):
        suites = {benchmark.suite for benchmark in benchmark_suite()}
        assert suites == {"porcupine", "coyote", "trees"}
        assert len(benchmark_suite()) >= 40

    def test_small_suite_is_subset(self):
        names = {b.name for b in benchmark_suite()}
        assert all(b.name in names for b in small_benchmark_suite())

    @pytest.mark.parametrize("kernel", small_benchmark_suite(), ids=lambda b: b.name)
    def test_small_suite_correct_under_greedy_chehab(self, kernel):
        _run_and_check(GreedyChehabCompiler(), kernel)

    @pytest.mark.parametrize("kernel", small_benchmark_suite(), ids=lambda b: b.name)
    def test_small_suite_correct_without_optimization(self, kernel):
        _run_and_check(ScalarCompiler(), kernel)

    def test_polynomial_tree_regimes(self):
        dense = polynomial_tree(100, 100, 4, seed=0)
        sparse = polynomial_tree(50, 50, 4, seed=0)
        from repro.ir.analysis import count_ops

        dense_counts = count_ops(dense)
        assert dense_counts.scalar_mul > 0 and dense_counts.scalar_add == 0
        sparse_counts = count_ops(sparse)
        assert sparse_counts.total <= dense_counts.total

    def test_benchmark_lookup_unknown(self):
        with pytest.raises(KeyError):
            benchmark_by_name("not_a_benchmark")

    def test_hamming_distance_binary_inputs(self):
        bench = benchmark_by_name("hamming_distance_4")
        inputs = bench.sample_inputs(seed=0)
        assert set(inputs.values()) <= {0, 1}
