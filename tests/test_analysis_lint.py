"""Concurrency/determinism/hygiene lint: clean on the repo, loud on probes."""

from __future__ import annotations

import textwrap

from repro.analysis.lint import lint_paths, lint_source


def _lint(source: str, path: str = "probe.py", wall_clock_ok: bool = False):
    return lint_source(
        textwrap.dedent(source), path, wall_clock_ok=wall_clock_ok
    )


def test_repo_is_lint_clean() -> None:
    report, files_checked = lint_paths()
    assert files_checked > 50  # the whole installed package walked
    assert report.ok, [f.render() for f in report.findings[:10]]
    assert not report.findings


class TestLockDiscipline:
    SOURCE = """
    import threading

    class Registry:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = {}  # guarded-by: _lock

        def good(self):
            with self._lock:
                self._items["a"] = 1

        def bad(self):
            self._items["a"] = 2
    """

    def test_unguarded_access_detected(self) -> None:
        report = _lint(self.SOURCE)
        assert not report.ok
        findings = [f for f in report.findings if f.rule == "guarded-by"]
        assert len(findings) == 1  # only the access outside the with block
        assert "_items" in findings[0].message
        assert findings[0].location.endswith(":14")  # the line inside bad()

    def test_holds_annotation_accepted(self) -> None:
        report = _lint(
            self.SOURCE.replace(
                "def bad(self):",
                "def bad(self):  # holds: _lock",
            )
        )
        assert report.ok

    def test_condition_alias_accepted(self) -> None:
        report = _lint(
            """
            import threading

            class Queue:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._ready = threading.Condition(self._lock)
                    self._entries = []  # guarded-by: _lock

                def pop(self):
                    with self._ready:
                        return self._entries.pop()
            """
        )
        assert report.ok


class TestDeterminism:
    def test_wall_clock_detected(self) -> None:
        report = _lint("import time\nstamp = time.time()\n")
        assert any(f.rule == "wall-clock" for f in report.findings)

    def test_wall_clock_allowed_on_serving_paths(self) -> None:
        report = _lint(
            "import time\nstamp = time.time()\n", wall_clock_ok=True
        )
        assert report.ok

    def test_unseeded_random_detected(self) -> None:
        report = _lint("import random\nx = random.random()\n")
        assert any(f.rule == "unseeded-random" for f in report.findings)

    def test_seeded_random_instance_accepted(self) -> None:
        report = _lint(
            "import random\nrng = random.Random(7)\nx = rng.random()\n"
        )
        assert report.ok

    def test_inline_waiver(self) -> None:
        report = _lint(
            "import time\nstamp = time.time()  # lint: allow(wall-clock)\n"
        )
        assert report.ok


class TestHygiene:
    def test_bare_except_detected(self) -> None:
        report = _lint("try:\n    pass\nexcept:\n    pass\n")
        assert any(f.rule == "bare-except" for f in report.findings)

    def test_mutable_default_detected(self) -> None:
        report = _lint("def f(items=[]):\n    return items\n")
        assert any(f.rule == "mutable-default" for f in report.findings)

    def test_syntax_error_is_a_finding(self) -> None:
        report = _lint("def broken(:\n")
        assert any(f.rule == "syntax-error" for f in report.findings)
