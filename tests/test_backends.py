"""Tests of the pluggable execution-backend layer.

Covers the backend registry (the ``@register_backend``/spec idiom), backend
parity — every kernel of the Coyote/Porcupine/tree suites produces
bit-identical declared outputs and identical noise/latency accounting on
``reference`` vs ``vector-vm``, and identical accounting on ``cost-sim`` —
the per-execution metering refactor, the batched
:class:`~repro.service.execution.ExecutionService` with timer-augmented
scheduling, and the ``backend=``/``run-batch`` surface of the api + CLI.
"""

from __future__ import annotations

import pytest

import repro
from repro import api
from repro.__main__ import main as cli_main
from repro.backends import (
    BackendSpec,
    BaseBackend,
    available_backends,
    backend_info,
    build_backend,
    get_backend,
    program_fingerprint,
    register_backend,
    resolve_backend,
)
from repro.compiler import build_compiler, declared_outputs, execute, execute_many
from repro.compiler.executor import default_backend_name
from repro.fhe import Evaluator, ExecutionMeter, FHEContext, LatencyModel
from repro.fhe.params import BFVParameters
from repro.kernels.registry import benchmark_by_name, benchmark_suite
from repro.service import ExecutionJob, ExecutionService

#: Small ring for fast tests; parity must hold at any degree.
PARAMS = BFVParameters.default(1024)


@pytest.fixture(scope="module")
def compiled_suite():
    """Every Coyote/Porcupine/tree kernel compiled with the initial compiler."""
    compiler = build_compiler("initial")
    suite = benchmark_suite(include_deep_trees=False)
    return [
        (benchmark, compiler.compile_expression(benchmark.expression(), name=benchmark.name))
        for benchmark in suite
    ]


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
class TestBackendRegistry:
    def test_builtins_registered(self):
        names = available_backends()
        assert {"reference", "vector-vm", "cost-sim"} <= set(names)

    def test_backend_info_fields(self):
        info = backend_info("cost-sim")
        assert info.produces_outputs is False
        assert info.description
        assert backend_info("vector-vm").produces_outputs is True

    def test_unknown_backend_raises_with_choices(self):
        with pytest.raises(KeyError, match="vector-vm"):
            backend_info("does-not-exist")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("reference")(BaseBackend)

    def test_spec_describe_is_version_stamped(self):
        spec = BackendSpec.create("vector-vm")
        description = spec.describe()
        assert description.startswith(f"repro-{repro.__version__}::backend::vector-vm")
        assert spec.stable

    def test_describe_varies_with_options(self):
        assert BackendSpec.create("vector-vm").describe() != BackendSpec(
            "vector-vm", (("option", 1),)
        ).describe()

    def test_resolve_name_spec_and_instance(self):
        by_name, spec = resolve_backend("vector-vm")
        assert by_name.name == "vector-vm"
        assert spec is not None and spec.name == "vector-vm"
        by_spec, spec2 = resolve_backend(BackendSpec.create("cost-sim"))
        assert by_spec.name == "cost-sim"
        assert spec2.name == "cost-sim"
        instance = build_backend("reference")
        again, spec3 = resolve_backend(instance)
        assert again is instance
        assert spec3 is not None and spec3.name == "reference"

    def test_resolve_none_follows_default(self, monkeypatch):
        assert get_backend(None).name == "reference"
        monkeypatch.setenv("REPRO_BACKEND", "cost-sim")
        assert get_backend(None).name == "cost-sim"

    def test_instance_options_rejected(self):
        with pytest.raises(ValueError, match="registry name"):
            resolve_backend(build_backend("reference"), option=1)

    def test_api_list_backends(self):
        rows = api.list_backends()
        assert {row["name"] for row in rows} >= {"reference", "vector-vm", "cost-sim"}
        assert api.describe_backend("cost-sim").startswith(f"repro-{repro.__version__}")


# ---------------------------------------------------------------------------
# parity: reference vs vector-vm vs cost-sim over the full kernel suites
# ---------------------------------------------------------------------------
class TestBackendParity:
    def test_every_kernel_bit_identical_and_same_accounting(self, compiled_suite):
        covered_suites = set()
        for benchmark, report in compiled_suite:
            covered_suites.add(benchmark.suite)
            inputs = benchmark.sample_inputs(seed=1)
            reference = execute(report.circuit, inputs, params=PARAMS, backend="reference")
            vm = execute(report.circuit, inputs, params=PARAMS, backend="vector-vm")
            sim = execute(report.circuit, inputs, params=PARAMS, backend="cost-sim")
            # vector-vm: bit-identical outputs, identical accounting.
            assert vm.outputs == reference.outputs, benchmark.name
            assert vm.latency_ms == reference.latency_ms, benchmark.name
            assert vm.operation_counts == reference.operation_counts, benchmark.name
            assert vm.consumed_noise_budget == reference.consumed_noise_budget
            assert vm.remaining_noise_budget == reference.remaining_noise_budget
            assert vm.noise_budget_exhausted == reference.noise_budget_exhausted
            assert vm.encrypted_inputs == reference.encrypted_inputs
            # cost-sim: identical accounting, no outputs.
            assert sim.outputs == {}
            assert sim.latency_ms == reference.latency_ms, benchmark.name
            assert sim.operation_counts == reference.operation_counts, benchmark.name
            assert sim.consumed_noise_budget == reference.consumed_noise_budget
            assert sim.remaining_noise_budget == reference.remaining_noise_budget
            assert sim.noise_budget_exhausted == reference.noise_budget_exhausted
            assert sim.encrypted_inputs == reference.encrypted_inputs
        assert covered_suites == {"porcupine", "coyote", "trees"}

    def test_batched_execution_matches_per_seed_reference(self, compiled_suite):
        benchmark, report = next(
            (b, r) for b, r in compiled_suite if b.name == "dot_product_8"
        )
        inputs = [benchmark.sample_inputs(seed=seed) for seed in range(6)]
        references = [
            execute(report.circuit, item, params=PARAMS, backend="reference")
            for item in inputs
        ]
        batched = execute_many(report.circuit, inputs, params=PARAMS, backend="vector-vm")
        assert len(batched) == 6
        for single, vm in zip(references, batched):
            assert vm.outputs == single.outputs
            assert vm.batch_size == 6
            assert vm.backend == "vector-vm"

    def test_parity_on_vectorized_coyote_circuits(self):
        """Rotation/mask-heavy circuits (the Coyote compiler) stay parity-clean."""
        compiler = build_compiler("coyote")
        for name in ("dot_product_8", "matrix_multiply_3x3", "max_3"):
            benchmark = benchmark_by_name(name)
            report = compiler.compile_expression(benchmark.expression(), name=name)
            inputs = [benchmark.sample_inputs(seed=seed) for seed in range(4)]
            references = [
                execute(report.circuit, item, params=PARAMS, backend="reference")
                for item in inputs
            ]
            batched = execute_many(report.circuit, inputs, params=PARAMS, backend="vector-vm")
            for single, vm in zip(references, batched):
                assert vm.outputs == single.outputs, name
                assert vm.consumed_noise_budget == single.consumed_noise_budget

    def test_parity_at_default_degree(self):
        """Spot-check parity under the paper's n=16384 parameters too."""
        benchmark = benchmark_by_name("dot_product_4")
        report = build_compiler("initial").compile_expression(
            benchmark.expression(), name=benchmark.name
        )
        inputs = benchmark.sample_inputs(seed=0)
        reference = execute(report.circuit, inputs, backend="reference")
        vm = execute(report.circuit, inputs, backend="vector-vm")
        assert vm.outputs == reference.outputs
        assert vm.consumed_noise_budget == reference.consumed_noise_budget

    def test_deep_product_of_large_inputs_forces_double_reduction(self):
        """Regression: both MUL operands huge -> reduce both, never overflow.

        With every input near t/2 a chain of multiplications pushes *both*
        operand bounds past the reduction limit; a buggy fallback that
        re-reduced the already-reduced operand left the other unreduced and
        silently wrapped int64, breaking bit-identical outputs.
        """
        from repro.compiler.lowering import lower
        from repro.ir.parser import parse

        expr = parse("(* (* (* (* (* a b) c) d) e) (* (* (* (* f g) h) i) j))")
        circuit = lower(expr)
        params = BFVParameters.default()
        inputs = {name: params.plain_modulus // 2 for name in "abcdefghij"}
        reference = execute(circuit, inputs, params=params, backend="reference")
        vm = execute(circuit, inputs, params=params, backend="vector-vm")
        assert vm.outputs == reference.outputs

    def test_vector_vm_missing_input_raises(self, compiled_suite):
        from repro.core.exceptions import CompilationError

        _, report = next((b, r) for b, r in compiled_suite if b.name == "dot_product_4")
        with pytest.raises(CompilationError, match="missing value"):
            execute(report.circuit, {}, params=PARAMS, backend="vector-vm")


# ---------------------------------------------------------------------------
# per-execution metering (the shared-mutable-log fix)
# ---------------------------------------------------------------------------
class TestExecutionMetering:
    def test_repeated_executions_do_not_accumulate(self, compiled_suite):
        _, report = next((b, r) for b, r in compiled_suite if b.name == "dot_product_4")
        inputs = benchmark_by_name("dot_product_4").sample_inputs(seed=0)
        first = execute(report.circuit, inputs, params=PARAMS)
        second = execute(report.circuit, inputs, params=PARAMS)
        assert first.latency_ms == second.latency_ms
        assert first.operation_counts == second.operation_counts

    def test_strict_noise_context_still_fails_fast(self):
        """A strict_noise context raises during execution, as pre-refactor."""
        from repro.compiler.lowering import lower
        from repro.core.exceptions import NoiseBudgetExhausted
        from repro.ir.parser import parse

        # Deep multiply chain: exhausts the small ring's budget quickly.
        expr = parse("(* (* (* (* a a) (* a a)) (* (* a a) (* a a))) a)")
        circuit = lower(expr)
        context = FHEContext(params=PARAMS, strict_noise=True)
        with pytest.raises(NoiseBudgetExhausted):
            execute(circuit, {"a": 2}, context=context)

    def test_shared_context_executions_do_not_accumulate(self):
        """Two executions through one FHEContext keep independent accounting."""
        benchmark = benchmark_by_name("dot_product_4")
        report = build_compiler("initial").compile_expression(
            benchmark.expression(), name=benchmark.name
        )
        context = FHEContext(params=PARAMS)
        inputs = benchmark.sample_inputs(seed=0)
        first = execute(report.circuit, inputs, context=context)
        second = execute(report.circuit, inputs, context=context)
        assert first.latency_ms == second.latency_ms

    def test_reset_log_footgun_removed(self):
        context = FHEContext(params=PARAMS)
        assert not hasattr(context.evaluator, "reset_log")

    def test_evaluator_accepts_external_meter(self):
        context = FHEContext(params=PARAMS)
        meter = ExecutionMeter.for_context(context)
        evaluator = Evaluator(context, meter=meter)
        ct = context.encryptor.encrypt_values([1, 2, 3])
        evaluator.add(ct, ct)
        assert meter.counts["add"] == 1
        assert evaluator.log is meter.log

    def test_latency_model_costs_cached_and_exact(self):
        model = LatencyModel(PARAMS)
        scale = model._scale()
        assert model.cost_ms("multiply") == pytest.approx(22.0 * scale)
        assert model.cost_ms("sub") == model.cost_ms("add")
        with pytest.raises(ValueError, match="unknown operation"):
            model.cost_ms("bootstrap")

    def test_report_backend_and_batch_defaults(self):
        from repro.compiler.executor import ExecutionReport

        report = ExecutionReport()
        assert report.backend == "reference"
        assert report.batch_size == 1


# ---------------------------------------------------------------------------
# program fingerprints
# ---------------------------------------------------------------------------
class TestProgramFingerprint:
    def test_name_independent_content_sensitive(self, compiled_suite):
        import dataclasses

        _, report = next((b, r) for b, r in compiled_suite if b.name == "dot_product_4")
        circuit = report.circuit
        renamed = dataclasses.replace(circuit, name="other-name")
        assert program_fingerprint(circuit) == program_fingerprint(renamed)
        _, other = next((b, r) for b, r in compiled_suite if b.name == "dot_product_8")
        assert program_fingerprint(circuit) != program_fingerprint(other.circuit)


# ---------------------------------------------------------------------------
# the batched execution service
# ---------------------------------------------------------------------------
class TestExecutionService:
    def _jobs(self, compiled_suite, names, batch=3):
        jobs = []
        for name in names:
            benchmark, report = next(
                (b, r) for b, r in compiled_suite if b.name == name
            )
            jobs.append(
                ExecutionJob(
                    program=report.circuit,
                    inputs=[benchmark.sample_inputs(seed=s) for s in range(batch)],
                )
            )
        return jobs

    def test_rescheduling_prefers_measured_times(self, compiled_suite):
        jobs = self._jobs(
            compiled_suite, ["dot_product_4", "dot_product_8", "max_3", "sort_3"]
        )
        service = ExecutionService("vector-vm", params=PARAMS)
        first = service.run_jobs(jobs)
        assert [record.estimate_source for record in first.records] == ["model"] * 4
        assert all(record.wall_time_s > 0.0 for record in first.records)
        second = service.run_jobs(jobs)
        assert [record.estimate_source for record in second.records] == ["measured"] * 4
        assert service.measured_circuits == 4
        assert second.total_executions == 12

    def test_model_estimates_calibrated_after_first_measurements(self, compiled_suite):
        jobs = self._jobs(compiled_suite, ["dot_product_4"])
        service = ExecutionService("vector-vm", params=PARAMS)
        raw_model, source = service.estimate_ms(jobs[0].program)
        assert source == "model"
        service.run_jobs(jobs)
        # A circuit the service has never executed now gets a calibrated
        # model estimate (scaled by the observed measured/model ratio).
        _, other = next((b, r) for b, r in compiled_suite if b.name == "max_3")
        calibrated, source = service.estimate_ms(other.circuit)
        assert source == "model"
        model_only = other.circuit.estimated_latency_ms(LatencyModel(PARAMS))
        assert calibrated != model_only

    def test_parallel_workers_produce_same_reports(self, compiled_suite):
        names = ["dot_product_4", "dot_product_8", "max_3", "sort_3"]
        serial = ExecutionService("vector-vm", params=PARAMS, workers=1)
        threaded = ExecutionService("vector-vm", params=PARAMS, workers=2)
        jobs = self._jobs(compiled_suite, names)
        outputs_serial = [
            [report.outputs for report in reports]
            for reports in serial.run_jobs(jobs).reports
        ]
        threaded_batch = threaded.run_jobs(jobs)
        outputs_threaded = [
            [report.outputs for report in reports] for reports in threaded_batch.reports
        ]
        assert outputs_serial == outputs_threaded
        assert threaded_batch.workers == 2
        assert {record.worker for record in threaded_batch.records} == {0, 1}

    def test_job_key_versions_by_backend_describe(self, compiled_suite):
        _, report = next((b, r) for b, r in compiled_suite if b.name == "max_3")
        vm = ExecutionService("vector-vm", params=PARAMS)
        ref = ExecutionService("reference", params=PARAMS)
        assert vm.job_key(report.circuit) != ref.job_key(report.circuit)
        assert f"repro-{repro.__version__}::backend::vector-vm" in vm.job_key(report.circuit)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            ExecutionService("reference", workers=0)
        with pytest.raises(ValueError, match="smoothing"):
            ExecutionService("reference", smoothing=0.0)

    def test_empty_input_jobs_record_no_measurement(self, compiled_suite):
        _, report = next((b, r) for b, r in compiled_suite if b.name == "dot_product_4")
        service = ExecutionService("vector-vm", params=PARAMS)
        assert service.execute_many(report.circuit, []) == []
        assert service.measured_circuits == 0
        service.run_jobs([ExecutionJob(program=report.circuit, inputs=[])])
        assert service.measured_circuits == 0
        _, source = service.estimate_ms(report.circuit)
        assert source == "model"

    def test_accepts_bare_tuples(self, compiled_suite):
        benchmark, report = next(
            (b, r) for b, r in compiled_suite if b.name == "dot_product_4"
        )
        service = ExecutionService("cost-sim", params=PARAMS)
        batch = service.run_jobs([(report.circuit, [benchmark.sample_inputs(0)])])
        assert batch.records[0].name == "dot_product_4"
        assert batch.reports[0][0].outputs == {}


# ---------------------------------------------------------------------------
# calibration: EWMA of the measured/model ratio, first measurements only
# ---------------------------------------------------------------------------
class TestCalibrationRegime:
    """Regression tests for the unbounded-drift bug: the calibration ratio
    used to be a pair of forever-growing running sums, also fed by
    re-measurements, so on a long-running server it was dominated by stale
    early history.  Now it is an EWMA updated only on first measurements."""

    @staticmethod
    def _distinct_circuits(count):
        compiler = build_compiler("initial")
        return [
            compiler.compile_expression(
                api.to_expression(f"(+ a (* b {index + 1}))")[0], name=f"c{index}"
            ).circuit
            for index in range(count)
        ]

    def test_calibration_tracks_a_shifted_timing_regime(self, compiled_suite):
        service = ExecutionService("vector-vm", params=PARAMS)
        circuits = self._distinct_circuits(12)
        probe = next(r for b, r in compiled_suite if b.name == "max_3").circuit
        # The service calibrates against its backend-aware static cost (the
        # tape-compiled VM scales the raw model by its fused-op ratio), so
        # regime measurements are expressed in the same unit.
        model_ms = {c.name: service.static_cost_ms(c) for c in circuits}
        # Early regime: measured times equal the model (ratio 1.0).
        for circuit in circuits[:4]:
            service.record_measurement(circuit, model_ms[circuit.name] / 1000.0, 1)
        early, _ = service.estimate_ms(probe)
        probe_model = service.static_cost_ms(probe)
        assert early == pytest.approx(probe_model, rel=0.05)
        # Shifted regime: everything now runs 10x slower than the model.
        for circuit in circuits[4:]:
            service.record_measurement(
                circuit, 10.0 * model_ms[circuit.name] / 1000.0, 1
            )
        late, _ = service.estimate_ms(probe)
        # The EWMA forgets the early regime geometrically: after 8 first
        # measurements at ratio 10, the estimate sits near 10x, not near the
        # all-history average ((4*1 + 8*10)/12 = 7) and far from the early 1x.
        assert late > 8.0 * probe_model
        assert late <= 10.5 * probe_model

    def test_remeasurement_does_not_move_the_calibration(self, compiled_suite):
        service = ExecutionService("vector-vm", params=PARAMS)
        (circuit,) = [c for c in self._distinct_circuits(1)]
        model_s = service.static_cost_ms(circuit) / 1000.0
        probe = next(r for b, r in compiled_suite if b.name == "max_3").circuit
        service.record_measurement(circuit, model_s, 1)
        before, _ = service.estimate_ms(probe)
        # Hammer the same circuit with wildly slower re-measurements: its own
        # EWMA moves, the global calibration must not.
        for _ in range(50):
            service.record_measurement(circuit, 100.0 * model_s, 1)
        after, _ = service.estimate_ms(probe)
        assert after == pytest.approx(before)
        measured_ms, source = service.estimate_ms(circuit)
        assert source == "measured"
        # ... while the circuit's own EWMA did converge on the slow timings.
        assert measured_ms == pytest.approx(100.0 * model_s * 1000.0, rel=0.05)

    def test_calibration_smoothing_validation(self):
        with pytest.raises(ValueError, match="calibration_smoothing"):
            ExecutionService("reference", calibration_smoothing=0.0)


# ---------------------------------------------------------------------------
# the api facade and CLI
# ---------------------------------------------------------------------------
class TestApiBackendSurface:
    def test_execute_with_vector_vm(self):
        outcome = repro.execute(
            "(* (+ a b) (+ c d))", {"a": 1, "b": 2, "c": 3, "d": 4}, backend="vector-vm"
        )
        assert outcome.correct
        assert outcome.backend == "vector-vm"
        assert outcome.outputs == outcome.reference

    def test_execute_with_cost_sim_skips_verification(self):
        outcome = repro.execute("(* a b)", {"a": 3, "b": 4}, backend="cost-sim")
        assert outcome.backend == "cost-sim"
        assert outcome.outputs == [] and outcome.reference == []
        assert outcome.correct
        assert not outcome.verified
        assert outcome.execution.latency_ms > 0.0

    def test_empty_batch_still_reports_requested_backend(self):
        batch = repro.execute_batch("(* a b)", inputs=[], backend="vector-vm")
        assert batch.batch_size == 0
        assert batch.backend == "vector-vm"

    def test_cli_run_cost_sim_reports_skipped_verification(self, capsys):
        code = cli_main(["run", "(* a b)", "--inputs", "a=2,b=3", "--backend", "cost-sim"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verified     : skipped (backend produces no outputs)" in out

    def test_execute_batch_round_trip(self):
        batch = repro.execute_batch(
            "(* (+ a b) (+ c d))", batch=5, backend="vector-vm", seed=7
        )
        assert batch.batch_size == 5
        assert batch.all_correct
        assert batch.backend == "vector-vm"
        assert batch.throughput_per_s > 0.0
        assert len({tuple(sorted(item.items())) for item in batch.inputs}) > 1
        assert all(report.batch_size == 5 for report in batch.executions)

    def test_execute_batch_explicit_inputs(self):
        inputs = [{"a": 1, "b": 2}, {"a": 3, "b": 4}]
        batch = repro.execute_batch("(* a b)", inputs, backend="vector-vm")
        assert batch.outputs == [[2], [12]]
        assert batch.all_correct

    def test_env_var_overrides_default_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "vector-vm")
        assert default_backend_name() == "vector-vm"
        outcome = repro.execute("(* a b)", {"a": 2, "b": 5})
        assert outcome.backend == "vector-vm"
        monkeypatch.delenv("REPRO_BACKEND")
        assert default_backend_name() == "reference"

    def test_cli_run_with_backend(self, capsys):
        code = cli_main(
            ["run", "(+ (* a b) c)", "--inputs", "a=2,b=3,c=4", "--backend", "vector-vm"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "backend      : vector-vm" in out
        assert "verified     : OK" in out

    def test_cli_run_batch(self, capsys):
        code = cli_main(
            ["run-batch", "(* (+ a b) (+ c d))", "--batch", "6", "--backend", "vector-vm"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "batch size   : 6" in out
        assert "verified     : 6/6 OK" in out

    def test_execute_batch_cost_sim_marks_verification_skipped(self):
        batch = repro.execute_batch("(* a b)", batch=3, backend="cost-sim")
        assert not batch.verified
        assert batch.all_correct  # vacuous — nothing decrypted

    def test_cli_run_batch_cost_sim_reports_skipped_verification(self, capsys):
        code = cli_main(["run-batch", "(* a b)", "--batch", "3", "--backend", "cost-sim"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verified     : skipped (backend produces no outputs)" in out

    def test_cli_list_backends(self, capsys):
        assert cli_main(["list-backends"]) == 0
        out = capsys.readouterr().out
        for name in ("reference", "vector-vm", "cost-sim"):
            assert name in out


# ---------------------------------------------------------------------------
# harness + RL routing
# ---------------------------------------------------------------------------
class TestBackendRouting:
    def test_benchmark_runner_on_vector_vm(self):
        from repro.experiments.harness import BenchmarkRunner

        runner = BenchmarkRunner({"initial": "initial"}, backend="vector-vm")
        results = runner.run([benchmark_by_name("dot_product_4")])
        assert len(results) == 1
        assert results[0].backend == "vector-vm"
        assert results[0].correct and results[0].verified

    def test_benchmark_runner_on_cost_sim(self):
        from repro.experiments.harness import BenchmarkRunner

        runner = BenchmarkRunner({"initial": "initial"}, backend="cost-sim")
        results = runner.run([benchmark_by_name("dot_product_4")])
        assert results[0].backend == "cost-sim"
        assert results[0].correct  # vacuous
        assert not results[0].verified
        assert results[0].execution_latency_ms > 0.0

    def test_reward_simulated_latency_matches_reference_accounting(self):
        from repro.compiler.lowering import lower
        from repro.ir.parser import parse
        from repro.rl.reward import RewardConfig

        expr = parse("(* (+ a b) (+ c d))")
        config = RewardConfig()
        latency = config.simulated_latency_ms(expr)
        reference = execute(lower(expr), {"a": 1, "b": 2, "c": 3, "d": 4})
        assert latency == reference.latency_ms

    def test_env_latency_terminal_episode(self):
        from repro.ir.parser import parse
        from repro.rl.env import EnvConfig, FheRewriteEnv
        from repro.rl.reward import RewardConfig

        env = FheRewriteEnv(
            expression_source=lambda: parse("(+ (* a b) (* a b))"),
            config=EnvConfig(
                max_steps=3, reward=RewardConfig(use_latency_terminal=True)
            ),
        )
        env.reset()
        assert env.initial_latency_ms > 0.0
        done = False
        while not done:
            _, _, done, info = env.step((env.end_index, 0))
        assert "final_latency_ms" in info
        assert info["initial_latency_ms"] == env.initial_latency_ms
