"""Figure 5: execution time of generated code, CHEHAB RL vs Coyote.

The paper reports a 5.3× geometric-mean speedup of CHEHAB RL over Coyote.
The benchmark regenerates the per-kernel execution-time series on the
simulated BFV backend and asserts the reproduction's shape: CHEHAB RL is
faster on the overwhelming majority of kernels and wins the geometric mean
by a clear factor.
"""

from __future__ import annotations

from repro.compiler import execute
from repro.experiments import make_agent_compiler
from repro.compiler import build_compiler
from repro.kernels import benchmark_by_name


def _report(comparison) -> None:
    print("\nFig. 5 — execution time (ms) per benchmark")
    chehab = comparison.execution_time_series["CHEHAB RL"]
    coyote = comparison.execution_time_series["Coyote"]
    for name in sorted(chehab):
        print(f"  {name:28s} CHEHAB RL {chehab[name]:9.1f}   Coyote {coyote.get(name, float('nan')):9.1f}")
    print(f"  geometric-mean speedup (Coyote / CHEHAB RL): {comparison.execution_speedup:.2f}x")


def test_fig5_execution_time_series(benchmark, main_comparison):
    """Regenerate the Fig. 5 series and check the headline shape."""
    benchmark.pedantic(lambda: main_comparison, rounds=1, iterations=1)
    _report(main_comparison)
    assert main_comparison.all_correct
    # Shape: CHEHAB RL wins the geometric mean by a clear margin (paper: 5.3x).
    assert main_comparison.execution_speedup > 1.5
    chehab = main_comparison.execution_time_series["CHEHAB RL"]
    coyote = main_comparison.execution_time_series["Coyote"]
    wins = sum(1 for name in chehab if chehab[name] < coyote[name])
    assert wins >= 0.7 * len(chehab)


def test_fig5_execution_dot_product_16_chehab(benchmark, trained_agent):
    """Simulated execution latency of the CHEHAB RL circuit for Dot Product 16."""
    bench = benchmark_by_name("dot_product_16")
    report = make_agent_compiler(trained_agent).compile_expression(
        bench.expression(), name=bench.name
    )
    inputs = bench.sample_inputs(0)
    result = benchmark(lambda: execute(report.circuit, inputs))
    assert result.outputs["result"] == bench.reference(inputs)


def test_fig5_execution_dot_product_16_coyote(benchmark):
    """Simulated execution latency of the Coyote circuit for Dot Product 16."""
    bench = benchmark_by_name("dot_product_16")
    report = build_compiler("coyote").compile_expression(bench.expression(), name=bench.name)
    inputs = bench.sample_inputs(0)
    result = benchmark(lambda: execute(report.circuit, inputs))
    assert result.outputs["result"] == bench.reference(inputs)
