"""Table 1: reward-weight sensitivity.

The paper compares the default cost weights (1, 1, 1) against
depth-emphasising variants (1, 50, 50), (1, 100, 100) and (1, 150, 150):
the variants consume slightly less noise (0.91-0.94×) but run 1.4-1.5×
slower.  The benchmark regenerates the same two factors per weight
configuration and asserts the trade-off's direction.
"""

from __future__ import annotations

from repro.experiments import run_reward_weight_ablation
from repro.kernels import benchmark_by_name

_WEIGHTS = ((1, 1, 1), (1, 50, 50), (1, 100, 100), (1, 150, 150))
_BENCH_NAMES = ("dot_product_8", "l2_distance_8", "polynomial_regression_4", "max_4", "tree_100_100_5")


def test_table1_reward_weight_sensitivity(benchmark, compilation_cache):
    """Regenerate Table 1 (execution-time and noise factors vs (1,1,1))."""
    benchmarks = [benchmark_by_name(name) for name in _BENCH_NAMES]
    outcome = benchmark.pedantic(
        lambda: run_reward_weight_ablation(
            benchmarks=benchmarks, weight_configs=_WEIGHTS, cache=compilation_cache
        ),
        rounds=1,
        iterations=1,
    )
    print("\nTable 1 — reward weight sensitivity (relative to (1,1,1))")
    for weights in _WEIGHTS:
        exec_factor = outcome.execution_time_factor[tuple(weights)]
        noise_factor = outcome.noise_factor[tuple(weights)]
        print(f"  {str(weights):15s} exec {exec_factor:5.3f}x   noise {noise_factor:5.3f}x")
    baseline = outcome.execution_time_factor[(1, 1, 1)]
    assert abs(baseline - 1.0) < 1e-6
    # Shape: depth-heavy weights never run faster than the default and never
    # consume more noise than the default (the paper's trade-off direction).
    for weights in _WEIGHTS[1:]:
        assert outcome.execution_time_factor[tuple(weights)] >= 0.95
        assert outcome.noise_factor[tuple(weights)] <= 1.05
