"""Figure 8: training-data ablation (LLM-style motifs vs random expressions).

The paper finds that the agent trained on LLM-generated data produces much
faster circuits than one trained on uniformly random expressions.  The
benchmark trains both (briefly) and regenerates the per-kernel execution
series; the asserted shape is that the motif-trained agent is at least as
good in the geometric mean.
"""

from __future__ import annotations

from repro.experiments import run_dataset_ablation
from repro.kernels import benchmark_by_name

_BENCH_NAMES = ("dot_product_8", "l2_distance_8", "hamming_distance_8", "linear_regression_8")


def test_fig8_llm_vs_random_training_data(benchmark, compilation_cache):
    benchmarks = [benchmark_by_name(name) for name in _BENCH_NAMES]
    outcome = benchmark.pedantic(
        lambda: run_dataset_ablation(
            benchmarks=benchmarks, train_timesteps=256, cache=compilation_cache
        ),
        rounds=1,
        iterations=1,
    )
    print("\nFig. 8 — execution time (ms): agent trained on LLM-style vs random data")
    realistic = outcome.execution_time_series["LLM-style data"]
    random_series = outcome.execution_time_series["Random data"]
    for name in sorted(realistic):
        print(f"  {name:24s} LLM-style {realistic[name]:9.1f}   random {random_series[name]:9.1f}")
    print(f"  geometric-mean factor (random / LLM-style): {outcome.speedup_of_realistic_data:.2f}x")
    # Shape: realistic training data is never worse in the geometric mean.
    assert outcome.speedup_of_realistic_data >= 0.99
