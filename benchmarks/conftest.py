"""Shared fixtures for the benchmark harness.

The expensive artifacts (the briefly-trained RL agent and the main
CHEHAB-RL-vs-Coyote comparison run) are computed once per session and shared
by the per-figure benchmark modules.  Every figure/table module prints the
series it regenerates, so running ``pytest benchmarks/ --benchmark-only -s``
reproduces the paper's evaluation artifacts in one go (at reproduction
scale; see EXPERIMENTS.md for the settings and measured numbers).
"""

from __future__ import annotations

import pytest

from repro.api import CompilationCache
from repro.experiments import make_default_agent, run_main_comparison
from repro.kernels import benchmark_by_name

#: Benchmarks used by the main comparison figures (a representative slice of
#: every suite; the full list of Table 6 is available via benchmark_suite()).
MAIN_BENCHMARK_NAMES = (
    "box_blur_3x3",
    "dot_product_8",
    "dot_product_16",
    "hamming_distance_8",
    "l2_distance_8",
    "linear_regression_8",
    "polynomial_regression_8",
    "gx_3x3",
    "gy_3x3",
    "roberts_cross_3x3",
    "matrix_multiply_3x3",
    "max_4",
    "sort_3",
    "tree_50_50_5",
    "tree_100_100_5",
)

#: Training budget of the session agent (the paper uses 2,000,000 steps).
TRAIN_TIMESTEPS = 256


@pytest.fixture(scope="session")
def main_benchmarks():
    return [benchmark_by_name(name) for name in MAIN_BENCHMARK_NAMES]


@pytest.fixture(scope="session")
def trained_agent():
    return make_default_agent(train_timesteps=TRAIN_TIMESTEPS)


@pytest.fixture(scope="session")
def compilation_cache():
    """One compilation cache shared by every figure/table module, so kernels
    compiled for one figure are reused by every other figure in the session."""
    return CompilationCache(capacity=1024)


@pytest.fixture(scope="session")
def main_comparison(main_benchmarks, compilation_cache):
    return run_main_comparison(
        benchmarks=main_benchmarks,
        train_timesteps=TRAIN_TIMESTEPS,
        cache=compilation_cache,
    )
