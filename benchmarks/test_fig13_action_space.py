"""Figure 13: flat vs hierarchical action space learning curves.

The paper's hierarchical agent learns faster and reaches higher episode
rewards than a flat agent that enumerates every (rule, location) pair.  The
benchmark trains both for the same (small) number of PPO steps and compares
the resulting reward curves; the asserted shape is that the hierarchical
agent's final reward is not worse than the flat agent's.
"""

from __future__ import annotations

from repro.experiments import run_action_space_ablation


def test_fig13_flat_vs_hierarchical_action_space(benchmark):
    outcome = benchmark.pedantic(
        lambda: run_action_space_ablation(train_timesteps=192, dataset_size=24),
        rounds=1,
        iterations=1,
    )
    print("\nFig. 13 — mean episode reward per PPO update")
    print(f"  hierarchical: {[round(r, 2) for r in outcome.hierarchical_rewards]}")
    print(f"  flat:         {[round(r, 2) for r in outcome.flat_rewards]}")
    print(
        f"  final rewards — hierarchical {outcome.hierarchical_final_reward:.2f}, "
        f"flat {outcome.flat_final_reward:.2f}"
    )
    assert outcome.hierarchical_rewards, "hierarchical training produced no episodes"
    assert outcome.flat_rewards, "flat training produced no episodes"
    # Shape: at this tiny training budget the curves are noisy, so the hard
    # "hierarchical > flat" ordering the paper reports only emerges with more
    # timesteps; here we assert the hierarchical agent is not catastrophically
    # behind and record both curves for inspection.
    assert (
        outcome.hierarchical_final_reward >= outcome.flat_final_reward - 50.0
    )
