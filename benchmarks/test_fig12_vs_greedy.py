"""Figure 12: CHEHAB RL vs the original CHEHAB (greedy TRS).

The paper shows CHEHAB RL is faster on most kernels, with a few cases (e.g.
Gx 3x3) where the greedy compiler wins because the learned policy makes a
sub-optimal rotation decision.  The benchmark regenerates the per-kernel
series; since the reproduction's agent is policy-guided by the same cost
signal the greedy rewriter descends, the asserted shape is parity or better
in the geometric mean.
"""

from __future__ import annotations

from repro.experiments import run_greedy_comparison
from repro.kernels import benchmark_by_name

_BENCH_NAMES = (
    "dot_product_8",
    "l2_distance_8",
    "linear_regression_8",
    "gx_3x3",
    "box_blur_3x3",
    "max_4",
)


def test_fig12_rl_vs_greedy_chehab(benchmark, compilation_cache):
    benchmarks = [benchmark_by_name(name) for name in _BENCH_NAMES]
    outcome = benchmark.pedantic(
        lambda: run_greedy_comparison(
            benchmarks=benchmarks, train_timesteps=256, cache=compilation_cache
        ),
        rounds=1,
        iterations=1,
    )
    print("\nFig. 12 — execution time (ms): CHEHAB RL vs original CHEHAB (greedy)")
    rl_series = outcome.execution_time_series["CHEHAB RL"]
    greedy_series = outcome.execution_time_series["CHEHAB"]
    for name in sorted(rl_series):
        print(f"  {name:24s} CHEHAB RL {rl_series[name]:9.1f}   CHEHAB {greedy_series[name]:9.1f}")
    print(f"  geometric-mean factor (CHEHAB / CHEHAB RL): {outcome.rl_speedup_over_greedy:.3f}x")
    # Shape: the learned/guided policy is competitive with exhaustive greedy
    # descent (within 10% in the geometric mean) and wins or ties on most kernels.
    assert outcome.rl_speedup_over_greedy >= 0.9
