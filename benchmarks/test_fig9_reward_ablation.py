"""Figure 9: step-only vs step+terminal reward.

The paper reports that adding the terminal reward yields 1.291× better
execution time (geometric mean) than the step-only reward.  The benchmark
trains both variants briefly and regenerates the per-kernel series; the
asserted shape is that the combined reward is not worse.
"""

from __future__ import annotations

from repro.experiments import run_reward_term_ablation
from repro.kernels import benchmark_by_name

_BENCH_NAMES = ("dot_product_8", "l2_distance_8", "linear_regression_8", "gx_3x3")


def test_fig9_step_vs_terminal_reward(benchmark, compilation_cache):
    benchmarks = [benchmark_by_name(name) for name in _BENCH_NAMES]
    outcome = benchmark.pedantic(
        lambda: run_reward_term_ablation(
            benchmarks=benchmarks, train_timesteps=256, cache=compilation_cache
        ),
        rounds=1,
        iterations=1,
    )
    print("\nFig. 9 — execution time (ms): step-only vs step+terminal reward")
    combined = outcome.execution_time_series["step+terminal"]
    step_only = outcome.execution_time_series["step-only"]
    for name in sorted(combined):
        print(f"  {name:24s} step+terminal {combined[name]:9.1f}   step-only {step_only[name]:9.1f}")
    print(f"  geometric-mean factor (step-only / step+terminal): {outcome.improvement_from_terminal:.3f}x")
    assert outcome.improvement_from_terminal >= 0.99
