"""Figure 11 + Table 7: Transformer vs GRU autoencoder reconstruction.

The paper's Transformer autoencoder reaches 100% exact-match reconstruction
of random IR programs while the GRU plateaus at 98.9%.  The benchmark trains
both (briefly, on a small corpus) and regenerates the Table 7 metrics; the
asserted shape is that the Transformer's reconstruction accuracy is at least
as high as the GRU's.
"""

from __future__ import annotations

from repro.experiments import run_encoder_ablation


def test_fig11_table7_transformer_vs_gru(benchmark):
    outcome = benchmark.pedantic(
        lambda: run_encoder_ablation(corpus_size=32, epochs=6),
        rounds=1,
        iterations=1,
    )
    print("\nTable 7 — reconstruction accuracy")
    print(
        f"  Transformer: exact {outcome.transformer_accuracy['exact_match']:.3f}  "
        f"token {outcome.transformer_accuracy['token_accuracy']:.3f}"
    )
    print(
        f"  GRU:         exact {outcome.gru_accuracy['exact_match']:.3f}  "
        f"token {outcome.gru_accuracy['token_accuracy']:.3f}"
    )
    print(f"  Transformer loss curve: {[round(v, 3) for v in outcome.transformer_history['loss']]}")
    print(f"  GRU loss curve:         {[round(v, 3) for v in outcome.gru_history['loss']]}")
    assert (
        outcome.transformer_accuracy["token_accuracy"]
        >= outcome.gru_accuracy["token_accuracy"] - 0.05
    )
