"""Figure 6: compilation time, CHEHAB RL vs Coyote.

The paper reports a 27.9× geometric-mean compilation speedup over Coyote
(whose ILP-based search runs for minutes to hours on large kernels), with
Coyote remaining faster on a few very small kernels.  At reproduction scale
both compilers finish in fractions of a second, so the regenerated series
documents the *trend* — Coyote's search cost grows much faster with kernel
size — rather than the absolute 27.9× factor (see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.compiler import build_compiler
from repro.experiments import make_agent_compiler
from repro.kernels import benchmark_by_name


def _report(comparison) -> None:
    print("\nFig. 6 — compilation time (s) per benchmark")
    chehab = comparison.compile_time_series["CHEHAB RL"]
    coyote = comparison.compile_time_series["Coyote"]
    for name in sorted(chehab):
        print(f"  {name:28s} CHEHAB RL {chehab[name]:8.3f}   Coyote {coyote.get(name, float('nan')):8.3f}")
    print(f"  geometric-mean factor (Coyote / CHEHAB RL): {comparison.compile_speedup:.2f}x")


def test_fig6_compile_time_series(benchmark, main_comparison):
    """Regenerate the Fig. 6 series."""
    benchmark.pedantic(lambda: main_comparison, rounds=1, iterations=1)
    _report(main_comparison)
    assert all(value > 0 for value in comparisonless(main_comparison))


def comparisonless(comparison):
    for series in comparison.compile_time_series.values():
        for value in series.values():
            yield value


def test_fig6_compile_dot_product_16_chehab_rl(benchmark, trained_agent):
    """Compilation time of Dot Product 16 with the RL agent in the pipeline."""
    bench = benchmark_by_name("dot_product_16")
    compiler = make_agent_compiler(trained_agent)
    expr = bench.expression()
    report = benchmark(lambda: compiler.compile_expression(expr, name=bench.name))
    assert report.stats.total_operations > 0


def test_fig6_compile_dot_product_16_coyote(benchmark):
    """Compilation time of Dot Product 16 with the Coyote-style search."""
    bench = benchmark_by_name("dot_product_16")
    compiler = build_compiler("coyote")
    expr = bench.expression()
    report = benchmark(lambda: compiler.compile_expression(expr, name=bench.name))
    assert report.stats.total_operations > 0
