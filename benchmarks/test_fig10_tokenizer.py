"""Figure 10: ICI vs BPE tokenization.

The paper's ICI-tokenized agent finishes its 2M-step training in 43 hours
versus 68 hours with BPE.  The cost difference comes from (i) BPE's slower
tokenization and (ii) the longer subword sequences every training step must
process.  The benchmark measures both quantities plus the ICI training
reward curve, and asserts that ICI is cheaper on both axes.
"""

from __future__ import annotations

from repro.experiments import run_tokenizer_ablation


def test_fig10_ici_vs_bpe_tokenization(benchmark):
    outcome = benchmark.pedantic(
        lambda: run_tokenizer_ablation(corpus_size=64, train_timesteps=128),
        rounds=1,
        iterations=1,
    )
    print("\nFig. 10 — ICI vs BPE tokenization")
    print(f"  tokens per program:   ICI {outcome.ici_tokens_per_program:6.1f}   BPE {outcome.bpe_tokens_per_program:6.1f}")
    print(f"  tokenization time:    ICI {outcome.ici_tokenization_time_s:6.4f}s  BPE {outcome.bpe_tokenization_time_s:6.4f}s")
    print(f"  implied per-step training cost factor of BPE: {outcome.bpe_training_time_factor:.2f}x")
    print(f"  ICI training reward curve: {[round(r, 2) for r in outcome.ici_reward_curve]}")
    # Shape: BPE produces longer sequences and is slower to tokenize, which is
    # what makes BPE-based training slower end to end.
    assert outcome.bpe_tokens_per_program >= outcome.ici_tokens_per_program
    assert outcome.bpe_tokenization_time_s >= outcome.ici_tokenization_time_s
