"""Figure 7: consumed noise budget, CHEHAB RL vs Coyote.

The paper reports that CHEHAB RL's circuits consume 2.54× less noise budget
(geometric mean) and that Coyote exhausts the entire budget on Sort-4 and
two polynomial-tree benchmarks.  The regenerated series checks the same
shape: lower consumption for CHEHAB RL on essentially every kernel and a
clear geometric-mean factor.
"""

from __future__ import annotations

from repro.compiler import execute
from repro.experiments import make_agent_compiler
from repro.compiler import build_compiler
from repro.kernels import benchmark_by_name


def _report(comparison) -> None:
    print("\nFig. 7 — consumed noise budget (bits) per benchmark")
    chehab = comparison.noise_series["CHEHAB RL"]
    coyote = comparison.noise_series["Coyote"]
    for name in sorted(chehab):
        print(f"  {name:28s} CHEHAB RL {chehab[name]:7.1f}   Coyote {coyote.get(name, float('nan')):7.1f}")
    print(f"  geometric-mean factor (Coyote / CHEHAB RL): {comparison.noise_reduction:.2f}x")


def test_fig7_noise_budget_series(benchmark, main_comparison):
    """Regenerate the Fig. 7 series and check the headline shape."""
    benchmark.pedantic(lambda: main_comparison, rounds=1, iterations=1)
    _report(main_comparison)
    # Shape: CHEHAB RL consumes less noise in the geometric mean (paper: 2.54x).
    assert main_comparison.noise_reduction > 1.3
    chehab = main_comparison.noise_series["CHEHAB RL"]
    coyote = main_comparison.noise_series["Coyote"]
    wins = sum(1 for name in chehab if chehab[name] <= coyote[name])
    assert wins >= 0.7 * len(chehab)


def test_fig7_noise_sort3_chehab_rl(benchmark, trained_agent):
    """Noise consumption of the CHEHAB RL circuit for Sort 3."""
    bench = benchmark_by_name("sort_3")
    report = make_agent_compiler(trained_agent).compile_expression(
        bench.expression(), name=bench.name
    )
    inputs = bench.sample_inputs(0)
    execution = benchmark(lambda: execute(report.circuit, inputs))
    assert execution.consumed_noise_budget > 0


def test_fig7_noise_sort3_coyote(benchmark):
    """Noise consumption of the Coyote circuit for Sort 3."""
    bench = benchmark_by_name("sort_3")
    report = build_compiler("coyote").compile_expression(bench.expression(), name=bench.name)
    inputs = bench.sample_inputs(0)
    execution = benchmark(lambda: execute(report.circuit, inputs))
    assert execution.consumed_noise_budget > 0
