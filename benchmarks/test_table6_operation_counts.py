"""Table 6: per-benchmark circuit metrics under the four configurations.

Regenerates the Initial / CHEHAB RL / Coyote / CHEHAB-RL-with-layout-after-
encryption comparison for a representative kernel slice and prints the
columns the paper reports (depth, multiplicative depth, ct-ct and ct-pt
multiplications, rotations, additions, consumed noise, compile time).
"""

from __future__ import annotations

from repro.experiments import run_table6
from repro.kernels import benchmark_by_name

_BENCH_NAMES = (
    "box_blur_3x3",
    "dot_product_8",
    "l2_distance_8",
    "linear_regression_8",
    "gx_3x3",
    "matrix_multiply_3x3",
    "max_4",
    "tree_100_100_5",
)


def test_table6_operation_counts(benchmark, compilation_cache):
    benchmarks = [benchmark_by_name(name) for name in _BENCH_NAMES]
    results = benchmark.pedantic(
        lambda: run_table6(
            benchmarks=benchmarks, train_timesteps=256, cache=compilation_cache
        ),
        rounds=1,
        iterations=1,
    )
    print("\nTable 6 — circuit metrics per benchmark and configuration")
    header = (
        f"  {'benchmark':22s} {'configuration':36s} {'∪':>3s} {'∪⊗':>3s} {'⊗':>4s} "
        f"{'⟳':>4s} {'⊙':>4s} {'⊕':>4s} {'CN':>6s} {'CT(s)':>7s}"
    )
    print(header)
    for result in results:
        print(
            f"  {result.benchmark:22s} {result.compiler:36s} {result.depth:3d} "
            f"{result.mult_depth:3d} {result.ct_ct_multiplications:4d} {result.rotations:4d} "
            f"{result.ct_pt_multiplications:4d} {result.additions:4d} "
            f"{result.consumed_noise_budget:6.1f} {result.compile_time_s:7.3f}"
        )
    # Every configuration must produce a correct circuit (unless it exhausted
    # the noise budget, which the paper observed for Coyote on some kernels).
    for result in results:
        assert result.correct or result.noise_budget_exhausted
    # Shape: the "layout after encryption" ablation never uses fewer rotations
    # than the default CHEHAB RL configuration.
    by_key = {(r.benchmark, r.compiler): r for r in results}
    for name in _BENCH_NAMES:
        default = by_key[(name, "CHEHAB RL")]
        after = by_key[(name, "CHEHAB RL (layout after encryption)")]
        assert after.rotations + after.ct_pt_multiplications >= default.rotations
        initial = by_key[(name, "Initial")]
        assert default.total_operations <= initial.total_operations or default.correct
