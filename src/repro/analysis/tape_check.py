"""Static verification of optimized tapes against their source circuits.

:func:`verify_tape` proves, per :class:`~repro.backends.tape.CompiledTape`
(and per reduction plan), the invariants the tape optimizer is supposed to
preserve:

``tape-arena`` (register-arena safety)
    Every buffer an op reads was written first (def-before-use over the
    re-derived def-use chains), nothing ever writes into the read-only
    constant pool, rotation steps are normalized into ``[1, n)`` (the
    slice-based rotate corrupts the buffer otherwise), and the no-alias
    constraints of the multi-step superinstructions hold: rotations write
    their destination before the source is fully read (``dst`` must not
    alias *any* operand) and the fused accumulator forms overwrite ``dst``
    before reading ``c``.

``tape-outputs`` (output coverage)
    Every output the circuit declares reaches exactly one
    :class:`~repro.backends.tape.TapeOutput` (same name, same slot length),
    and no tape output is orphaned.

``tape-bounds`` (reduction-schedule soundness)
    An independent interval analysis re-simulates magnitude bounds over the
    scheduled ops of each input-magnitude bucket — including the
    intermediate values materialized inside fused ops — and proves no
    intermediate can leave the signed 64-bit range of the arena's int64
    buffers.  This is exactly the property the lazy-reduction scheduler
    promises; the verifier recomputes it from scratch rather than trusting
    the scheduler's own bookkeeping.

``tape-equivalence`` (translation validation + fusion legality)
    Both the original circuit and the tape are executed symbolically over a
    normalized term domain (commutative operands sorted, rotation steps
    reduced mod ``n``, loads and constants keyed by their centred slot
    content, fused superinstructions unfolded, congruence-preserving
    reductions erased).  Every tape output's term must equal the circuit's
    term for that output — one oracle that catches swapped operands,
    clobbered lifetimes, dropped or reordered ops and illegal fusion.
    Fusion legality is additionally checked directly: the inner term a
    fused op consumed must be single-use in the live part of the original
    program, mirroring the optimizer's own precondition.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.analysis import AnalysisReport, Severity, register_checker
from repro.backends.tape import (
    _NO_ALIAS_ACC,
    _NO_ALIAS_ALL,
    REDUCE_LIMIT,
    CompiledTape,
    TapeOp,
)
from repro.compiler.circuit import CircuitProgram, Opcode

__all__ = ["verify_tape", "verify_plan_ops", "iter_op_bounds", "DEFAULT_BOUNDS"]


#: Input-magnitude bounds whose buckets the verifier checks by default: the
#: smallest bucket, a typical workload range, and the largest bucket
#: (centred inputs are clamped to ``t // 2``, so this covers the worst case).
DEFAULT_BOUNDS = (1, 7, 1 << 62)

#: Which operand fields each tape-op kind reads.
_READS: Dict[str, Tuple[str, ...]] = {
    "add": ("a", "b"),
    "sub": ("a", "b"),
    "mul": ("a", "b"),
    "neg": ("a",),
    "rot": ("a",),
    "rot_add": ("a", "b"),
    "rot_mul": ("a", "b"),
    "rot_mul_add": ("a", "b", "c"),
    "mul_add": ("a", "b", "c"),
    "mul_sub_l": ("a", "b", "c"),
    "mul_sub_r": ("a", "b", "c"),
    "reduce": ("dst",),
}


def _reads(op: TapeOp) -> List[int]:
    return [getattr(op, field) for field in _READS.get(op.kind, ())]


# ---------------------------------------------------------------------------
# tape-arena: def-before-use, const-pool writes, no-alias constraints
# ---------------------------------------------------------------------------
@register_checker(
    "tape-arena",
    "tape",
    "register-arena safety: def-before-use, no-alias, read-only const pool",
)
def check_arena(
    report: AnalysisReport,
    program: CircuitProgram,
    tape: CompiledTape,
    ops: Sequence[TapeOp],
    *,
    location: str,
) -> None:
    n_consts = len(tape.consts)
    n_buffers = n_consts + tape.slot_count
    defined: Set[int] = set(range(n_consts))
    defined.update(load.buffer for load in tape.loads)

    for load in tape.loads:
        if load.buffer < n_consts or load.buffer >= n_buffers:
            report.add(
                "tape-arena",
                "load-out-of-range",
                Severity.ERROR,
                f"load writes buffer {load.buffer} outside the arena "
                f"[{n_consts}, {n_buffers})",
                location=location,
            )

    for index, op in enumerate(ops):
        where = f"{location} op {index} ({op.kind})"
        if op.kind not in _READS:
            report.add(
                "tape-arena",
                "unknown-op",
                Severity.ERROR,
                f"unknown tape op kind {op.kind!r}",
                location=where,
            )
            continue
        for buffer in _reads(op):
            if buffer < 0 or buffer >= n_buffers:
                report.add(
                    "tape-arena",
                    "operand-out-of-range",
                    Severity.ERROR,
                    f"reads buffer {buffer} outside [0, {n_buffers})",
                    location=where,
                )
            elif buffer not in defined:
                report.add(
                    "tape-arena",
                    "use-before-def",
                    Severity.ERROR,
                    f"reads buffer {buffer} before any write defined it",
                    location=where,
                )
        if op.dst < 0 or op.dst >= n_buffers:
            report.add(
                "tape-arena",
                "dst-out-of-range",
                Severity.ERROR,
                f"writes buffer {op.dst} outside [0, {n_buffers})",
                location=where,
            )
            continue
        if op.dst < n_consts:
            report.add(
                "tape-arena",
                "const-pool-write",
                Severity.ERROR,
                f"writes constant-pool buffer c{op.dst} (shared, read-only)",
                location=where,
            )
        if op.kind in _NO_ALIAS_ALL:
            operands = {b for b in (op.a, op.b, op.c) if b >= 0}
            if op.dst in operands:
                report.add(
                    "tape-arena",
                    "alias-hazard",
                    Severity.ERROR,
                    f"{op.kind} destination r{op.dst - n_consts} aliases an "
                    "operand; the rotation writes dst before the source is "
                    "fully read",
                    location=where,
                )
        elif op.kind in _NO_ALIAS_ACC and op.c >= 0 and op.dst == op.c:
            report.add(
                "tape-arena",
                "alias-hazard",
                Severity.ERROR,
                f"{op.kind} destination aliases the accumulator c; the "
                "first ufunc overwrites dst before the second reads c",
                location=where,
            )
        if op.kind in ("rot", "rot_add", "rot_mul", "rot_mul_add"):
            if not 0 < op.step < tape.n:
                report.add(
                    "tape-arena",
                    "rotation-normalization",
                    Severity.ERROR,
                    f"rotation step {op.step} is not normalized into "
                    f"[1, {tape.n}); the slice-based rotate would corrupt "
                    "the buffer",
                    location=where,
                )
        defined.add(op.dst)

    for output in tape.outputs:
        if output.buffer not in defined:
            report.add(
                "tape-arena",
                "undefined-output",
                Severity.ERROR,
                f"output {output.name!r} reads buffer {output.buffer} that "
                "no load or op ever defined",
                location=location,
            )
    report.mark_ran("tape-arena")


# ---------------------------------------------------------------------------
# tape-outputs: every circuit output reaches exactly one TapeOutput
# ---------------------------------------------------------------------------
@register_checker(
    "tape-outputs",
    "tape",
    "output coverage: each circuit output maps to exactly one tape output",
)
def check_outputs(
    report: AnalysisReport,
    program: CircuitProgram,
    tape: CompiledTape,
    ops: Sequence[TapeOp],
    *,
    location: str,
) -> None:
    declared = {(name, length) for _, name, length in program.outputs}
    tape_outputs: Dict[str, int] = {}
    for output in tape.outputs:
        tape_outputs[output.name] = tape_outputs.get(output.name, 0) + 1
        if (output.name, output.length) not in declared:
            report.add(
                "tape-outputs",
                "orphan-output",
                Severity.ERROR,
                f"tape output {output.name!r} (length {output.length}) does "
                "not match any declared circuit output",
                location=location,
            )
    for _, name, length in program.outputs:
        count = tape_outputs.get(name, 0)
        if count != 1:
            report.add(
                "tape-outputs",
                "missing-output" if count == 0 else "duplicate-output",
                Severity.ERROR,
                f"circuit output {name!r} reaches {count} tape outputs "
                "(expected exactly one)",
                location=location,
            )
    report.mark_ran("tape-outputs")


# ---------------------------------------------------------------------------
# tape-bounds: independent interval analysis of the reduction schedule
# ---------------------------------------------------------------------------
@register_checker(
    "tape-bounds",
    "tape",
    "reduction-schedule soundness via independent interval analysis",
)
def check_bounds(
    report: AnalysisReport,
    program: CircuitProgram,
    tape: CompiledTape,
    ops: Sequence[TapeOp],
    *,
    location: str,
    bucket: int,
) -> None:
    """Re-simulate magnitude bounds over the scheduled ops of one bucket.

    The abstract state maps each buffer to an upper bound on any value it
    can hold for inputs with ``|v| <= bucket``, re-derived independently of
    the scheduler.  Fused ops are unfolded, so the *intermediate* product
    written into ``dst`` before the accumulate step is bounds-checked too.
    Any bound reaching ``2**63`` means an int64 overflow is possible and
    the schedule is unsound.
    """
    def overflow(value: int, stage: str, where: str) -> None:
        if value >= REDUCE_LIMIT:
            report.add(
                "tape-bounds",
                "reduction-threshold",
                Severity.ERROR,
                f"{stage} magnitude bound {value} reaches the lazy-reduction "
                f"threshold 2**62; the schedule loses its int64 overflow "
                "headroom here",
                location=where,
                bucket=bucket,
                bound=value,
            )

    for index, op, product, result in iter_op_bounds(tape, ops, bucket=bucket):
        where = f"{location} op {index} ({op.kind})"
        if op.kind == "reduce":
            continue  # result is min(prior, t//2): always in range
        if product is not None:
            overflow(product, "fused intermediate product", where)
        overflow(result, "result", where)
    report.mark_ran("tape-bounds")


def iter_op_bounds(tape: CompiledTape, ops: Sequence[TapeOp], *, bucket: int):
    """The interval transfer function, one op at a time.

    Yields ``(index, op, product_bound, result_bound)`` per scheduled op:
    ``result_bound`` is an upper bound on the magnitude ``op.dst`` can hold
    after the op for any inputs with ``|v| <= bucket``, and
    ``product_bound`` bounds the intermediate product a fused multiply form
    materializes in ``dst`` before accumulating (None for all other kinds).
    :func:`check_bounds` consumes this to flag threshold violations; the
    interval-soundness property test consumes it to compare against
    concrete executions — both see the identical abstraction.
    """
    bounds: Dict[int, int] = {
        index: bound for index, bound in enumerate(tape.const_bounds)
    }
    for load in tape.loads:
        bounds[load.buffer] = max(
            load.const_bound, bucket if load.var_columns else 0
        )
    reduced = tape.half
    for index, op in enumerate(ops):
        kind = op.kind
        product: Optional[int] = None
        if kind == "reduce":
            result = min(bounds.get(op.dst, reduced), reduced)
        else:
            a = bounds.get(op.a, 0)
            b = bounds.get(op.b, 0)
            c = bounds.get(op.c, 0)
            if kind in ("add", "sub", "rot_add"):
                result = a + b
            elif kind in ("mul", "rot_mul"):
                result = a * b
            elif kind in ("mul_add", "mul_sub_l", "mul_sub_r", "rot_mul_add"):
                product = a * b
                result = product + c
            elif kind in ("neg", "rot"):
                result = a
            else:  # unknown kinds are reported by tape-arena
                continue
        bounds[op.dst] = result
        yield index, op, product, result


# ---------------------------------------------------------------------------
# tape-equivalence: symbolic translation validation + fusion legality
# ---------------------------------------------------------------------------
def _binary(kind: str, x: object, y: object) -> Tuple:
    if kind in ("add", "mul") and repr(y) < repr(x):
        x, y = y, x  # commutative: canonical operand order
    return (kind, x, y)


def _circuit_terms(
    program: CircuitProgram, t: int, n: int
) -> Dict[str, object]:
    """Symbolic terms of every declared circuit output.

    The normalization mirrors what the tape optimizer is *allowed* to do:
    rotation steps are reduced mod ``n`` (step 0 is the identity),
    commutative operands are sorted, OUTPUT markers are aliases, and loads
    and plaintext constants are keyed by their centred slot content — so
    deduplication and CSE become the identity in this domain.
    """
    half = t // 2

    def centred(value: int) -> int:
        residue = int(value) % t
        return residue - t if residue > half else residue

    terms: Dict[int, object] = {}
    for instruction in program.instructions:
        opcode = instruction.opcode
        dst = instruction.result
        if opcode is Opcode.LOAD_INPUT:
            template = np.zeros(n, dtype=np.int64)
            var_columns: List[Tuple[int, str]] = []
            for column, slot in enumerate(instruction.layout):
                if slot.constant is not None:
                    template[column] = centred(slot.constant)
                else:
                    var_columns.append((column, slot.name))
            terms[dst] = ("load", tuple(var_columns), template.tobytes())
        elif opcode is Opcode.LOAD_PLAIN:
            if instruction.name == "broadcast":
                plain = np.full(n, centred(instruction.values[0]), dtype=np.int64)
            else:
                plain = np.zeros(n, dtype=np.int64)
                values = [centred(v) for v in instruction.values]
                plain[: len(values)] = values
            terms[dst] = ("plain", plain.tobytes())
        elif opcode is Opcode.ROTATE:
            step = instruction.step % n
            source = terms[instruction.operands[0]]
            terms[dst] = source if step == 0 else ("rot", source, step)
        elif opcode is Opcode.OUTPUT:
            terms[dst] = terms[instruction.operands[0]]
        elif opcode is Opcode.NEGATE:
            terms[dst] = ("neg", terms[instruction.operands[0]])
        else:
            kind = {
                Opcode.ADD: "add",
                Opcode.SUB: "sub",
                Opcode.MUL: "mul",
                Opcode.ADD_PLAIN: "add",
                Opcode.SUB_PLAIN: "sub",
                Opcode.MUL_PLAIN: "mul",
            }.get(opcode)
            if kind is None:
                raise ValueError(f"unknown opcode {opcode}")
            x = terms[instruction.operands[0]]
            y = terms[instruction.operands[1]]
            terms[dst] = _binary(kind, x, y)
    return {name: terms[register] for register, name, _ in program.outputs}


_LEAF_KINDS = ("load", "plain")


def _live_use_counts(outputs: Dict[str, object]) -> Dict[object, int]:
    """How many times each distinct term is consumed in the live term DAG.

    Terms are value-keyed (structural equality), so identical instructions
    collapse into one node exactly as the optimizer's CSE does, and the
    count per node is its number of consumers plus output references — the
    quantity the fusion passes gate on.
    """
    counts: Dict[object, int] = {}
    seen: Set[object] = set()
    stack: List[object] = []
    for term in outputs.values():
        counts[term] = counts.get(term, 0) + 1
        stack.append(term)
    while stack:
        term = stack.pop()
        if not isinstance(term, tuple) or term[0] in _LEAF_KINDS:
            continue
        if term in seen:
            continue
        seen.add(term)
        children = term[1:2] if term[0] in ("neg", "rot") else term[1:3]
        for child in children:
            counts[child] = counts.get(child, 0) + 1
            stack.append(child)
    return counts


@register_checker(
    "tape-equivalence",
    "tape",
    "symbolic translation validation of every output + fusion legality",
)
def check_equivalence(
    report: AnalysisReport,
    program: CircuitProgram,
    tape: CompiledTape,
    ops: Sequence[TapeOp],
    *,
    location: str,
) -> None:
    n, t = tape.n, tape.t
    try:
        circuit_outputs = _circuit_terms(program, t, n)
    except (KeyError, ValueError) as exc:
        report.add(
            "tape-equivalence",
            "circuit-malformed",
            Severity.ERROR,
            f"cannot build symbolic circuit terms: {exc}",
            location=location,
        )
        report.mark_ran("tape-equivalence")
        return

    # Symbolically execute the tape over the arena.  Buffer contents are
    # terms in the same domain: constants and loads keyed by centred
    # content, fused ops unfolded into the shapes the circuit side builds.
    buffers: Dict[int, object] = {
        index: ("plain", tape.consts[index].tobytes())
        for index in range(len(tape.consts))
    }
    for load in tape.loads:
        buffers[load.buffer] = (
            "load",
            tuple(load.var_columns),
            load.template.tobytes(),
        )

    fused_inner: List[Tuple[int, object]] = []
    for index, op in enumerate(ops):
        kind = op.kind
        if kind == "reduce":
            continue  # congruence-preserving: identity in the term domain
        a = buffers.get(op.a)
        b = buffers.get(op.b)
        c = buffers.get(op.c)
        if kind == "neg":
            term: object = ("neg", a)
        elif kind == "rot":
            term = ("rot", a, op.step % n)
        elif kind in ("add", "sub", "mul"):
            term = _binary(kind, a, b)
        elif kind == "rot_add":
            rotated = ("rot", a, op.step % n)
            fused_inner.append((index, rotated))
            term = _binary("add", rotated, b)
        elif kind == "rot_mul":
            rotated = ("rot", a, op.step % n)
            fused_inner.append((index, rotated))
            term = _binary("mul", rotated, b)
        elif kind == "rot_mul_add":
            rotated = ("rot", a, op.step % n)
            product = _binary("mul", rotated, b)
            fused_inner.append((index, rotated))
            fused_inner.append((index, product))
            term = _binary("add", product, c)
        elif kind == "mul_add":
            product = _binary("mul", a, b)
            fused_inner.append((index, product))
            term = _binary("add", product, c)
        elif kind == "mul_sub_l":
            product = _binary("mul", a, b)
            fused_inner.append((index, product))
            term = ("sub", product, c)
        elif kind == "mul_sub_r":
            product = _binary("mul", a, b)
            fused_inner.append((index, product))
            term = ("sub", c, product)
        else:
            continue  # unknown kinds are reported by tape-arena
        buffers[op.dst] = term

    tape_outputs = {
        output.name: buffers.get(output.buffer) for output in tape.outputs
    }
    for name, expected in circuit_outputs.items():
        if name not in tape_outputs:
            continue  # reported by tape-outputs
        if tape_outputs[name] != expected:
            report.add(
                "tape-equivalence",
                "output-mismatch",
                Severity.ERROR,
                f"output {name!r} computes a different value than the "
                "circuit (symbolic terms diverge)",
                location=location,
            )

    # Fusion legality: the inner term a fused op consumed (the product, and
    # the rotation for rot_* forms) must be single-use in the live part of
    # the original program — the optimizer's own precondition.  A fused
    # multi-use producer silently drops its other consumers.
    use_counts = _live_use_counts(circuit_outputs)
    for index, inner in fused_inner:
        uses = use_counts.get(inner, 0)
        if uses > 1:
            report.add(
                "tape-equivalence",
                "illegal-fusion",
                Severity.ERROR,
                f"fused op consumed a {inner[0]} term the circuit uses "
                f"{uses} times; fusing a multi-use producer drops its "
                "other consumers",
                location=f"{location} op {index}",
            )
    report.mark_ran("tape-equivalence")


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------
def verify_plan_ops(
    program: CircuitProgram,
    tape: CompiledTape,
    ops: Sequence[TapeOp],
    *,
    bucket: int,
    location: Optional[str] = None,
) -> AnalysisReport:
    """Verify one explicit op schedule (used by the mutation harness)."""
    where = location or f"tape:{program.name} plan[bucket={bucket}]"
    report = AnalysisReport()
    check_arena(report, program, tape, ops, location=where)
    check_bounds(report, program, tape, ops, location=where, bucket=bucket)
    check_equivalence(report, program, tape, ops, location=where)
    return report


def verify_tape(
    program: CircuitProgram,
    tape: CompiledTape,
    *,
    input_bounds: Sequence[int] = DEFAULT_BOUNDS,
    location: Optional[str] = None,
) -> AnalysisReport:
    """Statically verify ``tape`` against the circuit it was compiled from.

    Output coverage and translation validation run once over the raw tape;
    arena safety and the interval analysis run per reduction plan — one per
    bucketed ``input_bounds`` entry — since reduce placement depends on the
    input-magnitude bucket.
    """
    where = location or f"tape:{program.name}"
    report = AnalysisReport()
    check_outputs(report, program, tape, tape.ops, location=where)
    check_equivalence(report, program, tape, tape.ops, location=where)
    seen_buckets: Set[int] = set()
    for bound in input_bounds:
        plan = tape.plan_for(bound)
        if plan.bucket in seen_buckets:
            continue
        seen_buckets.add(plan.bucket)
        plan_where = f"{where} plan[bucket={plan.bucket}]"
        check_arena(report, program, tape, plan.ops, location=plan_where)
        check_bounds(
            report, program, tape, plan.ops,
            location=plan_where, bucket=plan.bucket,
        )
    return report
