"""AST lint enforcing the project's concurrency and determinism rules.

The serving stack shares mutable state across client threads and the server
thread; the compilation stack promises deterministic, seedable behaviour.
Both promises are conventions — this lint makes them checkable:

``lint-locks`` (lock discipline, rule ``guarded-by``)
    Attributes assigned in ``__init__`` with a trailing
    ``# guarded-by: <lock>`` comment are *guarded*: every other access of
    ``self.<attr>`` inside the class must sit lexically inside a
    ``with self.<lock>:`` block.  A ``threading.Condition(self._lock)``
    assigned to an attribute makes that attribute an *alias* — holding the
    condition holds the lock.  A method that is only ever called with the
    lock already held declares it with a ``# holds: <lock>`` comment on its
    ``def`` line.

``lint-determinism`` (rules ``wall-clock`` / ``unseeded-random``)
    ``time.time()`` and module-level ``random.*`` calls are banned outside
    the serving layers (``server/``, ``service/``, ``obs/`` — where wall
    time and jitter are the point): compilation, tape specialization,
    studies and workload sampling must be reproducible from a seed.
    Explicitly seeded generators (``random.Random(seed)``) are fine.

``lint-hygiene`` (rules ``bare-except`` / ``mutable-default``)
    No bare ``except:`` (swallows ``KeyboardInterrupt``/``SystemExit``),
    no mutable default arguments.

Any finding can be waived at the line with ``# lint: allow(<rule>)``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis import AnalysisReport, Severity, register_checker

__all__ = ["lint_source", "lint_paths", "default_target"]

#: Top-level package directories where wall-clock time and jitter are the
#: point (schedulers, latency metrics, live consoles) — the determinism
#: rules do not apply there.
_WALL_CLOCK_DIRS = frozenset({"server", "service", "obs"})

#: Module-level ``random.<fn>`` calls that draw from the shared, unseeded
#: global generator.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "betavariate",
        "expovariate",
        "seed",
    }
)


def default_target() -> Path:
    """The directory ``repro lint`` checks by default: the package itself."""
    return Path(__file__).resolve().parents[1]


def _waived(line: str, rule: str) -> bool:
    return f"# lint: allow({rule})" in line


def _self_attr(node: ast.expr) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


# ---------------------------------------------------------------------------
# lint-locks
# ---------------------------------------------------------------------------
class _ClassLockInfo:
    """Lock annotations harvested from one class' ``__init__``."""

    def __init__(self) -> None:
        #: guarded attribute -> lock attribute names that protect it
        self.guarded: Dict[str, Set[str]] = {}
        #: condition attribute -> underlying lock attribute it wraps
        self.aliases: Dict[str, str] = {}

    def held_after(self, held: Set[str]) -> Set[str]:
        """Close ``held`` over condition aliases."""
        closed = set(held)
        for name in held:
            if name in self.aliases:
                closed.add(self.aliases[name])
        return closed


def _harvest_init(init: ast.FunctionDef, lines: Sequence[str]) -> _ClassLockInfo:
    info = _ClassLockInfo()
    for node in ast.walk(init):
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        attrs = [a for a in (_self_attr(t) for t in targets) if a]
        if not attrs:
            continue
        line = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
        marker = "# guarded-by:"
        if marker in line:
            lock_names = {
                name.strip()
                for name in line.split(marker, 1)[1].split(",")
                if name.strip()
            }
            for attr in attrs:
                info.guarded.setdefault(attr, set()).update(lock_names)
        # threading.Condition(self._lock) assigned to self.<attr> makes
        # <attr> an alias: holding the condition holds the lock.
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "Condition"
            and value.args
        ):
            wrapped = _self_attr(value.args[0])
            if wrapped:
                for attr in attrs:
                    info.aliases[attr] = wrapped
    return info


def _declared_holds(def_line: str) -> Set[str]:
    marker = "# holds:"
    if marker not in def_line:
        return set()
    return {
        name.strip()
        for name in def_line.split(marker, 1)[1].split(",")
        if name.strip()
    }


def _check_method_locks(
    method: ast.FunctionDef,
    info: _ClassLockInfo,
    lines: Sequence[str],
    path: str,
    report: AnalysisReport,
) -> None:
    held0 = info.held_after(_declared_holds(lines[method.lineno - 1]))

    def scan(node: ast.AST, held: Set[str]) -> None:
        if isinstance(node, ast.With):
            acquired = set(held)
            for item in node.items:
                scan(item.context_expr, held)
                attr = _self_attr(item.context_expr)
                if attr:
                    acquired.add(attr)
            acquired = info.held_after(acquired)
            for stmt in node.body:
                scan(stmt, acquired)
            return
        attr = _self_attr(node) if isinstance(node, ast.Attribute) else None
        if attr and attr in info.guarded:
            if not info.guarded[attr] & held:
                line = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
                if not _waived(line, "guarded-by"):
                    locks = ", ".join(sorted(info.guarded[attr]))
                    report.add(
                        "lint-locks",
                        "guarded-by",
                        Severity.ERROR,
                        f"self.{attr} is guarded by {locks} but accessed "
                        "outside any `with self.<lock>:` block",
                        location=f"{path}:{node.lineno}",
                    )
        for child in ast.iter_child_nodes(node):
            scan(child, held)

    for stmt in method.body:
        scan(stmt, held0)


def _check_class_locks(
    klass: ast.ClassDef,
    lines: Sequence[str],
    path: str,
    report: AnalysisReport,
) -> None:
    init = next(
        (
            node
            for node in klass.body
            if isinstance(node, ast.FunctionDef) and node.name == "__init__"
        ),
        None,
    )
    if init is None:
        return
    info = _harvest_init(init, lines)
    if not info.guarded:
        return
    for node in klass.body:
        if isinstance(node, ast.FunctionDef) and node.name != "__init__":
            _check_method_locks(node, info, lines, path, report)


@register_checker(
    "lint-locks",
    "lint",
    "guarded-by lock discipline on shared mutable attributes",
)
def check_locks(
    tree: ast.Module, lines: Sequence[str], path: str, report: AnalysisReport
) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            _check_class_locks(node, lines, path, report)
    report.mark_ran("lint-locks")


# ---------------------------------------------------------------------------
# lint-determinism
# ---------------------------------------------------------------------------
@register_checker(
    "lint-determinism",
    "lint",
    "no wall clock or unseeded global RNG in deterministic paths",
)
def check_determinism(
    tree: ast.Module, lines: Sequence[str], path: str, report: AnalysisReport
) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name)
        ):
            continue
        module, name = func.value.id, func.attr
        rule = None
        if module == "time" and name in ("time", "time_ns"):
            rule = "wall-clock"
            message = (
                f"time.{name}() in a deterministic path; use a monotonic "
                "or injected clock, or move timing into the serving layer"
            )
        elif module == "random" and name in _GLOBAL_RANDOM_FNS:
            rule = "unseeded-random"
            message = (
                f"random.{name}() draws from the global unseeded generator; "
                "use an explicit random.Random(seed)"
            )
        if rule is None:
            continue
        line = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
        if _waived(line, rule):
            continue
        report.add(
            "lint-determinism",
            rule,
            Severity.ERROR,
            message,
            location=f"{path}:{node.lineno}",
        )
    report.mark_ran("lint-determinism")


# ---------------------------------------------------------------------------
# lint-hygiene
# ---------------------------------------------------------------------------
@register_checker(
    "lint-hygiene",
    "lint",
    "no bare except clauses or mutable default arguments",
)
def check_hygiene(
    tree: ast.Module, lines: Sequence[str], path: str, report: AnalysisReport
) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            line = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
            if not _waived(line, "bare-except"):
                report.add(
                    "lint-hygiene",
                    "bare-except",
                    Severity.ERROR,
                    "bare `except:` also swallows KeyboardInterrupt and "
                    "SystemExit; catch Exception or something narrower",
                    location=f"{path}:{node.lineno}",
                )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                    line = (
                        lines[default.lineno - 1]
                        if default.lineno <= len(lines)
                        else ""
                    )
                    if _waived(line, "mutable-default"):
                        continue
                    report.add(
                        "lint-hygiene",
                        "mutable-default",
                        Severity.ERROR,
                        f"mutable default argument in {node.name}(); the "
                        "object is shared across calls — default to None",
                        location=f"{path}:{default.lineno}",
                    )
    report.mark_ran("lint-hygiene")


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------
def lint_source(
    source: str,
    path: str,
    *,
    report: Optional[AnalysisReport] = None,
    wall_clock_ok: bool = False,
) -> AnalysisReport:
    """Lint one module's source text."""
    report = report if report is not None else AnalysisReport()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.add(
            "lint-hygiene",
            "syntax-error",
            Severity.ERROR,
            f"cannot parse: {exc.msg}",
            location=f"{path}:{exc.lineno or 0}",
        )
        return report
    lines = source.splitlines()
    check_locks(tree, lines, path, report)
    if not wall_clock_ok:
        check_determinism(tree, lines, path, report)
    check_hygiene(tree, lines, path, report)
    return report


def _is_wall_clock_ok(file: Path, root: Path) -> bool:
    try:
        parts = file.resolve().relative_to(root.resolve()).parts
    except ValueError:
        return False
    return bool(parts) and parts[0] in _WALL_CLOCK_DIRS


def lint_paths(
    paths: Optional[Sequence[Path]] = None,
    *,
    root: Optional[Path] = None,
) -> Tuple[AnalysisReport, int]:
    """Lint ``paths`` (files or directories; default: the repro package).

    Returns ``(report, files_checked)``.  Files under the serving layers
    (:data:`_WALL_CLOCK_DIRS` relative to ``root``) skip the determinism
    rules; every other rule applies everywhere.
    """
    root = root or default_target()
    targets = [Path(p) for p in paths] if paths else [root]
    files: List[Path] = []
    for target in targets:
        if target.is_dir():
            files.extend(sorted(target.rglob("*.py")))
        else:
            files.append(target)
    report = AnalysisReport()
    for file in files:
        report = lint_source(
            file.read_text(encoding="utf-8"),
            str(file),
            report=report,
            wall_clock_ok=_is_wall_clock_ok(file, root),
        )
    return report, len(files)
