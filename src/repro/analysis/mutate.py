"""Seeded mutation harness: the tape verifier's own test oracle.

A verifier that has only ever seen correct tapes proves nothing about its
ability to catch miscompiles.  This module injects the defect classes the
tape optimizer could realistically produce — each one a bug an optimizer
pass is one missing condition away from — and asserts the verifier reports
them:

``swap-operands``
    Swap ``a``/``b`` on a non-commutative op (``sub``, ``mul_sub_l``,
    ``mul_sub_r``): the canonicalization bug where a rewrite forgets that
    subtraction is ordered.

``drop-reduction``
    Delete one ``reduce`` from a scheduled plan: the lazy-reduction
    scheduler under-counting magnitude growth.

``extend-lifetime``
    Retarget an op's destination onto an arena slot that is still live
    (read again later from an earlier def): the register allocator freeing
    a slot one use too early and re-issuing it.

``skip-fusion-check``
    Fuse a multiply into its consumer although the product has *other*
    consumers, deleting the standalone multiply: the fusion pass with its
    single-use legality check skipped.

All randomness is a ``random.Random(seed)``; the same seed replays the same
mutants.  :func:`run_mutation_harness` verifies the pristine schedule is
clean first, then requires every applied mutant to produce at least one
ERROR finding.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis import AnalysisReport
from repro.analysis.tape_check import verify_plan_ops
from repro.backends.tape import CompiledTape, TapeOp
from repro.compiler.circuit import CircuitProgram

__all__ = [
    "DEFECT_CLASSES",
    "Mutation",
    "MutationOutcome",
    "HarnessResult",
    "enumerate_mutations",
    "verify_mutation",
    "run_mutation_harness",
]

DEFECT_CLASSES = (
    "swap-operands",
    "drop-reduction",
    "extend-lifetime",
    "skip-fusion-check",
)

#: Input bound whose plan tape-level mutations are applied to (smallest
#: bucket: the pristine schedule carries few or no reduces, so the bounds
#: checker stays quiet about the mutation-unrelated parts).
_SMALL_BOUND = 1
#: Input bound whose plan ``drop-reduction`` mutates (largest bucket: this
#: is where the scheduler actually places reduces).
_LARGE_BOUND = 1 << 62


@dataclass(frozen=True)
class Mutation:
    """One injected defect: a doctored op schedule for one bucket."""

    kind: str
    description: str
    ops: Tuple[TapeOp, ...]
    bucket: int


@dataclass(frozen=True)
class MutationOutcome:
    mutation: Mutation
    detected: bool
    rules: Tuple[str, ...]


@dataclass
class HarnessResult:
    """Per-class detection outcomes across all applied mutants."""

    outcomes: Dict[str, List[MutationOutcome]] = field(default_factory=dict)

    def detection_rate(self, kind: str) -> Optional[float]:
        outcomes = self.outcomes.get(kind)
        if not outcomes:
            return None
        return sum(1 for o in outcomes if o.detected) / len(outcomes)

    @property
    def all_detected(self) -> bool:
        """True when every applied mutant of every class was caught."""
        return all(
            outcome.detected
            for outcomes in self.outcomes.values()
            for outcome in outcomes
        )

    @property
    def classes_exercised(self) -> List[str]:
        return sorted(k for k, v in self.outcomes.items() if v)

    def summary_lines(self) -> List[str]:
        lines = []
        for kind in DEFECT_CLASSES:
            outcomes = self.outcomes.get(kind, [])
            if not outcomes:
                lines.append(f"{kind}: no applicable site")
                continue
            caught = sum(1 for o in outcomes if o.detected)
            rules: Set[str] = set()
            for o in outcomes:
                rules.update(o.rules)
            lines.append(
                f"{kind}: {caught}/{len(outcomes)} detected "
                f"via {', '.join(sorted(rules)) or '-'}"
            )
        return lines


def _buffer_live_after(ops: Sequence[TapeOp], index: int, buffer: int) -> bool:
    """Is ``buffer``'s current value still read after position ``index``,
    before (and unless) something redefines it?"""
    from repro.analysis.tape_check import _reads

    for op in ops[index + 1 :]:
        if buffer in _reads(op):
            return True
        if op.dst == buffer:
            return False
    return False


def enumerate_mutations(
    program: CircuitProgram,
    tape: CompiledTape,
    kind: str,
    *,
    ops: Sequence[TapeOp],
    bucket: int,
) -> List[Mutation]:
    """All sites in ``ops`` where defect class ``kind`` can be injected."""
    n_consts = len(tape.consts)
    mutations: List[Mutation] = []

    if kind == "swap-operands":
        for index, op in enumerate(ops):
            if op.kind in ("sub", "mul_sub_l", "mul_sub_r") and op.a != op.b:
                mutated = list(ops)
                mutated[index] = dataclasses.replace(op, a=op.b, b=op.a)
                mutations.append(
                    Mutation(
                        kind,
                        f"swap a/b of op {index} ({op.kind})",
                        tuple(mutated),
                        bucket,
                    )
                )

    elif kind == "drop-reduction":
        for index, op in enumerate(ops):
            if op.kind == "reduce":
                mutated = list(ops)
                del mutated[index]
                mutations.append(
                    Mutation(
                        kind,
                        f"drop reduce of r{op.dst - n_consts} at {index}",
                        tuple(mutated),
                        bucket,
                    )
                )

    elif kind == "extend-lifetime":
        # Clobber a still-live slot: as if the allocator had freed the
        # victim's slot too early and re-issued it as this op's destination.
        for index, op in enumerate(ops):
            if op.kind == "reduce":
                continue
            for victim in range(n_consts, n_consts + tape.slot_count):
                if victim == op.dst:
                    continue
                if op.kind in ("mul_add", "mul_sub_l", "mul_sub_r", "rot_mul_add") and victim == op.c:
                    continue  # would trip the alias rule, not the lifetime bug
                if _buffer_live_after(ops, index, victim):
                    mutated = list(ops)
                    mutated[index] = dataclasses.replace(op, dst=victim)
                    mutations.append(
                        Mutation(
                            kind,
                            f"op {index} ({op.kind}) clobbers live "
                            f"r{victim - n_consts}",
                            tuple(mutated),
                            bucket,
                        )
                    )
                    break  # one victim per site is enough

    elif kind == "skip-fusion-check":
        # Fuse mul -> add although the product has other consumers, and
        # delete the standalone mul — exactly what the fusion pass would
        # emit with its single-use check skipped.
        from repro.analysis.tape_check import _reads

        for mul_index, mul in enumerate(ops):
            if mul.kind != "mul":
                continue
            consumers = [
                (index, op)
                for index, op in enumerate(ops)
                if index > mul_index and mul.dst in _reads(op)
            ]
            if len(consumers) < 2:
                continue
            add_index, add = next(
                (
                    (index, op)
                    for index, op in consumers
                    if op.kind == "add"
                ),
                (None, None),
            )
            if add is None:
                continue
            other = add.b if add.a == mul.dst else add.a
            fused = TapeOp(
                kind="mul_add", dst=add.dst, a=mul.a, b=mul.b, c=other
            )
            mutated = list(ops)
            mutated[add_index] = fused
            del mutated[mul_index]
            mutations.append(
                Mutation(
                    kind,
                    f"fuse multi-use mul at {mul_index} into add at "
                    f"{add_index}",
                    tuple(mutated),
                    bucket,
                )
            )

    else:
        raise ValueError(f"unknown defect class {kind!r}")
    return mutations


def verify_mutation(
    program: CircuitProgram, tape: CompiledTape, mutation: Mutation
) -> AnalysisReport:
    """Run the tape verifier over one mutant schedule."""
    return verify_plan_ops(
        program,
        tape,
        mutation.ops,
        bucket=mutation.bucket,
        location=f"mutant[{mutation.kind}]:{program.name}",
    )


def run_mutation_harness(
    cases: Sequence[Tuple[CircuitProgram, CompiledTape]],
    *,
    seed: int = 0,
    per_class: int = 3,
    classes: Sequence[str] = DEFECT_CLASSES,
) -> HarnessResult:
    """Inject up to ``per_class`` seeded mutants of every class per case.

    The pristine schedule of every case must verify clean first — a dirty
    baseline would make "detected" meaningless — and every applied mutant
    must then be detected.  Detection outcomes land in the result; the
    caller asserts :attr:`HarnessResult.all_detected`.
    """
    rng = random.Random(seed)
    result = HarnessResult(outcomes={kind: [] for kind in classes})
    for program, tape in cases:
        for bound in (_SMALL_BOUND, _LARGE_BOUND):
            plan = tape.plan_for(bound)
            baseline = verify_plan_ops(
                program, tape, plan.ops, bucket=plan.bucket
            )
            if not baseline.ok:
                raise AssertionError(
                    f"pristine tape of {program.name!r} is not clean: "
                    + "; ".join(f.render() for f in baseline.findings[:3])
                )
        small = tape.plan_for(_SMALL_BOUND)
        large = tape.plan_for(_LARGE_BOUND)
        for kind in classes:
            plan = large if kind == "drop-reduction" else small
            candidates = enumerate_mutations(
                program, tape, kind, ops=plan.ops, bucket=plan.bucket
            )
            if not candidates:
                continue
            picked = rng.sample(
                candidates, min(per_class, len(candidates))
            )
            for mutation in picked:
                report = verify_mutation(program, tape, mutation)
                result.outcomes[kind].append(
                    MutationOutcome(
                        mutation=mutation,
                        detected=not report.ok,
                        rules=tuple(
                            sorted({f.rule for f in report.findings})
                        ),
                    )
                )
    return result
