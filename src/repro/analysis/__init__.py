"""Static analysis of the compilation stack: checkers, findings, reports.

The repo rewrites circuits aggressively — TRS rewrites and pipeline stages on
the expression side, then :mod:`repro.backends.tapeopt`'s CSE/fusion/register
arena passes on the backend side — and runs the result inside a multithreaded
server.  This package is the correctness tooling that *checks* those
transformations statically instead of relying on end-to-end output parity
alone:

* :mod:`repro.analysis.tape_check` — verifies every optimized
  :class:`~repro.backends.tape.CompiledTape` against its source circuit:
  register-arena safety (def-before-use, no-alias constraints, no writes to
  the constant pool), output coverage, reduction-schedule soundness via an
  independent interval analysis, fusion legality and full symbolic
  translation validation of every output.
* :mod:`repro.analysis.pipeline_check` — structural invariants on the
  expression/circuit after every :class:`~repro.compiler.framework.PassPipeline`
  stage, recorded per stage so a failing *stage* is named.
* :mod:`repro.analysis.lint` — an AST lint over ``src/repro`` enforcing the
  project's concurrency and determinism rules (``# guarded-by:`` lock
  discipline, no wall clock / unseeded RNG in deterministic paths, no bare
  ``except:`` or mutable default arguments).
* :mod:`repro.analysis.mutate` — a seeded mutation harness injecting known
  defect classes into compiled tapes and asserting the verifier catches
  them: the verifier's own test oracle.

Everything reports through one machine-readable model: checkers emit
:class:`Finding` objects (severity, rule id, location, details) collected
into an :class:`AnalysisReport`; ``repro analyze`` / ``repro lint`` render
the same reports on the CLI and exit non-zero on any ERROR.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "Severity",
    "Finding",
    "AnalysisReport",
    "CheckerInfo",
    "CheckerRegistry",
    "register_checker",
    "available_checkers",
    "checker_info",
]


class Severity(enum.Enum):
    """How bad a finding is; ERROR findings gate CI and CLI exit codes."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"info": 0, "warning": 1, "error": 2}[self.value]


@dataclass(frozen=True)
class Finding:
    """One issue reported by a checker.

    ``checker`` names the analyzer family (``tape-arena``, ``lint``),
    ``rule`` the specific invariant that failed (``read-after-free``,
    ``guarded-by``), and ``location`` points at the offending site — a tape
    op index, a pipeline stage, or a ``path:line``.
    """

    checker: str
    rule: str
    severity: Severity
    message: str
    location: str = ""
    details: Tuple[Tuple[str, object], ...] = ()

    def as_dict(self) -> Dict[str, object]:
        return {
            "checker": self.checker,
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "location": self.location,
            "details": dict(self.details),
        }

    def render(self) -> str:
        prefix = f"{self.location}: " if self.location else ""
        return (
            f"[{self.severity.value.upper()}] {prefix}{self.message} "
            f"({self.checker}/{self.rule})"
        )


@dataclass
class AnalysisReport:
    """The machine-readable outcome of one analysis run."""

    findings: List[Finding] = field(default_factory=list)
    #: Names of the checkers that actually ran (empty findings then mean
    #: "checked and clean", not "never checked").
    checkers_run: List[str] = field(default_factory=list)

    def add(
        self,
        checker: str,
        rule: str,
        severity: Severity,
        message: str,
        *,
        location: str = "",
        **details: object,
    ) -> Finding:
        finding = Finding(
            checker=checker,
            rule=rule,
            severity=severity,
            message=message,
            location=location,
            details=tuple(sorted(details.items())),
        )
        self.findings.append(finding)
        return finding

    def mark_ran(self, checker: str) -> None:
        if checker not in self.checkers_run:
            self.checkers_run.append(checker)

    def merge(self, other: "AnalysisReport") -> "AnalysisReport":
        self.findings.extend(other.findings)
        for checker in other.checkers_run:
            self.mark_ran(checker)
        return self

    # -- queries -------------------------------------------------------------
    def by_severity(self, severity: Severity) -> List[Finding]:
        return [f for f in self.findings if f.severity is severity]

    @property
    def errors(self) -> int:
        return len(self.by_severity(Severity.ERROR))

    @property
    def warnings(self) -> int:
        return len(self.by_severity(Severity.WARNING))

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity finding was reported."""
        return self.errors == 0

    def counts(self) -> Dict[str, int]:
        counts = {severity.value: 0 for severity in Severity}
        for finding in self.findings:
            counts[finding.severity.value] += 1
        return counts

    def as_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "counts": self.counts(),
            "checkers_run": list(self.checkers_run),
            "findings": [finding.as_dict() for finding in self.findings],
        }

    def summary_lines(self) -> List[str]:
        """Human-readable rendering: worst findings first."""
        lines = [
            finding.render()
            for finding in sorted(
                self.findings, key=lambda f: -f.severity.rank
            )
        ]
        counts = self.counts()
        lines.append(
            "{status}: {errors} error(s), {warnings} warning(s), "
            "{info} info across {n} checker(s)".format(
                status="CLEAN" if self.ok else "FAIL",
                errors=counts["error"],
                warnings=counts["warning"],
                info=counts["info"],
                n=len(self.checkers_run),
            )
        )
        return lines


@dataclass(frozen=True)
class CheckerInfo:
    """Registry metadata of one checker."""

    name: str
    kind: str  # "tape" | "pipeline" | "lint"
    description: str
    fn: Callable


class CheckerRegistry:
    """Named registry of the analyzers, in the repo's decorator idiom."""

    def __init__(self) -> None:
        self._checkers: Dict[str, CheckerInfo] = {}

    def register(self, name: str, kind: str, description: str = "") -> Callable:
        if kind not in ("tape", "pipeline", "lint"):
            raise ValueError(f"unknown checker kind {kind!r}")

        def decorator(fn: Callable) -> Callable:
            if name in self._checkers:
                raise ValueError(f"checker {name!r} already registered")
            self._checkers[name] = CheckerInfo(
                name=name, kind=kind, description=description, fn=fn
            )
            return fn

        return decorator

    def names(self, kind: Optional[str] = None) -> List[str]:
        return sorted(
            name
            for name, info in self._checkers.items()
            if kind is None or info.kind == kind
        )

    def get(self, name: str) -> CheckerInfo:
        info = self._checkers.get(name)
        if info is None:
            raise KeyError(f"no checker named {name!r}")
        return info

    def of_kind(self, kind: str) -> List[CheckerInfo]:
        return [self._checkers[name] for name in self.names(kind)]


#: The process-wide registry all built-in checkers register into.
REGISTRY = CheckerRegistry()


def register_checker(name: str, kind: str, description: str = "") -> Callable:
    """Register a checker under ``name`` (decorator)."""
    return REGISTRY.register(name, kind, description)


def available_checkers(kind: Optional[str] = None) -> List[str]:
    """Names of the registered checkers, optionally filtered by kind."""
    _load_builtins()
    return REGISTRY.names(kind)


def checker_info(name: str) -> CheckerInfo:
    """Registry metadata for one checker."""
    _load_builtins()
    return REGISTRY.get(name)


def _load_builtins() -> None:
    """Import the built-in checker modules so they self-register."""
    from repro.analysis import lint, pipeline_check, tape_check  # noqa: F401
