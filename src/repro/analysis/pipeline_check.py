"""Structural validation between compilation pipeline stages.

Every :class:`~repro.compiler.framework.PassPipeline` stage rewrites either
the expression or the circuit; this module provides the translation-
validation hooks that :meth:`PassPipeline.compile(..., verify=True)
<repro.compiler.framework.PassPipeline.compile>` runs after *each* stage, so
a broken invariant names the stage that broke it instead of failing the
whole pipeline opaquely.

``pipeline-expr``
    Invariants on the expression DAG: well-typed nodes, per-operator arity,
    acyclicity (the IR is immutable, but a pass that smuggles shared state
    through ``object.__setattr__`` can still tie a knot), and sane rotation
    steps.  Slot widths deliberately have *no* expression-level rule: mixed
    widths in element-wise ops zero-pad, and ``Vec`` elements may be
    vector-valued (the gather lowering masks out slot 0), so width
    consistency is only checkable after lowering — the circuit checker
    validates packing layouts and output lengths instead.  Rotation steps
    are likewise *not* required to lie in ``[0, n)`` here —
    circuits are parameter-independent and lowering legitimately emits
    negative steps; normalization into ``[1, n)`` happens at backend
    compile time and is enforced by the ``tape-arena`` checker.

``pipeline-circuit``
    Invariants on the lowered :class:`~repro.compiler.circuit.CircuitProgram`:
    dense SSA numbering, operands defined before use (acyclicity of the
    instruction DAG), per-opcode operand arity, well-formed packing layouts
    and plaintext loads, and output coverage (at least one output, every
    declared output register defined, no duplicate output names).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.analysis import AnalysisReport, Severity, register_checker
from repro.compiler.circuit import CircuitProgram, Opcode
from repro.ir.nodes import Expr, Rotate

__all__ = ["check_expression", "check_circuit", "validate_state"]

#: Rotation steps beyond this are a sure sign of arithmetic gone wrong
#: (real steps are bounded by the vector width of the kernel).
_MAX_ROTATION_STEP = 1 << 31

#: Expected child count per operator mnemonic (None = variadic, checked
#: separately).
_EXPR_ARITY: Dict[str, Optional[int]] = {
    "var": 0,
    "const": 0,
    "+": 2,
    "-": 2,
    "*": 2,
    "neg": 1,
    "<<": 1,
    "Vec": None,
    "VecAdd": 2,
    "VecSub": 2,
    "VecMul": 2,
    "VecNeg": 1,
}

_BINARY_OPCODES = {
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.ADD_PLAIN,
    Opcode.SUB_PLAIN,
    Opcode.MUL_PLAIN,
}
_UNARY_OPCODES = {Opcode.NEGATE, Opcode.ROTATE, Opcode.OUTPUT}


# ---------------------------------------------------------------------------
# pipeline-expr
# ---------------------------------------------------------------------------
@register_checker(
    "pipeline-expr",
    "pipeline",
    "expression invariants: arity, acyclicity, Vec widths, rotation steps",
)
def check_expression(
    expr: Expr,
    *,
    location: str = "expr",
    report: Optional[AnalysisReport] = None,
) -> AnalysisReport:
    report = report if report is not None else AnalysisReport()

    # Iterative DFS with an explicit on-path set: validates each node once
    # (shared subexpressions are fine — it is a DAG) and catches true cycles.
    done: Set[int] = set()
    on_path: Set[int] = set()
    stack = [(expr, False)]
    while stack:
        node, expanded = stack.pop()
        key = id(node)
        if expanded:
            on_path.discard(key)
            done.add(key)
            continue
        if key in done:
            continue
        if key in on_path:
            report.add(
                "pipeline-expr",
                "cycle",
                Severity.ERROR,
                f"expression graph contains a cycle through {node.op!r}",
                location=location,
            )
            done.add(key)
            continue
        if not isinstance(node, Expr):
            report.add(
                "pipeline-expr",
                "bad-node",
                Severity.ERROR,
                f"non-Expr child of type {type(node).__name__} in the tree",
                location=location,
            )
            done.add(key)
            continue
        expected = _EXPR_ARITY.get(node.op)
        if node.op not in _EXPR_ARITY:
            report.add(
                "pipeline-expr",
                "unknown-op",
                Severity.ERROR,
                f"unknown operator {node.op!r}",
                location=location,
            )
        elif expected is not None and node.arity != expected:
            report.add(
                "pipeline-expr",
                "arity",
                Severity.ERROR,
                f"{node.op!r} has {node.arity} children (expected {expected})",
                location=location,
            )
        elif expected is None and node.arity == 0:
            report.add(
                "pipeline-expr",
                "arity",
                Severity.ERROR,
                f"{node.op!r} requires at least one child",
                location=location,
            )
        if isinstance(node, Rotate) and abs(node.step) >= _MAX_ROTATION_STEP:
            report.add(
                "pipeline-expr",
                "rotation-step-range",
                Severity.ERROR,
                f"rotation step {node.step} is implausibly large",
                location=location,
            )
        on_path.add(key)
        stack.append((node, True))
        for child in node.children:
            if isinstance(child, Expr):
                stack.append((child, False))
    report.mark_ran("pipeline-expr")
    return report


# ---------------------------------------------------------------------------
# pipeline-circuit
# ---------------------------------------------------------------------------
@register_checker(
    "pipeline-circuit",
    "pipeline",
    "circuit invariants: dense SSA, def-before-use, layouts, outputs",
)
def check_circuit(
    program: CircuitProgram,
    *,
    location: str = "circuit",
    report: Optional[AnalysisReport] = None,
) -> AnalysisReport:
    report = report if report is not None else AnalysisReport()

    for index, instruction in enumerate(program.instructions):
        where = f"{location} instr {index} ({instruction.opcode.value})"
        if instruction.result != index:
            report.add(
                "pipeline-circuit",
                "ssa-numbering",
                Severity.ERROR,
                f"result register {instruction.result} breaks dense SSA "
                f"numbering (expected {index})",
                location=where,
            )
        for operand in instruction.operands:
            if not 0 <= operand < index:
                report.add(
                    "pipeline-circuit",
                    "use-before-def",
                    Severity.ERROR,
                    f"operand r{operand} is not defined before this "
                    "instruction (SSA requires operands < result)",
                    location=where,
                )
        opcode = instruction.opcode
        if opcode in _BINARY_OPCODES and len(instruction.operands) != 2:
            report.add(
                "pipeline-circuit",
                "arity",
                Severity.ERROR,
                f"{opcode.value} has {len(instruction.operands)} operands "
                "(expected 2)",
                location=where,
            )
        elif opcode in _UNARY_OPCODES and len(instruction.operands) != 1:
            report.add(
                "pipeline-circuit",
                "arity",
                Severity.ERROR,
                f"{opcode.value} has {len(instruction.operands)} operands "
                "(expected 1)",
                location=where,
            )
        if opcode is Opcode.LOAD_INPUT and not instruction.layout:
            report.add(
                "pipeline-circuit",
                "empty-layout",
                Severity.ERROR,
                "load_input carries an empty packing layout",
                location=where,
            )
        if opcode is Opcode.LOAD_PLAIN and not instruction.values:
            report.add(
                "pipeline-circuit",
                "empty-plain",
                Severity.ERROR,
                "load_plain carries no constant values",
                location=where,
            )
        if (
            opcode is Opcode.ROTATE
            and abs(instruction.step) >= _MAX_ROTATION_STEP
        ):
            report.add(
                "pipeline-circuit",
                "rotation-step-range",
                Severity.ERROR,
                f"rotation step {instruction.step} is implausibly large",
                location=where,
            )

    if not program.outputs:
        report.add(
            "pipeline-circuit",
            "no-outputs",
            Severity.ERROR,
            "circuit declares no outputs",
            location=location,
        )
    seen_names: Set[str] = set()
    for register, name, length in program.outputs:
        if not 0 <= register < len(program.instructions):
            report.add(
                "pipeline-circuit",
                "orphan-output",
                Severity.ERROR,
                f"output {name!r} reads register r{register} that no "
                "instruction defines",
                location=location,
            )
        if name in seen_names:
            report.add(
                "pipeline-circuit",
                "duplicate-output",
                Severity.ERROR,
                f"output name {name!r} declared more than once",
                location=location,
            )
        seen_names.add(name)
        if length < 1:
            report.add(
                "pipeline-circuit",
                "bad-output-length",
                Severity.ERROR,
                f"output {name!r} declares non-positive length {length}",
                location=location,
            )
    report.mark_ran("pipeline-circuit")
    return report


# ---------------------------------------------------------------------------
# stage hook
# ---------------------------------------------------------------------------
def validate_state(state: object, *, stage_name: str = "") -> AnalysisReport:
    """Validate a :class:`~repro.compiler.framework.PipelineState` snapshot.

    Called by ``PassPipeline.compile(verify=True)`` after every stage; the
    returned report's findings carry ``<circuit>/<stage>`` locations so a
    broken invariant names the stage that introduced it.
    """
    name = getattr(state, "name", "circuit")
    where = f"{name}/{stage_name}" if stage_name else name
    report = AnalysisReport()
    expr = getattr(state, "expr", None)
    if expr is not None:
        check_expression(expr, location=f"{where} expr", report=report)
    circuit = getattr(state, "circuit", None)
    if circuit is not None:
        check_circuit(circuit, location=f"{where} circuit", report=report)
    return report
