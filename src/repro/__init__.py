"""repro -- a reproduction of "CHEHAB RL: Learning to Optimize Fully
Homomorphic Encryption Computations" (ASPLOS 2026).

The package is organised around the paper's system:

* :mod:`repro.ir` -- the CHEHAB expression IR, analyses and tokenizers.
* :mod:`repro.fhe` -- a BFV-style FHE simulator (batching, noise budget,
  latency model, rotation keys) standing in for Microsoft SEAL.
* :mod:`repro.core` -- the FHE-aware analytical cost model and configuration.
* :mod:`repro.trs` -- the term rewriting system (84 rules + END).
* :mod:`repro.compiler` -- the embedded DSL, classic passes, TRS-driven
  vectorizer, lowering to ciphertext instructions and code generation.
* :mod:`repro.nn` -- a numpy autograd engine with Transformer/GRU layers.
* :mod:`repro.rl` -- the MDP environment, hierarchical policy and PPO trainer.
* :mod:`repro.datagen` -- random and motif-based ("LLM-like") dataset
  generators with ICI deduplication.
* :mod:`repro.baselines` -- the Coyote-style vectorizer and greedy-TRS
  baselines.
* :mod:`repro.kernels` -- the Porcupine/Coyote/polynomial-tree benchmark
  kernels.
* :mod:`repro.experiments` -- harnesses regenerating every table and figure
  of the paper's evaluation.
* :mod:`repro.backends` -- pluggable execution backends: the SEAL-style
  reference interpreter, a batched vector VM executing many input sets per
  tape pass, and a no-crypto cost simulator, behind one registry.
* :mod:`repro.service` -- the parallel, cached compilation service (a
  content-addressed compilation cache plus cost-aware parallel batch
  compilation) and the batched execution service with timer-augmented
  scheduling.
* :mod:`repro.server` -- the job-orchestration server: a persistent
  priority job queue (JSONL store under a state directory), a batch
  coalescer grouping queued executions that share a circuit fingerprint
  into single backend batches, a two-level scheduled worker pool and a
  telemetry registry with JSON snapshots.
* :mod:`repro.workloads` -- the workload registry (the paper's kernel
  suites, tree ensembles and an IR-lowered NN layer as registered
  end-to-end scenarios with input samplers and expected-output oracles)
  plus the mixed-traffic load generator driving weighted, prioritised
  workload mixes through the server and the direct facade path.
* :mod:`repro.studies` -- the study engine: declarative ablation studies
  over registered system components (compiler, backend, coalescer, cache
  tiers, scheduler, admission control), executed resumably on per-run job
  servers and analysed into ranked importance scores with bootstrap
  confidence intervals.
* :mod:`repro.analysis` -- static verification: the tape verifier
  (register-arena safety, reduction-schedule bounds, symbolic circuit
  equivalence), per-stage pipeline validators, a codebase
  concurrency/determinism lint and the seeded mutation harness that
  proves the verifier catches injected optimizer defects.
* :mod:`repro.api` -- the unified facade: ``repro.compile(source,
  compiler="greedy")``, ``repro.execute(..., backend="vector-vm")``,
  ``repro.execute_batch(...)``, ``repro.submit(...)`` /
  ``repro.result(...)`` / ``repro.serve(...)``, ``repro.list_compilers()``,
  ``repro.list_backends()`` (also exposed as the ``python -m repro`` CLI).
"""

__version__ = "0.10.0"

#: Facade names re-exported lazily from :mod:`repro.api` so that
#: ``import repro`` stays cheap and circular imports (the cache stamps
#: ``repro.__version__`` into its keys) stay impossible.
_API_EXPORTS = (
    "compile",
    "compile_batch",
    "analyze",
    "lint",
    "execute",
    "execute_batch",
    "list_compilers",
    "describe_compiler",
    "list_backends",
    "describe_backend",
    "run_workload",
    "list_workloads",
    "run_study",
    "list_components",
    "sample_named_inputs",
    "derive_batch_seeds",
    "make_service",
    "to_expression",
    "RunOutcome",
    "BatchRunOutcome",
    "serve",
    "submit",
    "status",
    "result",
    "default_server",
    "shutdown_default_server",
)

__all__ = ["__version__", *_API_EXPORTS]


def __getattr__(name):
    if name in _API_EXPORTS:
        from repro import api

        return getattr(api, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_API_EXPORTS))
