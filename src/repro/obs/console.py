"""Snapshot math + frame renderers for ``repro top`` and ``repro metrics``.

``metrics.json`` snapshots carry absolute counters; turning them into a
live view needs two things this module provides:

* :func:`snapshot_delta` — the difference of two snapshots, keyed off the
  ``meta`` block :meth:`~repro.server.telemetry.MetricsRegistry.write_snapshot`
  stamps (monotonically increasing ``sequence``, wall + monotonic
  timestamps), so consumers compute *rates* instead of eyeballing absolute
  counts.  Same-process snapshot pairs use the monotonic clocks for the
  elapsed time; cross-process pairs fall back to wall time.
* :func:`render_top` — one ``repro top`` frame: queue depth, in-flight
  batch size, throughput rates, coalescing rate, SLO compliance and stage
  p50/p99 pulled from the persisted histograms via the same bucket
  interpolation the live server uses.

Only :mod:`repro.server.telemetry` (a dependency-free leaf module) is
imported — the console never touches the server object itself, so it can
watch a ``metrics.json`` written by any process.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Mapping, Optional, Tuple

__all__ = [
    "read_snapshot",
    "render_delta",
    "render_top",
    "snapshot_delta",
]


def read_snapshot(path: str) -> Optional[Dict[str, object]]:
    """Load one ``metrics.json``; None when missing or mid-replace garbage."""
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def _meta(snapshot: Mapping[str, object]) -> Dict[str, float]:
    meta = snapshot.get("meta")
    if not isinstance(meta, Mapping):
        meta = {}
    return {
        "sequence": float(meta.get("sequence", 0)),
        "wall_time": float(meta.get("wall_time", 0.0)),
        "monotonic_time": float(meta.get("monotonic_time", 0.0)),
    }


def _counters(snapshot: Mapping[str, object]) -> Dict[str, float]:
    raw = snapshot.get("counters")
    if not isinstance(raw, Mapping):
        return {}
    return {str(key): float(value) for key, value in raw.items()}


def snapshot_delta(
    old: Mapping[str, object], new: Mapping[str, object]
) -> Dict[str, object]:
    """Counter differences + elapsed time + per-second rates, old → new.

    Negative counter deltas (a restarted server re-created its registry
    from zero) are reported as the new absolute value with ``"reset": True``
    so a watcher never renders nonsense negative rates.
    """
    old_meta, new_meta = _meta(old), _meta(new)
    reset = new_meta["sequence"] < old_meta["sequence"]
    elapsed = 0.0
    if not reset:
        if old_meta["monotonic_time"] and new_meta["monotonic_time"]:
            elapsed = new_meta["monotonic_time"] - old_meta["monotonic_time"]
        elif old_meta["wall_time"] and new_meta["wall_time"]:
            elapsed = new_meta["wall_time"] - old_meta["wall_time"]
        elapsed = max(0.0, elapsed)
    old_counters, new_counters = _counters(old), _counters(new)
    deltas: Dict[str, float] = {}
    for name, value in new_counters.items():
        before = old_counters.get(name, 0.0)
        if reset or value < before:
            reset = True
            deltas[name] = value
        else:
            deltas[name] = value - before
    rates = {
        name: (delta / elapsed) for name, delta in deltas.items() if elapsed > 0
    }
    return {
        "sequence": (old_meta["sequence"], new_meta["sequence"]),
        "elapsed_s": elapsed,
        "reset": reset,
        "counters": deltas,
        "rates": rates,
        "gauges": dict(new.get("gauges") or {}),  # type: ignore[arg-type]
    }


def render_delta(delta: Mapping[str, object]) -> str:
    """The ``repro metrics --delta`` body: changed counters with rates."""
    sequence = delta.get("sequence", (0, 0))
    elapsed = float(delta.get("elapsed_s", 0.0))
    lines = [
        f"snapshots seq {int(sequence[0])} -> {int(sequence[1])}"  # type: ignore[index]
        + (f" over {elapsed:.3f}s" if elapsed > 0 else "")
        + (" (counter reset detected)" if delta.get("reset") else "")
    ]
    counters: Mapping[str, float] = delta.get("counters", {})  # type: ignore[assignment]
    rates: Mapping[str, float] = delta.get("rates", {})  # type: ignore[assignment]
    changed = {name: value for name, value in counters.items() if value}
    if not changed:
        lines.append("no counter changes")
        return "\n".join(lines)
    width = max(len(name) for name in changed)
    for name in sorted(changed):
        line = f"{name.ljust(width)}  +{changed[name]:g}"
        if name in rates:
            line += f"  ({rates[name]:.2f}/s)"
        lines.append(line)
    return "\n".join(lines)


def _histogram(snapshot: Mapping[str, object], name: str) -> Mapping[str, object]:
    histograms = snapshot.get("histograms")
    if isinstance(histograms, Mapping):
        payload = histograms.get(name)
        if isinstance(payload, Mapping):
            return payload
    return {}


def _rate(rates: Mapping[str, float], name: str) -> str:
    if name in rates:
        return f" ({rates[name]:+.1f}/s)"
    return ""


def render_top(
    snapshot: Mapping[str, object],
    prev: Optional[Mapping[str, object]] = None,
    *,
    now: Optional[float] = None,
    source: str = "",
) -> str:
    """One ``repro top`` frame over the newest snapshot (rates need ``prev``)."""
    # Imported here, not at module scope: repro.server.jobs imports repro.obs
    # for trace ids, so a module-level hop back into repro.server would be a
    # circular import.  telemetry is a leaf module; the function-local import
    # is resolved once and cached by sys.modules.
    from repro.server.telemetry import percentile_from_snapshot

    meta = _meta(snapshot)
    counters = _counters(snapshot)
    gauges: Mapping[str, object] = snapshot.get("gauges") or {}  # type: ignore[assignment]
    rates: Mapping[str, float] = {}
    if prev is not None:
        rates = snapshot_delta(prev, snapshot).get("rates", {})  # type: ignore[assignment]

    header = f"repro top — seq {int(meta['sequence'])}"
    if source:
        header += f" — {source}"
    if now is not None and meta["wall_time"]:
        header += f" — snapshot age {max(0.0, now - meta['wall_time']):.1f}s"
    lines = [header]

    lines.append(
        "queue_depth {depth:g}  running {running:g}  workers {workers:g}".format(
            depth=float(gauges.get("queue_depth", 0) or 0),
            running=float(gauges.get("jobs_running", 0) or 0),
            workers=float(gauges.get("workers", 0) or 0),
        )
    )
    submitted = counters.get("jobs_submitted", 0.0)
    completed = counters.get("jobs_completed", 0.0)
    lines.append(
        f"jobs: submitted {submitted:g}{_rate(rates, 'jobs_submitted')}  "
        f"completed {completed:g}{_rate(rates, 'jobs_completed')}  "
        f"failed {counters.get('jobs_failed', 0.0):g}  "
        f"shed {counters.get('jobs_shed', 0.0):g}  "
        f"retried {counters.get('jobs_retried', 0.0):g}"
    )
    execute_jobs = counters.get("execute_jobs", 0.0)
    coalesced_jobs = counters.get("coalesced_jobs", 0.0)
    coalesce_rate = (coalesced_jobs / execute_jobs * 100.0) if execute_jobs else 0.0
    lines.append(
        f"coalescing: {coalesced_jobs:g}/{execute_jobs:g} execute jobs "
        f"({coalesce_rate:.1f}%) in {counters.get('batches_coalesced', 0.0):g} "
        f"coalesced of {counters.get('batches_total', 0.0):g} batches"
    )
    violations = counters.get("slo_violations", 0.0)
    terminal = completed + counters.get("jobs_failed", 0.0)
    compliance = (
        (1.0 - violations / terminal) * 100.0 if terminal and violations <= terminal else 100.0
    )
    lines.append(
        f"SLO: {violations:g} violations"
        + (f" ({compliance:.1f}% compliant)" if terminal else "")
        + f"  store_skipped {counters.get('store_skipped_records', 0.0):g}"
    )

    rows: List[Tuple[str, Mapping[str, object]]] = []
    for label, name in (
        ("queue_wait", "job_wait_s"),
        ("run", "job_run_s"),
        ("tick", "tick_s"),
    ):
        payload = _histogram(snapshot, name)
        if payload:
            rows.append((label, payload))
    histograms = snapshot.get("histograms")
    if isinstance(histograms, Mapping):
        for name in sorted(histograms):
            if str(name).startswith("stage_") and str(name).endswith("_s"):
                payload = histograms[name]
                if isinstance(payload, Mapping) and payload.get("count"):
                    rows.append((str(name)[6:-2], payload))
    if rows:
        width = max(len(label) for label, _ in rows)
        lines.append("")
        lines.append(
            f"{'stage'.ljust(width)}  {'count':>7}  {'p50_ms':>9}  {'p99_ms':>9}"
        )
        for label, payload in rows:
            lines.append(
                f"{label.ljust(width)}  {int(payload.get('count', 0)):>7}  "
                f"{percentile_from_snapshot(payload, 0.5) * 1e3:>9.3f}  "
                f"{percentile_from_snapshot(payload, 0.99) * 1e3:>9.3f}"
            )
    return "\n".join(lines)
