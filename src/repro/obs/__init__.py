"""Observability: end-to-end tracing, per-stage profiling, ops console.

``repro.obs`` is the tracing and profiling subsystem threaded through the
serving stack — but it depends on nothing in :mod:`repro.server` (the server
imports *us*), so it can be reused by scripts, benchmarks and tests that
never construct a server.

Pieces:

* :mod:`repro.obs.trace` — :class:`Span` / :class:`Tracer` with explicit
  clock injection (monotonic + wall), a bounded in-memory ring buffer, a
  JSONL span sink and thread-local implicit parenting;
* :mod:`repro.obs.export` — Chrome-trace-event (Perfetto-loadable) export
  and the per-stage latency rollup behind ``repro trace export|report``;
* :mod:`repro.obs.console` — snapshot delta/rate computation and the frame
  renderers behind ``repro top`` and ``repro metrics --watch/--delta``.
"""

from repro.obs.trace import (
    NULL_TRACER,
    JsonlSpanSink,
    Span,
    Tracer,
    load_spans,
    new_span_id,
    new_trace_id,
)
from repro.obs.export import (
    chrome_trace,
    export_chrome_trace,
    render_stage_report,
    stage_rollup,
)
from repro.obs.console import (
    read_snapshot,
    render_delta,
    render_top,
    snapshot_delta,
)

__all__ = [
    "NULL_TRACER",
    "JsonlSpanSink",
    "Span",
    "Tracer",
    "chrome_trace",
    "export_chrome_trace",
    "load_spans",
    "new_span_id",
    "new_trace_id",
    "read_snapshot",
    "render_delta",
    "render_stage_report",
    "render_top",
    "snapshot_delta",
    "stage_rollup",
]
