"""Span exporters: Chrome trace-event JSON and the per-stage rollup table.

Two consumers, two formats:

* :func:`chrome_trace` renders spans as Chrome trace-event objects
  (``"ph": "X"`` complete events, microsecond timestamps), wrapped in
  ``{"traceEvents": [...]}`` — loadable by ``chrome://tracing`` and
  Perfetto.  Lanes (``pid``/``tid``): the real process id, with one thread
  lane per span category+thread so server stages, per-job mirrors and tick
  envelopes stack readably.
* :func:`stage_rollup` answers "which stage eats the 2x": per stage name it
  reports count, total duration, **self time** (duration minus the duration
  of child spans, so nested stages never double-count), exact p50/p99 over
  the raw durations, and each stage's share of all attributed self time.
  ``window_s`` is the wall span covered by the input and ``coverage`` the
  fraction of that window attributed to named stages — the bench asserts
  coverage ≥ 0.95 on a server pass.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.obs.trace import Span

__all__ = [
    "chrome_trace",
    "export_chrome_trace",
    "render_stage_report",
    "stage_rollup",
]

#: The lifecycle stage names in pipeline order (used to sort report rows and
#: by the smoke test to assert every stage showed up).
STAGE_ORDER = (
    "submit",
    "persist",
    "queue_wait",
    "admission",
    "poll_store",
    "queue_drain",
    "coalesce",
    "schedule",
    "backend_compile",
    "execute",
    "commit_result",
)


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Exact (linear-interpolated) percentile over raw values."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = q * (len(sorted_values) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(sorted_values) - 1)
    fraction = rank - lo
    return sorted_values[lo] + fraction * (sorted_values[hi] - sorted_values[lo])


def chrome_trace(spans: Iterable[Span]) -> Dict[str, object]:
    """Spans as a Perfetto-loadable Chrome trace-event payload."""
    events: List[Dict[str, object]] = []
    tids: Dict[object, int] = {}
    for span in spans:
        lane_key = (span.pid, span.cat, span.thread)
        tid = tids.setdefault(lane_key, len(tids) + 1)
        args: Dict[str, object] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
        }
        if span.parent_id:
            args["parent_id"] = span.parent_id
        if span.status != "ok":
            args["status"] = span.status
        args.update(span.attrs)
        events.append(
            {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": span.start_wall * 1e6,
                "dur": span.duration_s * 1e6,
                "pid": span.pid,
                "tid": tid,
                "args": args,
            }
        )
    events.sort(key=lambda event: event["ts"])
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": f"{cat} (thread {thread & 0xFFFF:x})"},
        }
        for (pid, cat, thread), tid in tids.items()
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def export_chrome_trace(spans: Iterable[Span], path: str) -> int:
    """Write :func:`chrome_trace` to ``path``; returns the event count."""
    payload = chrome_trace(spans)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.write("\n")
    return sum(1 for event in payload["traceEvents"] if event.get("ph") == "X")


def stage_rollup(
    spans: Iterable[Span],
    *,
    cats: Sequence[str] = ("stage",),
    window_s: Optional[float] = None,
) -> Dict[str, object]:
    """Aggregate stage spans into the per-stage latency table.

    ``self_s`` per stage subtracts the duration of *included* child spans
    from each parent, so a ``submit`` span containing ``admission`` and
    ``persist`` children contributes only its own bookkeeping to ``self_s``
    and total attributed time is never double-counted.  ``window_s``
    defaults to the wall interval covered by the included spans; pass the
    externally measured wall time (as the bench does) to attribute against
    a known denominator.
    """
    included = [span for span in spans if span.cat in cats]
    by_id = {span.span_id: span for span in included}
    child_time: Dict[str, float] = {}
    for span in included:
        if span.parent_id and span.parent_id in by_id:
            child_time[span.parent_id] = (
                child_time.get(span.parent_id, 0.0) + span.duration_s
            )

    stages: Dict[str, Dict[str, object]] = {}
    durations: Dict[str, List[float]] = {}
    attributed = 0.0
    for span in included:
        self_s = max(0.0, span.duration_s - child_time.get(span.span_id, 0.0))
        attributed += self_s
        row = stages.setdefault(
            span.name,
            {"stage": span.name, "count": 0, "total_s": 0.0, "self_s": 0.0, "errors": 0},
        )
        row["count"] = int(row["count"]) + 1
        row["total_s"] = float(row["total_s"]) + span.duration_s
        row["self_s"] = float(row["self_s"]) + self_s
        if span.status != "ok":
            row["errors"] = int(row["errors"]) + 1
        durations.setdefault(span.name, []).append(span.duration_s)

    for name, row in stages.items():
        values = sorted(durations[name])
        row["mean_s"] = float(row["total_s"]) / int(row["count"])
        row["p50_s"] = _percentile(values, 0.5)
        row["p99_s"] = _percentile(values, 0.99)
        row["max_s"] = values[-1]
        row["share"] = (
            float(row["self_s"]) / attributed if attributed > 0 else 0.0
        )

    if window_s is None:
        if included:
            start = min(span.start_wall for span in included)
            end = max(span.end_wall for span in included)
            window_s = max(0.0, end - start)
        else:
            window_s = 0.0

    order = {name: index for index, name in enumerate(STAGE_ORDER)}
    rows = sorted(
        stages.values(),
        key=lambda row: (order.get(str(row["stage"]), len(order)), str(row["stage"])),
    )
    return {
        "stages": rows,
        "attributed_s": attributed,
        "window_s": float(window_s),
        "coverage": (attributed / window_s) if window_s and window_s > 0 else 0.0,
        "span_count": len(included),
    }


def render_stage_report(rollup: Mapping[str, object]) -> str:
    """The rollup as an aligned text table (the ``repro trace report`` body)."""
    rows: List[Mapping[str, object]] = list(rollup.get("stages", []))  # type: ignore[arg-type]
    header = ("stage", "count", "total_s", "self_s", "share", "p50_ms", "p99_ms", "max_ms")
    table: List[Sequence[str]] = [header]
    for row in rows:
        table.append(
            (
                str(row["stage"]),
                str(int(row["count"])),
                f"{float(row['total_s']):.4f}",
                f"{float(row['self_s']):.4f}",
                f"{float(row['share']) * 100:5.1f}%",
                f"{float(row['p50_s']) * 1e3:.3f}",
                f"{float(row['p99_s']) * 1e3:.3f}",
                f"{float(row['max_s']) * 1e3:.3f}",
            )
        )
    widths = [max(len(line[col]) for line in table) for col in range(len(header))]
    lines = []
    for index, line in enumerate(table):
        lines.append(
            "  ".join(
                cell.ljust(widths[col]) if col == 0 else cell.rjust(widths[col])
                for col, cell in enumerate(line)
            )
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    window = float(rollup.get("window_s", 0.0))
    attributed = float(rollup.get("attributed_s", 0.0))
    coverage = float(rollup.get("coverage", 0.0))
    lines.append("")
    lines.append(
        f"attributed {attributed:.4f}s of {window:.4f}s window "
        f"({coverage * 100:.1f}% coverage, {int(rollup.get('span_count', 0))} spans)"
    )
    return "\n".join(lines)
