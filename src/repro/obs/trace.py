"""Spans and tracers: the timing primitives of the observability stack.

Design constraints, in order:

* **No server dependency.** This module imports only the standard library.
  The server (and the execution service, and benchmarks, and tests) hold a
  :class:`Tracer`; nothing here knows what a job is.
* **Explicit clock injection.** A :class:`Tracer` takes its wall clock and
  its monotonic clock as constructor arguments.  Tests drive both with fake
  tick functions; production uses ``time.time`` + ``time.perf_counter``.
  Durations always come from the monotonic clock; Chrome-trace timestamps
  from the wall clock.
* **Near-zero cost when disabled.** A disabled tracer's :meth:`Tracer.span`
  returns one shared no-op context manager — no allocation, no clock reads.
* **Bounded memory.** Finished spans land in a ring buffer
  (``collections.deque(maxlen=capacity)``); a long-running server cannot
  grow without bound.  An optional :class:`JsonlSpanSink` additionally
  appends every finished span to a JSONL file for cross-process analysis
  (``repro trace export`` / ``repro trace report`` read it back).

Spans nest implicitly through a per-thread stack: a span opened while
another is active on the same thread becomes its child unless an explicit
``parent_id`` is given.  The property-based tests pin that the resulting
intervals are well-formed (children are contained in their parents and
siblings do not overlap) under random interleavings.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

__all__ = [
    "NULL_TRACER",
    "JsonlSpanSink",
    "Span",
    "SpanHandle",
    "Tracer",
    "load_spans",
    "new_span_id",
    "new_trace_id",
]

_ID_LOCK = threading.Lock()
_ID_COUNTER = 0


def _next_id(prefix: str) -> str:
    """Process-unique ids: random half + (pid, counter) half.

    The random component keeps ids unique across processes sharing one
    ``traces.jsonl``; the counter keeps them unique within a process even if
    ``os.urandom`` ever repeats.
    """
    global _ID_COUNTER
    with _ID_LOCK:
        _ID_COUNTER += 1
        count = _ID_COUNTER
    return f"{prefix}-{os.urandom(4).hex()}{os.getpid() & 0xFFFF:04x}{count:06x}"


def new_trace_id() -> str:
    """A fresh trace id (one per job submission / server instance)."""
    return _next_id("t")


def new_span_id() -> str:
    """A fresh span id."""
    return _next_id("s")


@dataclass
class Span:
    """One finished (or synthesized) timed interval.

    ``start_wall`` is epoch seconds; ``duration_s`` comes from the monotonic
    clock when the span was opened and closed in-process, or from a wall
    difference for synthesized spans (:meth:`Tracer.record`).  ``cat``
    groups spans by purpose: ``"stage"`` spans are the non-overlapping
    server segments the rollup attributes wall time to, ``"job"`` spans are
    the per-job lifecycle mirrors that form one connected trace per
    submission, ``"tick"`` spans are the per-tick envelopes.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    cat: str = "stage"
    start_wall: float = 0.0
    duration_s: float = 0.0
    status: str = "ok"
    attrs: Dict[str, object] = field(default_factory=dict)
    pid: int = field(default_factory=os.getpid)
    thread: int = 0

    @property
    def end_wall(self) -> float:
        return self.start_wall + self.duration_s

    def to_record(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "cat": self.cat,
            "ts": self.start_wall,
            "dur_s": self.duration_s,
            "status": self.status,
            "attrs": self.attrs,
            "pid": self.pid,
            "thread": self.thread,
        }

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "Span":
        return cls(
            trace_id=str(record.get("trace_id", "")),
            span_id=str(record.get("span_id", "")),
            parent_id=record.get("parent_id"),  # type: ignore[arg-type]
            name=str(record.get("name", "")),
            cat=str(record.get("cat", "stage")),
            start_wall=float(record.get("ts", 0.0)),
            duration_s=float(record.get("dur_s", 0.0)),
            status=str(record.get("status", "ok")),
            attrs=dict(record.get("attrs") or {}),  # type: ignore[arg-type]
            pid=int(record.get("pid", 0)),
            thread=int(record.get("thread", 0)),
        )


class JsonlSpanSink:
    """Appends finished spans to a JSONL file, one record per line.

    Writes are buffered through the file object and flushed on
    :meth:`flush` / :meth:`close`; the server flushes whenever it writes a
    metrics snapshot, so ``traces.jsonl`` trails the live buffer by at most
    one tick batch.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        self._handle = open(path, "a", encoding="utf-8")

    def emit(self, span: Span) -> None:
        line = json.dumps(span.to_record(), sort_keys=True)
        with self._lock:
            if not self._handle.closed:
                self._handle.write(line + "\n")

    def flush(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()


def load_spans(path: str) -> List[Span]:
    """Read a JSONL span file back; unparseable lines are skipped."""
    spans: List[Span] = []
    if not os.path.exists(path):
        return spans
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                spans.append(Span.from_record(record))
    return spans


class SpanHandle:
    """The live side of a span while it is open.

    Context-manager protocol: entering pushes the span onto the tracer's
    per-thread stack (so nested ``tracer.span`` calls parent themselves
    here), exiting records the duration, pops the stack and hands the
    finished :class:`Span` to the ring buffer and sink.  An exception
    propagating through the body marks ``status="error"``.
    """

    __slots__ = ("tracer", "span", "_start_mono", "_entered")

    def __init__(self, tracer: "Tracer", span: Span, start_mono: float) -> None:
        self.tracer = tracer
        self.span = span
        self._start_mono = start_mono
        self._entered = False

    @property
    def trace_id(self) -> str:
        return self.span.trace_id

    @property
    def span_id(self) -> str:
        return self.span.span_id

    def set_attr(self, key: str, value: object) -> None:
        self.span.attrs[key] = value

    def __enter__(self) -> "SpanHandle":
        self._entered = True
        self.tracer._push(self.span)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.span.status = "error"
            self.span.attrs.setdefault("error", exc_type.__name__)
        self.tracer._finish(self, self.tracer.mono())
        return False


class _NullHandle:
    """The shared no-op handle a disabled tracer hands out."""

    __slots__ = ()
    trace_id = ""
    span_id = ""

    def set_attr(self, key: str, value: object) -> None:
        pass

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_HANDLE = _NullHandle()


class Tracer:
    """Collects spans into a bounded ring buffer and an optional sink.

    Parameters
    ----------
    enabled:
        ``False`` makes every :meth:`span` / :meth:`record` call a no-op —
        the disabled path reads no clocks and allocates nothing.
    wall / mono:
        The injected clocks.  ``wall()`` must return epoch seconds,
        ``mono()`` a monotonically non-decreasing float; only differences
        of ``mono()`` are ever used.
    capacity:
        Ring-buffer size: only the newest ``capacity`` finished spans are
        retained in memory (the sink, when present, still sees every span).
    sink:
        Anything with ``emit(span)`` / ``flush()`` / ``close()`` —
        typically a :class:`JsonlSpanSink`.
    observer:
        Optional callback invoked with every finished span (after it lands
        in the buffer).  The server uses this to fold stage durations into
        its telemetry histograms (``stage_<name>_s``) so ``repro top`` can
        show stage percentiles from ``metrics.json`` alone.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        wall: Callable[[], float] = time.time,
        mono: Callable[[], float] = time.perf_counter,
        capacity: int = 4096,
        sink: Optional[JsonlSpanSink] = None,
        observer: Optional[Callable[[Span], None]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.enabled = bool(enabled)
        self.wall = wall
        self.mono = mono
        self.capacity = int(capacity)
        self.sink = sink
        self.observer = observer
        self._lock = threading.Lock()
        from collections import deque

        self._buffer: "deque[Span]" = deque(maxlen=self.capacity)
        self._local = threading.local()
        self._dropped = 0
        self._emitted = 0

    # -- span construction -------------------------------------------------

    def span(
        self,
        name: str,
        *,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        cat: str = "stage",
        attrs: Optional[Dict[str, object]] = None,
        start_wall: Optional[float] = None,
        start_mono: Optional[float] = None,
    ):
        """Open a span as a context manager.

        Without an explicit ``trace_id`` / ``parent_id`` the span joins the
        thread's current span (same trace, parented under it); with neither
        a current span nor explicit ids it roots a fresh trace.
        ``start_wall`` / ``start_mono`` retro-date the span to clock values
        captured earlier (the server's tick envelope only learns it has work
        after the drain already happened).
        """
        if not self.enabled:
            return _NULL_HANDLE
        current = self.current_span()
        if trace_id is None:
            trace_id = current.trace_id if current is not None else new_trace_id()
        if parent_id is None and current is not None:
            parent_id = current.span_id
        span = Span(
            trace_id=trace_id,
            span_id=new_span_id(),
            parent_id=parent_id,
            name=name,
            cat=cat,
            start_wall=self.wall() if start_wall is None else float(start_wall),
            attrs=dict(attrs) if attrs else {},
            thread=threading.get_ident(),
        )
        return SpanHandle(
            self, span, self.mono() if start_mono is None else float(start_mono)
        )

    def record(
        self,
        name: str,
        start_wall: float,
        end_wall: float,
        *,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        span_id: Optional[str] = None,
        cat: str = "job",
        status: str = "ok",
        attrs: Optional[Dict[str, object]] = None,
    ) -> Optional[Span]:
        """Synthesize an already-finished span from wall timestamps.

        Used for intervals that were not (or could not be) measured with an
        open handle: per-job ``queue_wait`` (the start happened before this
        process saw the job), per-job mirrors of batch work, the terminal
        ``job`` envelope (which pins ``span_id`` to the job's persisted root
        span id so child spans from any process attach to it).  Duration is
        the wall difference, clamped at 0.
        """
        if not self.enabled:
            return None
        span = Span(
            trace_id=trace_id or new_trace_id(),
            span_id=span_id or new_span_id(),
            parent_id=parent_id,
            name=name,
            cat=cat,
            start_wall=float(start_wall),
            duration_s=max(0.0, float(end_wall) - float(start_wall)),
            status=status,
            attrs=dict(attrs) if attrs else {},
            thread=threading.get_ident(),
        )
        self._store(span)
        return span

    # -- thread-local nesting ----------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _finish(self, handle: SpanHandle, end_mono: float) -> None:
        span = handle.span
        span.duration_s = max(0.0, end_mono - handle._start_mono)
        if handle._entered:
            stack = self._stack()
            # Pop back to (and including) this span; tolerate foreign frames
            # so one leaked handle cannot wedge the whole thread's stack.
            while stack:
                top = stack.pop()
                if top is span:
                    break
        self._store(span)

    # -- storage -----------------------------------------------------------

    def _store(self, span: Span) -> None:
        with self._lock:
            if len(self._buffer) == self.capacity:
                self._dropped += 1
            self._buffer.append(span)
            self._emitted += 1
        if self.sink is not None:
            self.sink.emit(span)
        if self.observer is not None:
            self.observer(span)

    def spans(self, *, cat: Optional[str] = None) -> List[Span]:
        """The ring buffer's current contents, oldest first."""
        with self._lock:
            items = list(self._buffer)
        if cat is not None:
            items = [span for span in items if span.cat == cat]
        return items

    def clear(self) -> None:
        with self._lock:
            self._buffer.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "buffered": len(self._buffer),
                "emitted": self._emitted,
                "dropped": self._dropped,
            }

    def flush(self) -> None:
        if self.sink is not None:
            self.sink.flush()

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()


#: The shared disabled tracer: hand this to components when tracing is off.
NULL_TRACER = Tracer(enabled=False, capacity=1)
