"""The workload registry: named end-to-end scenarios behind one decorator.

A *workload* is everything the system needs to run one realistic scenario
end to end: an s-expression **source** (the circuit), a deterministic
**input sampler** (the facade's :func:`~repro.api.sample_named_inputs`
contract, so server jobs and direct calls draw bit-identical inputs from a
seed), an **expected-output oracle**, and the **default compiler/backend**
the scenario is meant to run on.  Workloads are registered under short
names through the same decorator/factory idiom as ``@register_compiler``
and ``@register_backend``::

    @register_workload("dot-product", suite="porcupine")
    def _dot_product(size: int = 8) -> Workload: ...

    build_workload("dot-product", size=16)
    available_workloads()

The built-ins (:mod:`repro.workloads.suites`,
:mod:`repro.workloads.neural`) cover the Coyote and Porcupine kernel
suites, polynomial tree ensembles and a small quantized NN linear layer
lowered through the IR — the scenario pool the mixed-traffic load
generator (:mod:`repro.workloads.traffic`) draws from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.ir.nodes import Expr

__all__ = [
    "Workload",
    "WorkloadInfo",
    "register_workload",
    "available_workloads",
    "workload_info",
    "build_workload",
    "get_workload",
]


@dataclass
class Workload:
    """One parameterized end-to-end scenario (see module docstring)."""

    name: str
    #: Suite label ("coyote", "porcupine", "trees", "nn").
    suite: str
    #: The circuit as s-expression text (what a client would submit).
    source: str
    #: Generated inputs are uniform over ``[0, input_range]`` per variable
    #: (``1`` restricts to binary inputs, e.g. Hamming distance).
    input_range: int = 7
    #: Default compiler registry name for this scenario.
    compiler: str = "greedy"
    #: Default execution-backend registry name for this scenario.
    backend: str = "vector-vm"
    #: Optional independent expected-output oracle.  When set it must agree
    #: with the plaintext reference evaluation of ``source`` — that agreement
    #: is exactly what makes a lowered workload (the NN layer) trustworthy.
    oracle: Optional[Callable[[Mapping[str, int]], List[int]]] = None
    description: str = ""
    _expr: Optional[Expr] = field(default=None, repr=False, compare=False)

    # -- circuit access -----------------------------------------------------
    def expression(self) -> Expr:
        """The parsed IR expression (parsed once and cached)."""
        if self._expr is None:
            from repro.ir.parser import parse

            self._expr = parse(self.source)
        return self._expr

    @property
    def input_names(self) -> List[str]:
        """Distinct input variables, in first-occurrence order."""
        from repro.ir.analysis import variables

        return variables(self.expression())

    # -- inputs and expected outputs ---------------------------------------
    def sample_inputs(self, seed: int = 0) -> Dict[str, int]:
        """Deterministic inputs via the facade's seed-to-inputs contract."""
        from repro.api import sample_named_inputs

        return sample_named_inputs(self.input_names, seed, self.input_range)

    def reference(self, inputs: Mapping[str, int]) -> List[int]:
        """Plaintext reference evaluation of the circuit on ``inputs``."""
        from repro.compiler.executor import reference_output
        from repro.ir.evaluate import output_arity

        expr = self.expression()
        slots = max(64, output_arity(expr) + 8)
        return reference_output(expr, dict(inputs), slot_count=slots)

    def expected(self, inputs: Mapping[str, int]) -> List[int]:
        """Expected outputs: the oracle when present, else the reference."""
        if self.oracle is not None:
            return self.oracle(inputs)
        return self.reference(inputs)

    # -- adapters -----------------------------------------------------------
    def as_benchmark(self):
        """This workload as a :class:`~repro.kernels.registry.Benchmark`.

        Lets :class:`~repro.experiments.harness.BenchmarkRunner` run
        registered workloads through the exact compile/execute/verify path
        the paper's kernel suites use.  Inputs are registered in
        :attr:`input_names` order, so the adapter's seeded sampling draws
        the same values as :meth:`sample_inputs`.
        """
        from repro.compiler.dsl import Program
        from repro.kernels.registry import Benchmark

        def build(workload: "Workload" = self) -> Program:
            with Program(workload.name) as program:
                program.register_output("result", workload.expression())
                for input_name in workload.input_names:
                    program.register_input(input_name)
            return program

        return Benchmark(
            name=self.name,
            suite=self.suite,
            builder=build,
            input_range=self.input_range,
        )


@dataclass(frozen=True)
class WorkloadInfo:
    """One registry entry."""

    name: str
    #: Builds the :class:`Workload` from keyword options.
    factory: Callable[..., Workload]
    suite: str = ""
    description: str = ""

    def build(self, **options: object) -> Workload:
        workload = self.factory(**options)
        if not workload.description:
            workload.description = self.description
        return workload


_REGISTRY: Dict[str, WorkloadInfo] = {}
_builtins_loaded = False


def register_workload(
    name: str, *, suite: str = "", description: str = ""
) -> Callable:
    """Decorator registering a workload factory under ``name``."""

    def decorator(factory: Callable[..., Workload]) -> Callable[..., Workload]:
        if name in _REGISTRY:
            raise ValueError(f"workload {name!r} is already registered")
        doc_lines = (factory.__doc__ or "").strip().splitlines()
        _REGISTRY[name] = WorkloadInfo(
            name=name,
            factory=factory,
            suite=suite,
            description=description or (doc_lines[0] if doc_lines else ""),
        )
        return factory

    return decorator


def _ensure_builtins() -> None:
    """Import the modules that register the built-in workloads."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    import repro.workloads.neural  # noqa: F401
    import repro.workloads.suites  # noqa: F401


def available_workloads() -> List[str]:
    """Sorted names of every registered workload."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def workload_info(name: str) -> WorkloadInfo:
    """The registry entry for ``name``."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None


def build_workload(name: str, **options: object) -> Workload:
    """Build the workload registered under ``name`` with factory options."""
    return workload_info(name).build(**options)


def get_workload(workload: object, **options: object) -> Workload:
    """Normalize a registry name or live :class:`Workload` into an instance."""
    if isinstance(workload, Workload):
        if options:
            raise ValueError("workload options require a registry name, not an instance")
        return workload
    if isinstance(workload, str):
        return build_workload(workload, **options)
    raise TypeError(
        f"expected a workload name or Workload, got {type(workload).__name__}"
    )
