"""An NN layer lowered through the IR to a compilable workload.

The smallest interesting "private inference" scenario: one quantized
:class:`~repro.nn.layers.Linear` layer evaluated under encryption.  The
layer's integer weights and bias are staged through the compiler DSL into
the paper's textual IR (``out_j = sum_k w[j][k] * x_k + b[j]``, with the
weights as plaintext constants and the activations as ciphertexts), which
makes the layer an ordinary s-expression every compiler and backend in the
repo can consume.

The workload's oracle runs the *same* layer through the numpy autograd
stack (:mod:`repro.nn`): the encrypted circuit and the floating-point
forward pass must agree bit for bit on integer inputs, which pins the
lowering — a mismatch means the DSL staging, the compiler or the backend
broke, not the test.
"""

from __future__ import annotations

from typing import List, Mapping

import numpy as np

from repro.workloads.registry import Workload, register_workload

__all__ = ["linear_layer_workload", "quantized_linear_weights"]


def quantized_linear_weights(
    in_features: int, out_features: int, seed: int
) -> "tuple[np.ndarray, np.ndarray]":
    """Deterministic small-integer ``(weights, bias)`` for the layer.

    Weights live in ``[0, 3]`` and biases in ``[0, 7]`` so every output of
    the layer stays far below the plaintext modulus — the circuit computes
    exact integer arithmetic, never wrapped values.
    """
    rng = np.random.default_rng(seed)
    weights = rng.integers(0, 4, size=(in_features, out_features))
    bias = rng.integers(0, 8, size=out_features)
    return weights, bias


@register_workload("nn-linear", suite="nn")
def linear_layer_workload(
    in_features: int = 4, out_features: int = 2, seed: int = 0
) -> Workload:
    """A quantized Linear layer evaluated under encryption."""
    from repro.compiler.dsl import Ciphertext, Program
    from repro.ir.printer import to_sexpr
    from repro.nn.layers import Linear

    if in_features < 1 or out_features < 1:
        raise ValueError("nn-linear needs at least one input and output feature")
    weights, bias = quantized_linear_weights(in_features, out_features, seed)

    with Program(f"nn_linear_{in_features}x{out_features}") as program:
        activations = [Ciphertext(f"x_{k}") for k in range(in_features)]
        for j in range(out_features):
            accumulator = activations[0] * int(weights[0, j])
            for k in range(1, in_features):
                accumulator = accumulator + activations[k] * int(weights[k, j])
            (accumulator + int(bias[j])).set_output(f"out_{j}")

    layer = Linear(in_features, out_features, seed=seed)
    layer.weight.data = weights.astype(np.float64)
    layer.bias.data = bias.astype(np.float64)

    def oracle(inputs: Mapping[str, int]) -> List[int]:
        """The same layer forward through the numpy autograd stack."""
        from repro.nn.tensor import Tensor

        row = np.array(
            [[float(inputs[f"x_{k}"]) for k in range(in_features)]], dtype=np.float64
        )
        output = layer(Tensor(row)).data[0]
        return [int(round(value)) for value in output]

    return Workload(
        name=program.name,
        suite="nn",
        source=to_sexpr(program.output_expr),
        input_range=7,
        compiler="greedy",
        oracle=oracle,
    )
