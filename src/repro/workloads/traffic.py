"""The mixed-traffic load generator over the workload registry.

Realistic serving traffic is not one kernel at a time: it is a *mix* of
scenarios arriving on their own clock, with different priorities and
per-workload compiler/backend choices.  That regime is exactly where the
two-level scheduler (queue-level coalescing + worker-level timer-augmented
LPT) earns its keep — and where its bookkeeping bugs hide.  This module
generates such traffic deterministically and drives the *same* schedule
down both execution paths:

* :func:`run_server_traffic` — submit every arrival to a
  :class:`~repro.server.server.JobServer` (open-loop: arrivals never wait
  for completions) and collect results plus telemetry: throughput, wait and
  run-latency histograms, coalescing rates;
* :func:`run_direct_traffic` — the same arrivals through direct
  ``api.execute_batch`` calls, one batch per (workload, compiler, backend)
  group;
* :func:`run_closed_loop_traffic` — closed-loop sessions: concurrent users
  with exponential think times and a bounded number of in-flight jobs each,
  the regime interactive clients impose.

For overload studies, :func:`generate_overload_schedule` scales an arrival
rate to a deliberate multiple of measured capacity, and
:class:`TrafficReport` separates *goodput* (SLO-meeting completions per
second) from raw throughput, counting shed and failed jobs explicitly —
the axes ``scripts/bench_overload.py`` plots shedding on/off against.

Because both paths draw inputs from the same per-arrival seeds through
:func:`~repro.api.sample_named_inputs`, their outputs must be
**bit-identical** — the smoke script and ``BENCH_workloads.json`` assert
exactly that.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.workloads.registry import Workload, build_workload

__all__ = [
    "MixEntry",
    "Arrival",
    "TrafficReport",
    "ClosedLoopConfig",
    "default_mix",
    "overload_mix",
    "generate_schedule",
    "generate_overload_schedule",
    "run_server_traffic",
    "run_direct_traffic",
    "run_closed_loop_traffic",
    "benchmark_workloads",
    "summarize_benchmark",
    "benchmark_problems",
]


@dataclass(frozen=True)
class MixEntry:
    """One component of a traffic mix."""

    workload: str
    #: Relative arrival weight within the mix.
    weight: float = 1.0
    #: Job priority (higher runs earlier on the server).
    priority: int = 0
    #: Compiler override (None follows the workload's default).
    compiler: Optional[str] = None
    #: Backend override (None follows the workload's default).
    backend: Optional[str] = None
    #: Workload factory options, as a hashable sorted tuple.
    options: Tuple[Tuple[str, object], ...] = ()


@dataclass
class Arrival:
    """One scheduled job: a workload instance arriving at ``at_s``."""

    index: int
    at_s: float
    entry: MixEntry
    workload: Workload
    #: Per-arrival input seed (spawned via ``derive_batch_seeds``).
    seed: int

    @property
    def compiler(self) -> str:
        return self.entry.compiler or self.workload.compiler

    @property
    def backend(self) -> str:
        return self.entry.backend or self.workload.backend

    def inputs(self) -> Dict[str, int]:
        return self.workload.sample_inputs(self.seed)

    def group_key(self) -> Tuple[str, str, str]:
        """Batching key: arrivals sharing it run as one direct batch."""
        return (self.workload.name, self.compiler, self.backend)


@dataclass
class TrafficReport:
    """What one pass of a schedule produced, on either path."""

    path: str
    jobs: int
    wall_s: float
    #: Arrivals whose (verified) outputs matched the plaintext reference.
    correct: int
    #: Arrivals executed on an output-producing backend.
    verified_jobs: int
    #: Arrival count per workload name.
    per_workload: Dict[str, int] = field(default_factory=dict)
    #: Declared outputs per arrival, in arrival order (empty for
    #: accounting-only backends).
    outputs: List[List[int]] = field(default_factory=list)
    #: Arrival indices whose outputs disagreed with the workload oracle.
    oracle_mismatches: List[int] = field(default_factory=list)
    #: Server telemetry snapshot (empty on the direct path).
    telemetry: Dict[str, object] = field(default_factory=dict)
    #: Terminal-status counts (direct-path jobs always complete).
    completed: int = 0
    shed: int = 0
    failed: int = 0
    #: Completed jobs whose queue wait met their priority's SLO budget.
    #: ``None`` when the run had no SLO policy in force.
    slo_ok: Optional[int] = None

    @property
    def throughput_jobs_per_s(self) -> float:
        if self.wall_s <= 0.0:
            return 0.0
        return self.jobs / self.wall_s

    @property
    def goodput_jobs_per_s(self) -> float:
        """Useful completions per second: SLO-meeting ones under a policy,
        all completions otherwise.  Shed and failed jobs never count."""
        if self.wall_s <= 0.0:
            return 0.0
        good = self.completed if self.slo_ok is None else self.slo_ok
        return good / self.wall_s

    @property
    def coalescing(self) -> Dict[str, float]:
        """Batch-coalescing rates derived from the telemetry counters."""
        counters = self.telemetry.get("counters", {})
        batches = float(counters.get("batches_total", 0))
        coalesced = float(counters.get("batches_coalesced", 0))
        coalesced_jobs = float(counters.get("coalesced_jobs", 0))
        return {
            "batches_total": batches,
            "batches_coalesced": coalesced,
            "coalesced_jobs": coalesced_jobs,
            "batch_coalescing_rate": coalesced / batches if batches else 0.0,
            "job_coalescing_rate": coalesced_jobs / self.jobs if self.jobs else 0.0,
        }

    def histogram(self, name: str) -> Dict[str, object]:
        """One latency histogram from the telemetry snapshot (or empty)."""
        return dict(self.telemetry.get("histograms", {}).get(name, {}))

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "path": self.path,
            "jobs": self.jobs,
            "wall_s": self.wall_s,
            "throughput_jobs_per_s": self.throughput_jobs_per_s,
            "goodput_jobs_per_s": self.goodput_jobs_per_s,
            "completed": self.completed,
            "shed": self.shed,
            "failed": self.failed,
            "correct": self.correct,
            "verified_jobs": self.verified_jobs,
            "per_workload": dict(sorted(self.per_workload.items())),
            "oracle_mismatches": list(self.oracle_mismatches),
        }
        if self.slo_ok is not None:
            payload["slo_ok"] = self.slo_ok
        if self.telemetry:
            from repro.server.telemetry import percentile_from_snapshot

            payload["coalescing"] = self.coalescing
            payload["wait_histogram_s"] = self.histogram("job_wait_s")
            payload["run_histogram_s"] = self.histogram("job_run_s")
            for stem in ("wait", "run"):
                snapshot = payload[f"{stem}_histogram_s"]
                if snapshot:
                    for q in (0.50, 0.99):
                        payload[f"{stem}_p{int(q * 100)}_s"] = (
                            percentile_from_snapshot(snapshot, q)
                        )
        return payload


def default_mix() -> List[MixEntry]:
    """A representative mixed-traffic composition over the registry.

    A popular kernel dominating the stream (the coalescer's bread and
    butter), medium-weight kernels from the other suites, and two
    high-priority interactive scenarios — the NN layer and the Max tree —
    cutting the queue.
    """
    return [
        MixEntry("dot-product", weight=4.0),
        MixEntry("matrix-multiply", weight=2.0),
        MixEntry("box-blur", weight=2.0),
        MixEntry("l2-distance", weight=1.0),
        MixEntry("hamming-distance", weight=1.0),
        MixEntry("sort-network", weight=1.0),
        MixEntry("tree-ensemble", weight=1.0, options=(("depth", 3), ("trees", 2))),
        MixEntry("nn-linear", weight=2.0, priority=1),
        MixEntry("max-tree", weight=1.0, priority=1),
    ]


def overload_mix() -> List[MixEntry]:
    """A mix tuned for overload experiments: small, fast kernels so the
    bench can push the server far past capacity quickly, with a clearly
    separated top-priority class whose SLO the hardened server must keep
    while it sheds the background classes."""
    return [
        MixEntry("dot-product", weight=4.0),
        MixEntry("l2-distance", weight=2.0),
        MixEntry("hamming-distance", weight=2.0),
        MixEntry("nn-linear", weight=1.0, priority=2),
        MixEntry("max-tree", weight=1.0, priority=2),
    ]


def generate_schedule(
    mix: Sequence[MixEntry],
    jobs: int,
    *,
    seed: int = 0,
    rate: Optional[float] = None,
) -> List[Arrival]:
    """An open-loop arrival schedule of ``jobs`` draws from ``mix``.

    Workloads are drawn with probability proportional to their weights and
    arrival times follow a Poisson process of ``rate`` jobs/second
    (``rate=None`` means a burst: everything arrives at t=0).  Per-arrival
    input seeds come from :func:`~repro.api.derive_batch_seeds`, so the
    schedule's inputs are decorrelated across arrivals *and* across base
    seeds, and any consumer (server or direct) samples identical inputs.
    """
    from repro.api import derive_batch_seeds

    if jobs < 1:
        raise ValueError("a schedule needs at least one job")
    entries = list(mix)
    if not entries:
        raise ValueError("the traffic mix is empty")
    weights = np.array([entry.weight for entry in entries], dtype=np.float64)
    if np.any(weights <= 0.0):
        raise ValueError("mix weights must be positive")
    rng = np.random.default_rng(seed)
    choices = rng.choice(len(entries), size=jobs, p=weights / weights.sum())
    if rate is not None:
        if rate <= 0.0:
            raise ValueError("rate must be positive (or None for a burst)")
        at_s = np.cumsum(rng.exponential(1.0 / rate, size=jobs))
    else:
        at_s = np.zeros(jobs)
    seeds = derive_batch_seeds(seed, jobs)
    built: Dict[int, Workload] = {}
    schedule: List[Arrival] = []
    for index in range(jobs):
        entry = entries[int(choices[index])]
        workload = built.get(int(choices[index]))
        if workload is None:
            workload = build_workload(entry.workload, **dict(entry.options))
            built[int(choices[index])] = workload
        schedule.append(
            Arrival(
                index=index,
                at_s=float(at_s[index]),
                entry=entry,
                workload=workload,
                seed=seeds[index],
            )
        )
    return schedule


def generate_overload_schedule(
    mix: Sequence[MixEntry],
    jobs: int,
    *,
    capacity_jobs_per_s: float,
    overload_factor: float = 2.0,
    seed: int = 0,
) -> List[Arrival]:
    """An open-loop schedule arriving at a multiple of measured capacity.

    ``capacity_jobs_per_s`` is the server's measured service rate (e.g. a
    burst drain timed by the bench) and ``overload_factor`` how far past it
    to push: 2.0 offers twice what the server can drain, so an unbounded
    queue grows without limit while a hardened one sheds.  Factors below
    1.0 are allowed — the bench uses them for the underload control rows.
    """
    if capacity_jobs_per_s <= 0.0:
        raise ValueError("capacity_jobs_per_s must be positive")
    if overload_factor <= 0.0:
        raise ValueError("overload_factor must be positive")
    return generate_schedule(
        mix, jobs, seed=seed, rate=capacity_jobs_per_s * overload_factor
    )


def _finalize(
    report: TrafficReport, schedule: Sequence[Arrival], check_oracle: bool
) -> TrafficReport:
    """Fill per-workload counts and oracle mismatches from the outputs."""
    for arrival in schedule:
        name = arrival.workload.name
        report.per_workload[name] = report.per_workload.get(name, 0) + 1
    if check_oracle:
        for arrival in schedule:
            outputs = report.outputs[arrival.index]
            if not outputs:
                continue  # accounting-only backend: nothing decrypted
            if list(outputs) != list(arrival.workload.expected(arrival.inputs())):
                report.oracle_mismatches.append(arrival.index)
    return report


def run_server_traffic(
    schedule: Sequence[Arrival],
    *,
    server: Optional[object] = None,
    state_dir: Optional[str] = None,
    workers: int = 1,
    compile_workers: int = 1,
    compiler: str = "greedy",
    check_oracle: bool = True,
    result_timeout: float = 300.0,
) -> TrafficReport:
    """Drive a schedule through the job-orchestration server.

    With timed arrivals the serving loop runs in the background and
    submissions sleep until their arrival instant (open loop: an arrival
    never waits for earlier completions).  A burst schedule (all ``at_s``
    zero) is submitted up front and drained in coalesced ticks — the
    deterministic mode the smoke tests assert coalescing on.  Pass an
    existing ``server`` to reuse one (it is left running); otherwise one is
    created over ``state_dir`` and closed before returning.

    The collector tolerates overload: jobs the server shed (bounded queue
    or admission control) or failed are counted in ``TrafficReport.shed`` /
    ``.failed`` with empty outputs, and when the server carries an
    :class:`~repro.server.telemetry.SLOPolicy`, completions are scored
    against their priority's wait budget into ``slo_ok`` — the numerator of
    ``goodput_jobs_per_s``.
    """
    from repro.server.jobs import Job, JobState
    from repro.server.server import JobServer

    owned = server is None
    if server is None:
        server = JobServer(
            state_dir,
            compiler=compiler,
            workers=workers,
            compile_workers=compile_workers,
        )
    open_loop = any(arrival.at_s > 0.0 for arrival in schedule)
    job_ids: List[str] = []
    start = time.perf_counter()
    try:
        if open_loop:
            server.start()
        for arrival in schedule:
            if open_loop:
                lag = arrival.at_s - (time.perf_counter() - start)
                if lag > 0.0:
                    time.sleep(lag)
            job_ids.append(
                server.submit(
                    Job(
                        source=arrival.workload.source,
                        compiler=arrival.compiler,
                        backend=arrival.backend,
                        seed=arrival.seed,
                        input_range=arrival.workload.input_range,
                        priority=arrival.entry.priority,
                        name=f"{arrival.workload.name}/{arrival.index}",
                    )
                )
            )
        if open_loop:
            for job_id in job_ids:
                try:
                    server.result(job_id, wait=True, timeout=result_timeout)
                except RuntimeError:
                    pass  # shed or failed: classified below by status
            server.stop()
        else:
            server.drain()
        wall_s = time.perf_counter() - start

        report = TrafficReport(
            path="server",
            jobs=len(schedule),
            wall_s=wall_s,
            correct=0,
            verified_jobs=0,
            telemetry=server.telemetry.snapshot(),
        )
        policy = getattr(server, "slo", None)
        slo_ok = 0 if policy is not None else None
        for job_id in job_ids:
            job = server.get(job_id)
            if job.status is JobState.SHED:
                report.shed += 1
                report.outputs.append([])
                continue
            if job.status is not JobState.COMPLETED:
                report.failed += 1
                report.outputs.append([])
                continue
            report.completed += 1
            if policy is not None:
                budget = policy.wait_budget(job.priority)
                wait_s = (job.started_at or job.submitted_at) - job.submitted_at
                if budget is None or wait_s <= budget:
                    slo_ok += 1
            payload = server.result(job_id)
            outputs = payload.get("outputs") or [[]]
            report.outputs.append(list(outputs[0]))
            if payload.get("verified", False):
                report.verified_jobs += 1
                if payload.get("correct", False):
                    report.correct += 1
        report.slo_ok = slo_ok
    finally:
        if owned:
            server.close()
    return _finalize(report, schedule, check_oracle)


def run_direct_traffic(
    schedule: Sequence[Arrival],
    *,
    workers: int = 1,
    cache: Optional[object] = None,
    check_oracle: bool = True,
) -> TrafficReport:
    """The same schedule through direct ``api.execute_batch`` calls.

    Arrivals are grouped by (workload, compiler, backend) — the best the
    facade can do without a queue — compiled once per group and executed as
    one backend batch, with outputs fanned back to arrival order.  This is
    the reference path the server's results must be bit-identical to.
    """
    from repro import api

    groups: Dict[Tuple[str, str, str], List[Arrival]] = {}
    for arrival in schedule:
        groups.setdefault(arrival.group_key(), []).append(arrival)

    outputs: List[List[int]] = [[] for _ in schedule]
    correct = 0
    verified_jobs = 0
    start = time.perf_counter()
    for members in groups.values():
        head = members[0]
        outcome = api.execute_batch(
            head.workload.source,
            inputs=[arrival.inputs() for arrival in members],
            compiler=head.compiler,
            backend=head.backend,
            name=head.workload.name,
            workers=workers,
            cache=cache,
        )
        for position, arrival in enumerate(members):
            if outcome.verified:
                outputs[arrival.index] = list(outcome.outputs[position])
                verified_jobs += 1
                if outcome.outputs[position] == outcome.references[position]:
                    correct += 1
    wall_s = time.perf_counter() - start
    report = TrafficReport(
        path="direct",
        jobs=len(schedule),
        wall_s=wall_s,
        correct=correct,
        verified_jobs=verified_jobs,
        outputs=outputs,
        completed=len(schedule),
    )
    return _finalize(report, schedule, check_oracle)


@dataclass(frozen=True)
class ClosedLoopConfig:
    """Shape of one closed-loop session pool."""

    #: Concurrent users, each running its own submit/think loop.
    users: int = 4
    #: Jobs each user submits before leaving.
    requests_per_user: int = 8
    #: Mean of the exponential think time between submissions, seconds.
    think_s: float = 0.005
    #: Outstanding jobs a user may hold before blocking on the oldest.
    max_in_flight: int = 1
    #: Per-result wait bound, seconds.
    result_timeout: float = 120.0

    def __post_init__(self) -> None:
        if self.users < 1:
            raise ValueError("a closed loop needs at least one user")
        if self.requests_per_user < 1:
            raise ValueError("each user must submit at least one request")
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if self.think_s < 0.0:
            raise ValueError("think_s must be non-negative")
        if self.result_timeout <= 0.0:
            raise ValueError("result_timeout must be positive")


def run_closed_loop_traffic(
    mix: Sequence[MixEntry],
    config: Optional[ClosedLoopConfig] = None,
    *,
    server: Optional[object] = None,
    state_dir: Optional[str] = None,
    workers: int = 1,
    compile_workers: int = 1,
    compiler: str = "greedy",
    seed: int = 0,
) -> TrafficReport:
    """Closed-loop sessions against the job server.

    Unlike the open-loop schedules, arrival times here are *reactive*:
    each of ``config.users`` users draws workloads from ``mix``, keeps at
    most ``config.max_in_flight`` jobs outstanding (blocking on the oldest
    before submitting more), and thinks an exponential
    ``config.think_s``-mean pause between submissions.  This is the regime
    interactive clients impose — offered load self-limits as latency grows,
    so overload shows up as latency and shed counts rather than an
    unbounded backlog.  Determinism comes from per-user
    ``numpy.random.SeedSequence`` spawns of ``seed``: workload choices,
    think times and input seeds are all reproducible.

    Oracle checking is skipped (sessions interleave nondeterministically,
    so there is no direct-path twin to compare outputs against); the report
    carries status counts, SLO scoring and server telemetry instead.
    """
    from repro.server.jobs import Job, JobState
    from repro.server.server import JobServer

    config = config or ClosedLoopConfig()
    entries = list(mix)
    if not entries:
        raise ValueError("the traffic mix is empty")
    weights = np.array([entry.weight for entry in entries], dtype=np.float64)
    if np.any(weights <= 0.0):
        raise ValueError("mix weights must be positive")
    probs = weights / weights.sum()
    workloads = [
        build_workload(entry.workload, **dict(entry.options)) for entry in entries
    ]

    owned = server is None
    if server is None:
        server = JobServer(
            state_dir,
            compiler=compiler,
            workers=workers,
            compile_workers=compile_workers,
        )
    user_seeds = np.random.SeedSequence(seed).spawn(config.users)
    submissions: List[List[Tuple[str, str]]] = [[] for _ in range(config.users)]
    errors: List[BaseException] = []

    def session(uid: int) -> None:
        choice_seq, input_seq = user_seeds[uid].spawn(2)
        rng = np.random.default_rng(choice_seq)
        input_seeds = [
            int(value)
            for value in input_seq.generate_state(
                config.requests_per_user, dtype=np.uint64
            )
        ]
        in_flight: List[str] = []

        def wait_oldest() -> None:
            job_id = in_flight.pop(0)
            try:
                server.result(job_id, wait=True, timeout=config.result_timeout)
            except RuntimeError:
                pass  # shed or failed: classified after the run

        try:
            for request in range(config.requests_per_user):
                while len(in_flight) >= config.max_in_flight:
                    wait_oldest()
                pick = int(rng.choice(len(entries), p=probs))
                entry, workload = entries[pick], workloads[pick]
                job_id = server.submit(
                    Job(
                        source=workload.source,
                        compiler=entry.compiler or workload.compiler,
                        backend=entry.backend or workload.backend,
                        seed=input_seeds[request],
                        input_range=workload.input_range,
                        priority=entry.priority,
                        name=f"{workload.name}/u{uid}.{request}",
                    )
                )
                in_flight.append(job_id)
                submissions[uid].append((job_id, workload.name))
                if config.think_s > 0.0:
                    time.sleep(float(rng.exponential(config.think_s)))
            while in_flight:
                wait_oldest()
        except BaseException as exc:  # surfaced to the caller below
            errors.append(exc)

    start = time.perf_counter()
    try:
        server.start()
        threads = [
            threading.Thread(
                target=session, args=(uid,), name=f"closed-loop-user-{uid}"
            )
            for uid in range(config.users)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        server.stop()
        wall_s = time.perf_counter() - start
        if errors:
            raise errors[0]

        report = TrafficReport(
            path="closed-loop",
            jobs=sum(len(user) for user in submissions),
            wall_s=wall_s,
            correct=0,
            verified_jobs=0,
            telemetry=server.telemetry.snapshot(),
        )
        policy = getattr(server, "slo", None)
        slo_ok = 0 if policy is not None else None
        for user in submissions:
            for job_id, name in user:
                report.per_workload[name] = report.per_workload.get(name, 0) + 1
                job = server.get(job_id)
                if job.status is JobState.SHED:
                    report.shed += 1
                    continue
                if job.status is not JobState.COMPLETED:
                    report.failed += 1
                    continue
                report.completed += 1
                if policy is not None:
                    budget = policy.wait_budget(job.priority)
                    wait_s = (
                        job.started_at or job.submitted_at
                    ) - job.submitted_at
                    if budget is None or wait_s <= budget:
                        slo_ok += 1
                payload = server.result(job_id)
                if payload.get("verified", False):
                    report.verified_jobs += 1
                    if payload.get("correct", False):
                        report.correct += 1
        report.slo_ok = slo_ok
    finally:
        if owned:
            server.close()
    return report


#: Workload set the committed benchmark covers (>= 5, spanning all suites).
DEFAULT_BENCH_WORKLOADS = (
    "dot-product",
    "box-blur",
    "matrix-multiply",
    "max-tree",
    "hamming-distance",
    "tree-ensemble",
    "nn-linear",
)


def benchmark_workloads(
    names: Optional[Sequence[str]] = None,
    *,
    backends: Sequence[str] = ("reference", "vector-vm"),
    batch: int = 16,
    traffic_jobs: int = 60,
    rate: Optional[float] = None,
    seed: int = 0,
    workers: int = 1,
) -> Dict[str, object]:
    """The payload behind ``BENCH_workloads.json`` / ``bench-workloads``.

    Two sections:

    * ``per_workload`` — each named workload executed as one ``batch`` on
      every backend, via direct ``api.execute_batch`` *and* via a dedicated
      ``JobServer`` fed the same per-item seeds; the row records both
      throughputs and asserts the two paths' outputs are bit-identical;
    * ``mixed_traffic`` — the :func:`default_mix` schedule pushed through
      the server and the direct path, with telemetry-derived wait/run
      histograms and coalescing rates.
    """
    import repro
    from repro import api
    from repro.server.jobs import Job
    from repro.server.server import JobServer

    rows: List[Dict[str, object]] = []
    for name in names or DEFAULT_BENCH_WORKLOADS:
        workload = build_workload(name)
        report = api.compile(workload.source, workload.compiler, name=workload.name)
        item_seeds = api.derive_batch_seeds(seed, batch)
        inputs = [workload.sample_inputs(item_seed) for item_seed in item_seeds]
        expected = [workload.expected(item) for item in inputs]
        for backend in backends:
            direct_start = time.perf_counter()
            outcome = api.execute_batch(report, inputs=inputs, backend=backend)
            direct_wall = time.perf_counter() - direct_start

            server = JobServer(backend=backend, compiler=workload.compiler, workers=workers)
            try:
                # Warm the server's compile memo outside the timed window —
                # the direct path runs on a precompiled report, so the timed
                # comparison must cover execution + orchestration on both
                # sides, not compilation on one.
                server.submit(
                    Job(
                        source=workload.source,
                        compiler=workload.compiler,
                        seed=10_000,
                        input_range=workload.input_range,
                        name=f"{workload.name}/warmup",
                    )
                )
                server.drain()
                job_ids = [
                    server.submit(
                        Job(
                            source=workload.source,
                            compiler=workload.compiler,
                            seed=item_seed,
                            input_range=workload.input_range,
                            name=workload.name,
                        )
                    )
                    for item_seed in item_seeds
                ]
                server_start = time.perf_counter()
                server.drain()
                server_wall = time.perf_counter() - server_start
                server_outputs = [
                    list((server.result(job_id).get("outputs") or [[]])[0])
                    for job_id in job_ids
                ]
                counters = server.telemetry.snapshot()["counters"]
            finally:
                server.close()

            rows.append(
                {
                    "workload": workload.name,
                    "registered_as": name,
                    "suite": workload.suite,
                    "compiler": workload.compiler,
                    "backend": backend,
                    "batch": batch,
                    "verified": outcome.verified,
                    "all_correct": outcome.all_correct,
                    "oracle_correct": (
                        outcome.outputs == expected if outcome.verified else None
                    ),
                    "direct_wall_s": direct_wall,
                    "direct_throughput_per_s": (
                        batch / direct_wall if direct_wall > 0 else 0.0
                    ),
                    "server_wall_s": server_wall,
                    "server_throughput_per_s": (
                        batch / server_wall if server_wall > 0 else 0.0
                    ),
                    "server_bit_identical": server_outputs == outcome.outputs,
                    "server_coalesced_jobs": counters.get("coalesced_jobs", 0),
                }
            )

    schedule = generate_schedule(default_mix(), traffic_jobs, seed=seed, rate=rate)
    server_report = run_server_traffic(schedule, workers=workers)
    direct_report = run_direct_traffic(schedule)
    return {
        "version": repro.__version__,
        "seed": seed,
        "backends": list(backends),
        "per_workload": rows,
        "mixed_traffic": {
            "jobs": traffic_jobs,
            "rate_jobs_per_s": rate,
            "mix": [
                {
                    "workload": entry.workload,
                    "weight": entry.weight,
                    "priority": entry.priority,
                    "options": dict(entry.options),
                }
                for entry in default_mix()
            ],
            "server": server_report.as_dict(),
            "direct": direct_report.as_dict(),
            "bit_identical": server_report.outputs == direct_report.outputs,
            "server_speedup_vs_direct": (
                direct_report.wall_s / server_report.wall_s
                if server_report.wall_s > 0
                else 0.0
            ),
        },
    }


def summarize_benchmark(payload: Mapping[str, object]) -> List[str]:
    """Human-readable lines for a :func:`benchmark_workloads` payload.

    The single renderer behind both front-ends (``repro bench-workloads``
    and ``scripts/bench_workloads.py``), so the table cannot drift between
    them.
    """
    lines = [
        f"{row['workload']:<24} {row['backend']:<10} "
        f"direct {row['direct_throughput_per_s']:8.1f}/s  "
        f"server {row['server_throughput_per_s']:8.1f}/s  "
        f"identical={row['server_bit_identical']}  correct={row['all_correct']}"
        for row in payload["per_workload"]
    ]
    traffic = payload["mixed_traffic"]
    lines.append(
        f"mixed traffic: {traffic['jobs']} jobs  server "
        f"{traffic['server']['throughput_jobs_per_s']:.1f}/s  direct "
        f"{traffic['direct']['throughput_jobs_per_s']:.1f}/s  coalesced "
        f"{traffic['server']['coalescing']['job_coalescing_rate']:.0%}  "
        f"bit_identical={traffic['bit_identical']}"
    )
    return lines


def benchmark_problems(
    payload: Mapping[str, object],
    *,
    min_workloads: int = 5,
    min_backends: int = 2,
) -> List[str]:
    """Acceptance-bar violations of a :func:`benchmark_workloads` payload.

    Empty means the payload passes: enough workload/backend coverage, every
    row bit-identical across the server and direct paths, every verified
    output correct (reference *and* oracle), and a coalescing mixed-traffic
    pass.  Shared by the ``--check`` mode of ``scripts/bench_workloads.py``
    and the exit status of ``repro bench-workloads``.
    """
    rows = payload["per_workload"]
    problems: List[str] = []
    workload_names = {row["workload"] for row in rows}
    backend_names = {row["backend"] for row in rows}
    if len(workload_names) < min_workloads:
        problems.append(
            f"only {len(workload_names)} workloads covered, need >= {min_workloads}"
        )
    if len(backend_names) < min_backends:
        problems.append(
            f"only {len(backend_names)} backends covered, need >= {min_backends}"
        )
    for row in rows:
        if not row["server_bit_identical"]:
            problems.append(f"{row['workload']}/{row['backend']}: server differs")
        if row["verified"] and not row["all_correct"]:
            problems.append(f"{row['workload']}/{row['backend']}: incorrect outputs")
        if row["verified"] and row["oracle_correct"] is False:
            problems.append(f"{row['workload']}/{row['backend']}: oracle mismatch")
    traffic = payload["mixed_traffic"]
    if not traffic["bit_identical"]:
        problems.append("mixed traffic: server and direct outputs differ")
    if traffic["server"]["oracle_mismatches"] or traffic["direct"]["oracle_mismatches"]:
        problems.append("mixed traffic: oracle mismatches")
    if traffic["server"]["coalescing"]["batches_coalesced"] <= 0:
        problems.append("mixed traffic: server coalesced nothing")
    return problems
