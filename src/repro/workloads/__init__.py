"""The workload suite: registered end-to-end scenarios + mixed traffic.

Everything the compile/execute/server stack ran before this package was a
hand-typed s-expression; the paper's kernels lived off to the side in
:mod:`repro.kernels` as harness-only objects.  This package closes that
gap with the system's third registry (after compilers and backends):

* :mod:`repro.workloads.registry` — ``@register_workload`` and the
  :class:`Workload` model: source circuit, seeded input sampler (the
  facade's ``sample_named_inputs`` contract), expected-output oracle and
  default compiler/backend per scenario;
* :mod:`repro.workloads.suites` — the Coyote suite, the Porcupine kernels
  and polynomial tree ensembles as parameterized workloads;
* :mod:`repro.workloads.neural` — a quantized NN linear layer lowered
  through the IR, oracle-checked against the numpy autograd forward pass;
* :mod:`repro.workloads.traffic` — the mixed-traffic load generator: an
  open-loop arrival schedule over a weighted workload mix (priorities and
  per-workload compiler/backend choices included), driven through the
  :class:`~repro.server.server.JobServer` and through direct
  ``api.execute_batch``, reporting throughput, wait/latency histograms and
  coalescing rates — plus closed-loop sessions
  (:func:`run_closed_loop_traffic`) and deliberately-over-capacity
  schedules (:func:`generate_overload_schedule`) for the overload bench,
  with goodput/shed/SLO accounting in :class:`TrafficReport`.

``repro.api`` exposes ``run_workload``/``list_workloads``, the CLI adds
``workloads`` and ``bench-workloads``, and ``scripts/bench_workloads.py``
writes the committed ``BENCH_workloads.json``.
"""

from repro.workloads.registry import (
    Workload,
    WorkloadInfo,
    available_workloads,
    build_workload,
    get_workload,
    register_workload,
    workload_info,
)
from repro.workloads.traffic import (
    Arrival,
    ClosedLoopConfig,
    MixEntry,
    TrafficReport,
    benchmark_problems,
    benchmark_workloads,
    default_mix,
    generate_overload_schedule,
    generate_schedule,
    overload_mix,
    run_closed_loop_traffic,
    run_direct_traffic,
    run_server_traffic,
    summarize_benchmark,
)

__all__ = [
    "Workload",
    "WorkloadInfo",
    "register_workload",
    "available_workloads",
    "workload_info",
    "build_workload",
    "get_workload",
    "MixEntry",
    "Arrival",
    "TrafficReport",
    "ClosedLoopConfig",
    "default_mix",
    "overload_mix",
    "generate_schedule",
    "generate_overload_schedule",
    "run_server_traffic",
    "run_direct_traffic",
    "run_closed_loop_traffic",
    "benchmark_workloads",
    "summarize_benchmark",
    "benchmark_problems",
]
