"""Built-in workloads over the paper's kernel suites.

Every kernel family the evaluation exercises, re-expressed as registered,
parameterized end-to-end workloads: the Coyote suite (matrix multiply, Max,
Sort), the Porcupine kernels (dot product, box blur, L2/Hamming distance)
and polynomial **tree ensembles** — several :func:`~repro.kernels.trees`
trees summed into one circuit, the classic shape of encrypted tree-ensemble
inference.  Until now these kernels only ran through the experiment harness
as pre-built :class:`~repro.kernels.registry.Benchmark` objects; as
workloads they flow through ``repro.api`` and the job server exactly the
way client-submitted s-expressions do.
"""

from __future__ import annotations

from functools import reduce

from repro.workloads.registry import Workload, register_workload

__all__ = [
    "matrix_multiply_workload",
    "max_tree_workload",
    "sort_network_workload",
    "dot_product_workload",
    "box_blur_workload",
    "l2_distance_workload",
    "hamming_distance_workload",
    "tree_ensemble_workload",
]


def _from_program(program, *, suite: str, input_range: int, compiler: str) -> Workload:
    from repro.ir.printer import to_sexpr

    return Workload(
        name=program.name,
        suite=suite,
        source=to_sexpr(program.output_expr),
        input_range=input_range,
        compiler=compiler,
    )


# -- the Coyote suite -------------------------------------------------------
@register_workload("matrix-multiply", suite="coyote")
def matrix_multiply_workload(size: int = 3) -> Workload:
    """Unrolled ``size x size`` encrypted matrix multiplication."""
    from repro.kernels.coyote_suite import matrix_multiply

    return _from_program(
        matrix_multiply(size), suite="coyote", input_range=4, compiler="greedy"
    )


@register_workload("max-tree", suite="coyote")
def max_tree_workload(size: int = 4) -> Workload:
    """Tournament-style Max surrogate over ``size`` encrypted values."""
    from repro.kernels.coyote_suite import max_tree

    return _from_program(
        max_tree(size), suite="coyote", input_range=4, compiler="greedy"
    )


@register_workload("sort-network", suite="coyote")
def sort_network_workload(size: int = 3) -> Workload:
    """Odd-even transposition Sort surrogate over ``size`` values."""
    from repro.kernels.coyote_suite import sort_network

    return _from_program(
        sort_network(size), suite="coyote", input_range=3, compiler="greedy"
    )


# -- the Porcupine kernels --------------------------------------------------
@register_workload("dot-product", suite="porcupine")
def dot_product_workload(size: int = 8) -> Workload:
    """Dot product of two encrypted ``size``-vectors."""
    from repro.kernels.porcupine import dot_product

    return _from_program(
        dot_product(size), suite="porcupine", input_range=7, compiler="greedy"
    )


@register_workload("box-blur", suite="porcupine")
def box_blur_workload(size: int = 3) -> Workload:
    """``size x size`` box blur over an encrypted image patch."""
    from repro.kernels.porcupine import box_blur

    return _from_program(
        box_blur(size), suite="porcupine", input_range=7, compiler="greedy"
    )


@register_workload("l2-distance", suite="porcupine")
def l2_distance_workload(size: int = 4) -> Workload:
    """Squared L2 distance between two encrypted ``size``-vectors."""
    from repro.kernels.porcupine import l2_distance

    return _from_program(
        l2_distance(size), suite="porcupine", input_range=7, compiler="greedy"
    )


@register_workload("hamming-distance", suite="porcupine")
def hamming_distance_workload(size: int = 4) -> Workload:
    """Hamming distance between two encrypted binary ``size``-vectors."""
    from repro.kernels.porcupine import hamming_distance

    # input_range=1 keeps the sampled inputs binary, the kernel's contract.
    return _from_program(
        hamming_distance(size), suite="porcupine", input_range=1, compiler="greedy"
    )


# -- tree ensembles ---------------------------------------------------------
@register_workload("tree-ensemble", suite="trees")
def tree_ensemble_workload(
    trees: int = 3,
    fullness: int = 50,
    homogeneity: int = 50,
    depth: int = 4,
    seed: int = 0,
) -> Workload:
    """``trees`` polynomial trees summed into one ensemble circuit.

    Each member tree is generated with its own derived seed, so the
    ensemble mixes tree shapes the way a trained forest mixes estimators;
    the ensemble output is the sum of the member outputs (majority-vote
    style aggregation in the arithmetic surrogate).
    """
    from repro.ir.nodes import Add
    from repro.ir.printer import to_sexpr
    from repro.kernels.trees import polynomial_tree

    if trees < 1:
        raise ValueError("tree-ensemble needs at least one tree")
    members = [
        polynomial_tree(fullness, homogeneity, depth, seed=seed * 1000 + index)
        for index in range(trees)
    ]
    ensemble = reduce(Add, members)
    return Workload(
        name=f"tree_ensemble_{trees}x{depth}",
        suite="trees",
        source=to_sexpr(ensemble),
        input_range=2,
        compiler="initial",
    )
