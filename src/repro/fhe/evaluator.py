"""Encryptor, decryptor and evaluator of the simulated BFV scheme.

The API mirrors Microsoft SEAL's so compiled circuits read naturally:

.. code-block:: python

    context = FHEContext(BFVParameters.default())
    ct_a = context.encryptor.encrypt(context.encoder.encode([1, 2, 3]))
    ct_b = context.encryptor.encrypt(context.encoder.encode([4, 5, 6]))
    ct_c = context.evaluator.add(ct_a, ct_b)
    context.decryptor.invariant_noise_budget(ct_c)   # remaining budget, bits
    context.encoder.decode(context.decryptor.decrypt(ct_c), 3)  # [5, 7, 9]

Every operation updates the result's noise budget according to the
:class:`~repro.fhe.noise.NoiseModel` and meters simulated latency through an
:class:`~repro.fhe.meter.ExecutionMeter`, which the execution backends use
to report execution times, operation counts and consumed noise budget.  Each
evaluator owns one meter; executions wanting isolated accounting construct a
fresh :class:`Evaluator` (or pass their own meter) instead of resetting
shared state.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.exceptions import NoiseBudgetExhausted, RotationKeyMissing
from repro.fhe.ciphertext import Ciphertext, Plaintext
from repro.fhe.encoder import BatchEncoder
from repro.fhe.keys import GaloisKeys, KeyGenerator, PublicKey, RelinKeys, SecretKey
from repro.fhe.latency import LatencyModel
from repro.fhe.meter import ExecutionMeter, OperationLog
from repro.fhe.noise import NoiseModel
from repro.fhe.params import BFVParameters

__all__ = [
    "ExecutionMeter",
    "OperationLog",
    "FHEContext",
    "Encryptor",
    "Decryptor",
    "Evaluator",
]


class FHEContext:
    """Bundles parameters, keys, encoder and evaluator for one computation."""

    def __init__(
        self,
        params: Optional[BFVParameters] = None,
        galois_steps: Optional[List[int]] = None,
        strict_noise: bool = False,
    ) -> None:
        self.params = params if params is not None else BFVParameters.default()
        self.noise_model = NoiseModel(self.params)
        self.latency_model = LatencyModel(self.params)
        self.encoder = BatchEncoder(self.params)
        self.keygen = KeyGenerator(self.params)
        self.secret_key: SecretKey = self.keygen.secret_key()
        self.public_key: PublicKey = self.keygen.create_public_key()
        self.relin_keys: RelinKeys = self.keygen.create_relin_keys()
        self.galois_keys: GaloisKeys = self.keygen.create_galois_keys(galois_steps)
        self.encryptor = Encryptor(self)
        self.decryptor = Decryptor(self)
        self.evaluator = Evaluator(self, strict_noise=strict_noise)

    @property
    def slot_count(self) -> int:
        return self.params.slot_count


class Encryptor:
    """Encrypts plaintexts (or raw integer vectors) into ciphertexts."""

    def __init__(self, context: FHEContext) -> None:
        self._context = context

    def encrypt(self, plaintext: Plaintext) -> Ciphertext:
        """Encrypt ``plaintext`` into a fresh ciphertext with full budget."""
        params = self._context.params
        return Ciphertext(
            plaintext.slots.copy(),
            params.plain_modulus,
            noise_budget=params.initial_noise_budget,
        )

    def encrypt_values(self, values: List[int]) -> Ciphertext:
        """Encode and encrypt a raw integer vector in one call."""
        return self.encrypt(self._context.encoder.encode(values))


class Decryptor:
    """Decrypts ciphertexts and reports their remaining noise budget."""

    def __init__(self, context: FHEContext) -> None:
        self._context = context

    def decrypt(self, ciphertext: Ciphertext) -> Plaintext:
        """Decrypt ``ciphertext``.

        Raises :class:`NoiseBudgetExhausted` when the budget is zero or
        negative, mirroring SEAL's decryption failure.
        """
        if ciphertext.noise_budget <= 0.0:
            raise NoiseBudgetExhausted(
                "noise budget exhausted; decryption would be incorrect",
                consumed_bits=self._context.params.initial_noise_budget,
            )
        return Plaintext(ciphertext.slots.copy(), ciphertext.plain_modulus)

    def invariant_noise_budget(self, ciphertext: Ciphertext) -> float:
        """Remaining invariant noise budget in bits (clamped at zero)."""
        return max(0.0, ciphertext.noise_budget)

    def consumed_noise_budget(self, ciphertext: Ciphertext) -> float:
        """Noise budget consumed so far (initial minus remaining)."""
        initial = self._context.params.initial_noise_budget
        return initial - self.invariant_noise_budget(ciphertext)


class Evaluator:
    """Homomorphic operations with noise and latency accounting."""

    def __init__(
        self,
        context: FHEContext,
        strict_noise: bool = False,
        meter: Optional[ExecutionMeter] = None,
    ) -> None:
        self._context = context
        #: When True, operations raise as soon as the budget is exhausted;
        #: otherwise the budget simply clamps at zero and decryption fails.
        self.strict_noise = strict_noise
        #: Per-execution accounting.  Created fresh per evaluator, so two
        #: evaluators never share (or silently accumulate into) one log.
        self.meter = meter if meter is not None else ExecutionMeter.for_context(context)

    # -- helpers -------------------------------------------------------------
    @property
    def log(self) -> OperationLog:
        """The operation log of this evaluator's meter."""
        return self.meter.log

    @property
    def _noise(self) -> NoiseModel:
        return self._context.noise_model

    @property
    def _latency(self) -> LatencyModel:
        return self._context.latency_model

    def _result(
        self,
        slots: np.ndarray,
        noise_budget: float,
        operation: str,
        size: int = 2,
        mult_count: int = 0,
    ) -> Ciphertext:
        if self.strict_noise and noise_budget <= 0.0:
            raise NoiseBudgetExhausted(
                f"noise budget exhausted during {operation}",
                consumed_bits=self._context.params.initial_noise_budget,
            )
        self.meter.record(operation)
        return Ciphertext(
            slots,
            self._context.params.plain_modulus,
            noise_budget=noise_budget,
            size=size,
            mult_count=mult_count,
        )

    @staticmethod
    def _min_budget(*ciphertexts: Ciphertext) -> float:
        return min(ct.noise_budget for ct in ciphertexts)

    # -- arithmetic ----------------------------------------------------------
    def add(self, lhs: Ciphertext, rhs: Ciphertext) -> Ciphertext:
        """Slot-wise ciphertext addition."""
        budget = self._min_budget(lhs, rhs) - self._noise.add_cost()
        return self._result(
            lhs.slots + rhs.slots,
            budget,
            "add",
            mult_count=max(lhs.mult_count, rhs.mult_count),
        )

    def sub(self, lhs: Ciphertext, rhs: Ciphertext) -> Ciphertext:
        """Slot-wise ciphertext subtraction."""
        budget = self._min_budget(lhs, rhs) - self._noise.add_cost()
        return self._result(
            lhs.slots - rhs.slots,
            budget,
            "sub",
            mult_count=max(lhs.mult_count, rhs.mult_count),
        )

    def negate(self, operand: Ciphertext) -> Ciphertext:
        """Slot-wise negation."""
        budget = operand.noise_budget - self._noise.negate_cost()
        return self._result(
            -operand.slots, budget, "negate", mult_count=operand.mult_count
        )

    def add_plain(self, lhs: Ciphertext, plain: Plaintext) -> Ciphertext:
        """Add a plaintext to a ciphertext."""
        budget = lhs.noise_budget - self._noise.add_cost()
        return self._result(
            lhs.slots + plain.slots, budget, "add", mult_count=lhs.mult_count
        )

    def sub_plain(self, lhs: Ciphertext, plain: Plaintext) -> Ciphertext:
        """Subtract a plaintext from a ciphertext."""
        budget = lhs.noise_budget - self._noise.add_cost()
        return self._result(
            lhs.slots - plain.slots, budget, "sub", mult_count=lhs.mult_count
        )

    def multiply(self, lhs: Ciphertext, rhs: Ciphertext) -> Ciphertext:
        """Ciphertext-ciphertext multiplication (grows ciphertext size)."""
        budget = self._min_budget(lhs, rhs) - self._noise.multiply_cost()
        return self._result(
            lhs.slots * rhs.slots,
            budget,
            "multiply",
            size=lhs.size + rhs.size - 1,
            mult_count=max(lhs.mult_count, rhs.mult_count) + 1,
        )

    def square(self, operand: Ciphertext) -> Ciphertext:
        """Ciphertext squaring (cheaper than a generic multiplication)."""
        budget = operand.noise_budget - self._noise.square_cost()
        return self._result(
            operand.slots * operand.slots,
            budget,
            "square",
            size=operand.size + 1,
            mult_count=operand.mult_count + 1,
        )

    def multiply_plain(self, lhs: Ciphertext, plain: Plaintext) -> Ciphertext:
        """Ciphertext-plaintext multiplication.

        SEAL raises on transparent (all-zero) plaintext multiplications; the
        simulator accepts them but still charges the noise cost, which is the
        behaviour compilers rely on when masking.
        """
        budget = lhs.noise_budget - self._noise.multiply_plain_cost()
        return self._result(
            lhs.slots * plain.slots,
            budget,
            "multiply_plain",
            mult_count=lhs.mult_count,
        )

    def relinearize(self, operand: Ciphertext, relin_keys: Optional[RelinKeys] = None) -> Ciphertext:
        """Shrink a size-3 ciphertext back to size 2."""
        if relin_keys is None:
            relin_keys = self._context.relin_keys
        budget = operand.noise_budget - self._noise.relinearize_cost()
        return self._result(
            operand.slots.copy(),
            budget,
            "relinearize",
            size=2,
            mult_count=operand.mult_count,
        )

    def rotate(
        self,
        operand: Ciphertext,
        step: int,
        galois_keys: Optional[GaloisKeys] = None,
    ) -> Ciphertext:
        """Cyclic left rotation of the slot vector by ``step``.

        Negative steps rotate right.  Steps are normalized modulo the slot
        count first: rotation by any multiple of ``n`` is the identity (a
        budget-preserving copy, no key needed), and congruent steps are the
        same Galois automorphism — a key generated for ``step - n`` or
        ``step mod n`` applies equally.  Raises
        :class:`~repro.core.exceptions.RotationKeyMissing` when no congruent
        Galois key was generated.
        """
        if galois_keys is None:
            galois_keys = self._context.galois_keys
        n = operand.slots.shape[0]
        effective = step % n
        if effective == 0:
            return operand.copy()
        if not (
            galois_keys.supports(step)
            or galois_keys.supports(effective)
            or galois_keys.supports(effective - n)
        ):
            raise RotationKeyMissing(step)
        budget = operand.noise_budget - self._noise.rotate_cost(step)
        rotated = np.roll(operand.slots, -step)
        return self._result(rotated, budget, "rotate", mult_count=operand.mult_count)
