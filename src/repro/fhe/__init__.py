"""A BFV-style fully homomorphic encryption *simulator*.

This package stands in for Microsoft SEAL in the reproduction.  It models
exactly the aspects of BFV the paper's evaluation depends on:

* **batching** -- a plaintext/ciphertext packs ``n`` integer slots (mod the
  plaintext modulus ``t``) and every arithmetic operation is slot-wise;
* **operations** -- addition, subtraction, negation, ciphertext-ciphertext
  and ciphertext-plaintext multiplication, squaring and cyclic slot
  rotation, with Galois (rotation) keys required per rotation step;
* **noise budget** -- a freshly encrypted ciphertext starts with an
  ``initial_noise_budget`` (in bits) derived from the coefficient and
  plaintext moduli, and every operation consumes part of it; a circuit that
  exhausts the budget fails, as in SEAL;
* **latency** -- a per-operation latency model calibrated to the relative
  costs of BFV operations (add ≪ rotate ≤ ct-pt mul < ct-ct mul), used to
  report simulated execution times;
* **rotation-key selection** -- the NAF-based key selection pass of the
  paper's Appendix B.

The arithmetic is performed exactly (vectors of Python ints / numpy int64
mod ``t``), so compiled circuits can be *verified for correctness* against a
plaintext reference — which is how the test suite checks that every rewrite
rule and every compiler pass is semantics preserving.
"""

from repro.fhe.params import BFVParameters, default_coeff_modulus_bits
from repro.fhe.ciphertext import Ciphertext, Plaintext
from repro.fhe.encoder import BatchEncoder
from repro.fhe.keys import GaloisKeys, KeyGenerator, PublicKey, RelinKeys, SecretKey
from repro.fhe.noise import NoiseModel
from repro.fhe.latency import LatencyModel
from repro.fhe.evaluator import Decryptor, Encryptor, Evaluator, FHEContext
from repro.fhe.meter import ExecutionMeter, OperationLog
from repro.fhe.rotation_keys import (
    RotationKeyPlan,
    naf_decomposition,
    select_rotation_keys,
)

__all__ = [
    "BFVParameters",
    "default_coeff_modulus_bits",
    "Plaintext",
    "Ciphertext",
    "BatchEncoder",
    "SecretKey",
    "PublicKey",
    "RelinKeys",
    "GaloisKeys",
    "KeyGenerator",
    "NoiseModel",
    "LatencyModel",
    "FHEContext",
    "Encryptor",
    "Decryptor",
    "Evaluator",
    "ExecutionMeter",
    "OperationLog",
    "RotationKeyPlan",
    "naf_decomposition",
    "select_rotation_keys",
]
