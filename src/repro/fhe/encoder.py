"""Batching encoder: packs integer vectors into plaintext slots.

Mirrors SEAL's ``BatchEncoder``: a vector of up to ``n`` integers is encoded
into a single plaintext whose CRT slots hold the values modulo ``t``.  Short
vectors are zero-padded; negative values wrap modulo ``t`` and decode back to
centred representatives.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.exceptions import InvalidParameters
from repro.fhe.ciphertext import Plaintext
from repro.fhe.params import BFVParameters

__all__ = ["BatchEncoder"]


class BatchEncoder:
    """Encodes/decodes integer vectors to/from batched plaintexts."""

    def __init__(self, params: BFVParameters) -> None:
        if not params.supports_batching():
            raise InvalidParameters(
                "plain_modulus must satisfy t ≡ 1 (mod 2n) to enable batching"
            )
        self.params = params

    @property
    def slot_count(self) -> int:
        """Number of available slots (the ring dimension ``n``)."""
        return self.params.slot_count

    def encode(self, values: Sequence[int]) -> Plaintext:
        """Encode ``values`` (length ≤ ``slot_count``) into a plaintext."""
        values = list(values)
        if len(values) > self.slot_count:
            raise ValueError(
                f"cannot encode {len(values)} values into {self.slot_count} slots"
            )
        padded = values + [0] * (self.slot_count - len(values))
        return Plaintext(padded, self.params.plain_modulus)

    def encode_scalar(self, value: int) -> Plaintext:
        """Encode a scalar replicated into every slot (SEAL-style broadcast)."""
        return Plaintext(
            [int(value)] * self.slot_count, self.params.plain_modulus
        )

    def decode(self, plaintext: Plaintext, count: int | None = None) -> List[int]:
        """Decode a plaintext back to centred integer representatives.

        ``count`` limits how many leading slots are returned.
        """
        t = self.params.plain_modulus
        half = t // 2
        raw = plaintext.slots if count is None else plaintext.slots[:count]
        centred = np.where(raw > half, raw - t, raw)
        return [int(value) for value in centred]
