"""Latency model of the simulated BFV scheme.

Real FHE operation latencies scale roughly with ``n * log2(n)`` (the NTT
size) and keep a stable relative ordering: additions are orders of magnitude
cheaper than ciphertext-ciphertext multiplications, rotations and
ciphertext-plaintext multiplications sit in between.  The paper's analytical
cost model (vec add 1, rotation 50, vec mul 100, scalar 250) encodes exactly
this ordering.

The model reports *simulated milliseconds* per operation, calibrated against
published BFV measurements on a modern multicore CPU at ``n = 16384``:
ciphertext multiplication ≈ 22 ms, rotation ≈ 11 ms, plaintext
multiplication ≈ 5.5 ms, addition ≈ 0.2 ms.  Other degrees are scaled by the
``n log n`` ratio.  Only the *relative* values matter for reproducing the
paper's comparisons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from repro.fhe.params import BFVParameters

__all__ = ["LatencyModel"]

_REFERENCE_DEGREE = 16384


@dataclass(frozen=True)
class LatencyModel:
    """Per-operation simulated latency (milliseconds)."""

    params: BFVParameters
    #: Latencies at the reference degree n = 16384.
    multiply_ms: float = 22.0
    square_ms: float = 16.0
    multiply_plain_ms: float = 5.5
    rotate_ms: float = 11.0
    add_ms: float = 0.2
    negate_ms: float = 0.1
    relinearize_ms: float = 3.5
    encrypt_ms: float = 6.0
    decrypt_ms: float = 2.0
    encode_ms: float = 0.6
    #: Degree-scaled per-operation costs, precomputed once at construction so
    #: the hot interpreter loop never redoes the n·log n scaling.
    _costs: Dict[str, float] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        scale = self._scale()
        costs = {
            "multiply": self.multiply_ms,
            "square": self.square_ms,
            "multiply_plain": self.multiply_plain_ms,
            "rotate": self.rotate_ms,
            "add": self.add_ms,
            "sub": self.add_ms,
            "negate": self.negate_ms,
            "relinearize": self.relinearize_ms,
            "encrypt": self.encrypt_ms,
            "decrypt": self.decrypt_ms,
            "encode": self.encode_ms,
        }
        object.__setattr__(
            self, "_costs", {name: cost * scale for name, cost in costs.items()}
        )

    def _scale(self) -> float:
        n = self.params.poly_modulus_degree
        reference = _REFERENCE_DEGREE * math.log2(_REFERENCE_DEGREE)
        return (n * math.log2(n)) / reference

    def cost_ms(self, operation: str) -> float:
        """Simulated latency of ``operation`` in milliseconds.

        ``operation`` is one of ``multiply``, ``square``, ``multiply_plain``,
        ``rotate``, ``add``, ``sub``, ``negate``, ``relinearize``,
        ``encrypt``, ``decrypt``, ``encode``.
        """
        try:
            return self._costs[operation]
        except KeyError as exc:
            raise ValueError(f"unknown operation {operation!r}") from exc
