"""Per-execution noise/latency accounting shared by every execution backend.

Historically the :class:`~repro.fhe.evaluator.Evaluator` owned a mutable
``OperationLog`` that accumulated across executions unless callers remembered
to call ``reset_log()`` — a footgun that produced inflated latency figures
whenever two circuits ran through one context.  The accounting now lives in
an :class:`ExecutionMeter` created fresh per execution: the meter bundles the
latency and noise models with one :class:`OperationLog`, and every backend
(the SEAL-style reference interpreter, the batched vector VM, the cost-only
simulator) meters operations through the same object, so latency and
operation counts are bit-identical across backends by construction.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.fhe.latency import LatencyModel
from repro.fhe.noise import NoiseModel
from repro.fhe.params import BFVParameters

__all__ = ["OperationLog", "ExecutionMeter"]


@dataclass
class OperationLog:
    """Operation counts and simulated latency for one execution."""

    counts: Counter = field(default_factory=Counter)
    total_latency_ms: float = 0.0

    def record(self, operation: str, latency_ms: float) -> None:
        self.counts[operation] += 1
        self.total_latency_ms += latency_ms

    def as_dict(self) -> Dict[str, int]:
        return dict(self.counts)


class ExecutionMeter:
    """Latency/noise models plus a fresh :class:`OperationLog`.

    One meter accounts for exactly one execution; create a new meter (or a
    new :class:`~repro.fhe.evaluator.Evaluator`, which makes its own) for the
    next run instead of resetting shared state.
    """

    __slots__ = ("params", "latency_model", "noise_model", "log")

    def __init__(
        self,
        params: Optional[BFVParameters] = None,
        latency_model: Optional[LatencyModel] = None,
        noise_model: Optional[NoiseModel] = None,
    ) -> None:
        self.params = params if params is not None else BFVParameters.default()
        self.latency_model = (
            latency_model if latency_model is not None else LatencyModel(self.params)
        )
        self.noise_model = (
            noise_model if noise_model is not None else NoiseModel(self.params)
        )
        self.log = OperationLog()

    @classmethod
    def for_context(cls, context) -> "ExecutionMeter":
        """A meter sharing ``context``'s parameter and model objects."""
        return cls(
            params=context.params,
            latency_model=context.latency_model,
            noise_model=context.noise_model,
        )

    def record(self, operation: str) -> None:
        """Count one ``operation`` and charge its simulated latency."""
        self.log.record(operation, self.latency_model.cost_ms(operation))

    # -- accessors mirrored from the log ------------------------------------
    @property
    def total_latency_ms(self) -> float:
        return self.log.total_latency_ms

    @property
    def counts(self) -> Counter:
        return self.log.counts

    def operation_counts(self) -> Dict[str, int]:
        return self.log.as_dict()
