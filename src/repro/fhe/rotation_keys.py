"""Rotation-key selection via non-adjacent-form decomposition (Appendix B).

Each distinct rotation step requires its own Galois key, and keys are several
megabytes each, so generating one key per step quickly becomes expensive.
CHEHAB instead selects a bounded set of keys: some rotation steps are kept
as-is, and the rest are *decomposed* into sums of signed powers of two using
their non-adjacent form (NAF), e.g. ``3 = 4 - 1`` and ``5 = 4 + 1``.  A
rotation by a decomposed step is then executed as a short sequence of
rotations by generated steps.

:func:`select_rotation_keys` reproduces the selection procedure: it greedily
decomposes the steps whose NAF components are already (or cheaply) covered,
keeping the final key count within the user bound ``beta`` (default
``2*log2(n)``), and returns a :class:`RotationKeyPlan` describing which keys
to generate and how every original step is realised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

__all__ = ["naf_decomposition", "RotationKeyPlan", "select_rotation_keys"]


def naf_decomposition(step: int) -> List[int]:
    """Signed power-of-two decomposition of ``step`` in non-adjacent form.

    Returns the list of signed components whose sum equals ``step``; e.g.
    ``naf_decomposition(3) == [-1, 4]`` and ``naf_decomposition(5) == [1, 4]``.
    The empty list is returned for ``step == 0``.
    """
    value = int(step)
    sign = 1
    if value < 0:
        sign = -1
        value = -value
    components: List[int] = []
    power = 1
    while value > 0:
        if value % 2 == 1:
            remainder = value % 4
            if remainder == 3:
                digit = -1
                value += 1
            else:
                digit = 1
                value -= 1
            components.append(sign * digit * power)
        value //= 2
        power *= 2
    return sorted(components, key=abs)


@dataclass
class RotationKeyPlan:
    """The outcome of rotation-key selection.

    Attributes
    ----------
    generated_steps:
        The steps for which Galois keys are generated.
    decomposed:
        Maps each original step that was decomposed to the sequence of
        generated steps whose rotations realise it.
    direct:
        The original steps kept without decomposition (a key is generated
        for each of them).
    """

    generated_steps: Tuple[int, ...]
    decomposed: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    direct: Tuple[int, ...] = ()

    @property
    def key_count(self) -> int:
        """Number of Galois keys that must be generated."""
        return len(self.generated_steps)

    def realization(self, step: int) -> Tuple[int, ...]:
        """The sequence of generated-step rotations that realises ``step``."""
        if step == 0:
            return ()
        if step in self.decomposed:
            return self.decomposed[step]
        if step in self.direct or step in self.generated_steps:
            return (step,)
        raise KeyError(f"step {step} is not covered by this rotation-key plan")

    def rotation_count(self, step: int) -> int:
        """Number of physical rotations needed to realise ``step``."""
        return len(self.realization(step))


def select_rotation_keys(
    steps: Iterable[int],
    slot_count: int,
    beta: int | None = None,
) -> RotationKeyPlan:
    """Select which Galois keys to generate for the rotation steps ``steps``.

    Parameters
    ----------
    steps:
        The distinct rotation steps used by the program (non-zero).
    slot_count:
        The ring dimension ``n``; the default bound ``beta`` is
        ``2*log2(n)``.
    beta:
        Maximum number of keys to generate.  ``None`` uses the default.

    The algorithm follows Appendix B: compute the NAF decomposition of every
    step, then greedily move steps into the "decomposed" set Ω, preferring
    steps whose NAF components are shared by many other steps, until the
    number of keys — direct steps plus the union of NAF components of Ω —
    fits within ``beta``.  If even full decomposition cannot satisfy
    ``beta``, the plan with every step decomposed is returned (its key count
    is the power-of-two basis, which is the minimum achievable).
    """
    unique_steps = sorted({int(s) for s in steps if int(s) != 0}, key=abs)
    if beta is None:
        beta = 2 * max(1, (slot_count - 1).bit_length())
    if beta < 1:
        raise ValueError("beta must be at least 1")

    decompositions: Dict[int, Tuple[int, ...]] = {
        step: tuple(naf_decomposition(step)) for step in unique_steps
    }

    # Start with every step direct; decompose greedily until within budget.
    direct: Set[int] = set(unique_steps)
    decomposed: Set[int] = set()

    def key_set() -> Set[int]:
        keys = set(direct)
        for step in decomposed:
            keys.update(decompositions[step])
        return keys

    # Steps that are already powers of two gain nothing from decomposition.
    def decomposition_gain(step: int, current_keys: Set[int]) -> int:
        components = set(decompositions[step])
        new_keys = components - (current_keys - {step})
        # Gain: removing the step's own key minus any new component keys.
        return 1 - len(new_keys - {step})

    while len(key_set()) > beta:
        current = key_set()
        candidates = [step for step in direct if len(decompositions[step]) > 1]
        if not candidates:
            break
        best = max(candidates, key=lambda step: (decomposition_gain(step, current), abs(step)))
        direct.discard(best)
        decomposed.add(best)

    generated = sorted(key_set(), key=abs)
    plan = RotationKeyPlan(
        generated_steps=tuple(generated),
        decomposed={step: decompositions[step] for step in sorted(decomposed, key=abs)},
        direct=tuple(sorted(direct, key=abs)),
    )
    return plan
