"""Plaintext and ciphertext objects of the simulated BFV scheme.

A :class:`Plaintext` is a batched vector of slot values (integers mod ``t``).
A :class:`Ciphertext` additionally tracks its remaining *noise budget* (in
bits) and its *size* (number of polynomial components; multiplication grows
it until relinearization shrinks it back to 2), mirroring SEAL's behaviour.

The slot data itself is stored exactly, so decrypting and decoding a
ciphertext always yields the true computation result; noise exhaustion is
reported through the budget rather than by corrupting slots, which lets the
test-suite verify both correctness and noise accounting independently.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

__all__ = ["Plaintext", "Ciphertext"]


class Plaintext:
    """A batched plaintext: ``slot_count`` integers modulo ``plain_modulus``."""

    __slots__ = ("slots", "plain_modulus")

    def __init__(self, slots: Sequence[int], plain_modulus: int) -> None:
        array = np.asarray(list(slots), dtype=np.int64) % plain_modulus
        self.slots = array
        self.plain_modulus = int(plain_modulus)

    @property
    def slot_count(self) -> int:
        return int(self.slots.shape[0])

    def to_list(self) -> List[int]:
        """Slot values as plain Python ints."""
        return [int(value) for value in self.slots]

    def is_zero(self) -> bool:
        """True when every slot is zero."""
        return bool(np.all(self.slots == 0))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Plaintext):
            return NotImplemented
        return (
            self.plain_modulus == other.plain_modulus
            and self.slots.shape == other.slots.shape
            and bool(np.all(self.slots == other.slots))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        head = ", ".join(str(int(v)) for v in self.slots[:8])
        return f"Plaintext([{head}...], t={self.plain_modulus})"


class Ciphertext:
    """A simulated BFV ciphertext.

    Attributes
    ----------
    slots:
        The (exact) batched values the ciphertext encrypts.
    noise_budget:
        Remaining invariant noise budget in bits.  Reaching zero means the
        ciphertext can no longer be decrypted correctly.
    size:
        Number of polynomial components.  Fresh ciphertexts have size 2;
        every ciphertext-ciphertext multiplication adds one until
        relinearization restores size 2.
    """

    __slots__ = ("slots", "plain_modulus", "noise_budget", "size", "mult_count")

    def __init__(
        self,
        slots: Sequence[int] | np.ndarray,
        plain_modulus: int,
        noise_budget: float,
        size: int = 2,
        mult_count: int = 0,
    ) -> None:
        self.slots = np.asarray(slots, dtype=np.int64) % plain_modulus
        self.plain_modulus = int(plain_modulus)
        self.noise_budget = float(noise_budget)
        self.size = int(size)
        self.mult_count = int(mult_count)

    @property
    def slot_count(self) -> int:
        return int(self.slots.shape[0])

    def copy(self) -> "Ciphertext":
        """Deep copy (slot data and noise state)."""
        return Ciphertext(
            self.slots.copy(),
            self.plain_modulus,
            self.noise_budget,
            self.size,
            self.mult_count,
        )

    def is_transparent(self) -> bool:
        """True when the ciphertext trivially encrypts zero in every slot."""
        return bool(np.all(self.slots == 0))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        head = ", ".join(str(int(v)) for v in self.slots[:8])
        return (
            f"Ciphertext([{head}...], noise_budget={self.noise_budget:.1f} bits, "
            f"size={self.size})"
        )
