"""BFV encryption parameters.

The parameter triple ``{n, t, q}`` (polynomial modulus degree, plaintext
modulus, ciphertext/coefficient modulus) defines both the slot count and the
noise budget available to a circuit.  Defaults follow SEAL's
``CoeffModulus::BFVDefault`` tables for 128-bit security and the paper's
evaluation setup (``n = 16384``, 20-bit plaintext modulus, 389-bit total
coefficient modulus, 369-bit initial noise budget).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import InvalidParameters

__all__ = ["BFVParameters", "default_coeff_modulus_bits", "default_plain_modulus"]

#: Total coefficient-modulus bit counts recommended by SEAL for 128-bit
#: security, indexed by polynomial modulus degree.
_BFV_DEFAULT_COEFF_BITS = {
    1024: 27,
    2048: 54,
    4096: 109,
    8192: 218,
    16384: 438,
    32768: 881,
}

#: The paper reports a 389-bit coefficient modulus for n = 16384 (SEAL's
#: BFVDefault drops one prime for the special modulus); we follow the paper.
_PAPER_COEFF_BITS = {16384: 389}

#: Plaintext moduli supporting batching (t ≡ 1 mod 2n) per degree, ~20 bits.
_BATCHING_PLAIN_MODULUS = {
    1024: 12289,
    2048: 40961,
    4096: 40961,
    8192: 65537,
    16384: 786433,
    32768: 786433,
}


def default_coeff_modulus_bits(poly_modulus_degree: int) -> int:
    """Total coefficient modulus bits at 128-bit security for ``n``."""
    if poly_modulus_degree in _PAPER_COEFF_BITS:
        return _PAPER_COEFF_BITS[poly_modulus_degree]
    try:
        return _BFV_DEFAULT_COEFF_BITS[poly_modulus_degree]
    except KeyError as exc:
        raise InvalidParameters(
            f"no default coefficient modulus for n={poly_modulus_degree}"
        ) from exc


def default_plain_modulus(poly_modulus_degree: int) -> int:
    """A batching-compatible plaintext modulus (t ≡ 1 mod 2n) for ``n``."""
    try:
        return _BATCHING_PLAIN_MODULUS[poly_modulus_degree]
    except KeyError as exc:
        raise InvalidParameters(
            f"no default plaintext modulus for n={poly_modulus_degree}"
        ) from exc


@dataclass(frozen=True)
class BFVParameters:
    """Encryption parameters of the simulated BFV scheme.

    Attributes
    ----------
    poly_modulus_degree:
        The ring dimension ``n``; also the number of batching slots.
    plain_modulus:
        The plaintext modulus ``t``.  Slot values live in ``Z_t``.
    coeff_modulus_bits:
        Total bit size of the ciphertext modulus ``q``.  Together with
        ``t`` this determines the initial noise budget,
        ``coeff_modulus_bits - plain_modulus_bits``.
    """

    poly_modulus_degree: int = 16384
    plain_modulus: int = 786433
    coeff_modulus_bits: int = 389

    def __post_init__(self) -> None:
        n = self.poly_modulus_degree
        if n < 2 or (n & (n - 1)) != 0:
            raise InvalidParameters(
                f"poly_modulus_degree must be a power of two >= 2, got {n}"
            )
        if self.plain_modulus < 2:
            raise InvalidParameters("plain_modulus must be at least 2")
        if self.coeff_modulus_bits <= self.plain_modulus_bits:
            raise InvalidParameters(
                "coeff_modulus_bits must exceed the plaintext modulus bit size"
            )

    # -- derived quantities --------------------------------------------------
    @property
    def slot_count(self) -> int:
        """Number of batching slots (equal to ``n``)."""
        return self.poly_modulus_degree

    @property
    def plain_modulus_bits(self) -> int:
        """Bit size of the plaintext modulus."""
        return max(1, self.plain_modulus.bit_length())

    @property
    def initial_noise_budget(self) -> float:
        """Noise budget (bits) of a freshly encrypted ciphertext.

        Matches SEAL's observation in the paper's setup:
        ``total_coeff_modulus_bits - plain_modulus_bits`` (389 - 20 = 369).
        """
        return float(self.coeff_modulus_bits - self.plain_modulus_bits)

    def supports_batching(self) -> bool:
        """Whether ``t ≡ 1 (mod 2n)`` so CRT batching is available."""
        return self.plain_modulus % (2 * self.poly_modulus_degree) == 1

    @classmethod
    def default(cls, poly_modulus_degree: int = 16384) -> "BFVParameters":
        """Parameters matching the paper's evaluation environment."""
        return cls(
            poly_modulus_degree=poly_modulus_degree,
            plain_modulus=default_plain_modulus(poly_modulus_degree),
            coeff_modulus_bits=default_coeff_modulus_bits(poly_modulus_degree),
        )
