"""Noise-budget model of the simulated BFV scheme.

BFV encryption adds noise for security; every homomorphic operation grows
that noise, and once it exceeds the bound permitted by ``q``/``t`` the
ciphertext no longer decrypts correctly.  SEAL exposes the *remaining
invariant noise budget* in bits; the paper reports the *consumed* budget
(initial minus remaining) per benchmark.

The model below captures the qualitative behaviour that drives the paper's
results:

* ciphertext-ciphertext multiplication consumes by far the most budget
  (roughly ``plain_modulus_bits + log2(n)/2`` bits per multiplication, so
  noise growth compounds with multiplicative depth);
* ciphertext-plaintext multiplication consumes a few bits;
* rotations consume a small, key-dependent amount;
* additions/subtractions/negations consume a fraction of a bit.

The constants are configurable so the sensitivity of downstream results to
the noise model can be explored (see ``tests/fhe/test_noise.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.fhe.params import BFVParameters

__all__ = ["NoiseModel"]


@dataclass(frozen=True)
class NoiseModel:
    """Per-operation noise-budget consumption (in bits)."""

    params: BFVParameters
    #: Extra bits consumed by a ct-ct multiplication beyond the plaintext
    #: modulus contribution.
    multiply_overhead_bits: float = 6.0
    #: Bits consumed by a ciphertext-plaintext multiplication.
    multiply_plain_bits: float = 4.0
    #: Bits consumed by a rotation (key-switching noise).
    rotate_bits: float = 1.5
    #: Bits consumed by an addition or subtraction.
    add_bits: float = 0.3
    #: Bits consumed by a negation.
    negate_bits: float = 0.05
    #: Bits consumed by relinearization after a multiplication.
    relinearize_bits: float = 0.5

    @property
    def initial_budget(self) -> float:
        """Noise budget of a freshly encrypted ciphertext."""
        return self.params.initial_noise_budget

    def multiply_cost(self) -> float:
        """Budget consumed by one ciphertext-ciphertext multiplication."""
        n = self.params.poly_modulus_degree
        return (
            self.params.plain_modulus_bits
            + 0.5 * math.log2(n)
            + self.multiply_overhead_bits
        )

    def square_cost(self) -> float:
        """Budget consumed by squaring (slightly cheaper than a full multiply)."""
        return 0.9 * self.multiply_cost()

    def multiply_plain_cost(self, plaintext_is_scalar: bool = False) -> float:
        """Budget consumed by a ciphertext-plaintext multiplication."""
        if plaintext_is_scalar:
            return 0.75 * self.multiply_plain_bits
        return self.multiply_plain_bits

    def rotate_cost(self, step: int) -> float:
        """Budget consumed by a rotation by ``step`` (0 is free)."""
        if step == 0:
            return 0.0
        return self.rotate_bits

    def add_cost(self) -> float:
        """Budget consumed by an addition or subtraction."""
        return self.add_bits

    def negate_cost(self) -> float:
        """Budget consumed by a negation."""
        return self.negate_bits

    def relinearize_cost(self) -> float:
        """Budget consumed by relinearization."""
        return self.relinearize_bits
