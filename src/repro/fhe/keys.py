"""Key material of the simulated BFV scheme.

The simulator does not perform lattice cryptography, but it models the key
*objects* and their operational constraints:

* a :class:`SecretKey` / :class:`PublicKey` pair is required to decrypt /
  encrypt;
* :class:`RelinKeys` are required to relinearize size-3 ciphertexts after a
  ciphertext-ciphertext multiplication;
* :class:`GaloisKeys` hold one key per rotation step; rotating by a step with
  no generated key raises :class:`~repro.core.exceptions.RotationKeyMissing`,
  exactly as SEAL would fail.  Each Galois key has a realistic size estimate
  so the rotation-key-selection pass can reason about generation and
  transmission cost.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Set

from repro.fhe.params import BFVParameters

__all__ = ["SecretKey", "PublicKey", "RelinKeys", "GaloisKeys", "KeyGenerator"]

_key_counter = itertools.count(1)


@dataclass(frozen=True)
class SecretKey:
    """Handle to a secret key."""

    key_id: int
    params: BFVParameters


@dataclass(frozen=True)
class PublicKey:
    """Handle to a public key derived from a secret key."""

    key_id: int
    secret_key_id: int


@dataclass(frozen=True)
class RelinKeys:
    """Relinearization keys for shrinking size-3 ciphertexts back to size 2."""

    key_id: int
    secret_key_id: int


@dataclass
class GaloisKeys:
    """Galois (rotation) keys for a set of rotation steps.

    ``steps`` contains the *signed* rotation steps that can be applied
    directly.  Any other rotation must be decomposed into generated steps
    (see :mod:`repro.fhe.rotation_keys`).
    """

    key_id: int
    secret_key_id: int
    steps: FrozenSet[int] = field(default_factory=frozenset)
    #: Approximate size of a single Galois key in bytes (several megabytes in
    #: practice); used by the key-selection pass to report transmission cost.
    bytes_per_key: int = 3 * 1024 * 1024

    def supports(self, step: int) -> bool:
        """Whether a rotation by ``step`` can be applied with these keys."""
        return step == 0 or step in self.steps

    @property
    def key_count(self) -> int:
        return len(self.steps)

    @property
    def total_bytes(self) -> int:
        """Estimated total size of the generated keys."""
        return self.key_count * self.bytes_per_key


class KeyGenerator:
    """Generates the key material for a parameter set (mirrors SEAL's API)."""

    def __init__(self, params: BFVParameters) -> None:
        self.params = params
        self._secret_key = SecretKey(key_id=next(_key_counter), params=params)

    def secret_key(self) -> SecretKey:
        """The secret key of this generator."""
        return self._secret_key

    def create_public_key(self) -> PublicKey:
        """Create a public key bound to the secret key."""
        return PublicKey(
            key_id=next(_key_counter), secret_key_id=self._secret_key.key_id
        )

    def create_relin_keys(self) -> RelinKeys:
        """Create relinearization keys."""
        return RelinKeys(
            key_id=next(_key_counter), secret_key_id=self._secret_key.key_id
        )

    def create_galois_keys(self, steps: Optional[Iterable[int]] = None) -> GaloisKeys:
        """Create Galois keys for ``steps``.

        When ``steps`` is ``None`` the SEAL default is used: keys for
        ``±2^k`` up to the slot count, i.e. ``2*log2(n)`` keys.
        """
        if steps is None:
            steps = self.default_galois_steps()
        step_set: Set[int] = {int(step) for step in steps if int(step) != 0}
        return GaloisKeys(
            key_id=next(_key_counter),
            secret_key_id=self._secret_key.key_id,
            steps=frozenset(step_set),
        )

    def default_galois_steps(self) -> FrozenSet[int]:
        """The default power-of-two step set (``2*log2(n)`` keys)."""
        steps: Set[int] = set()
        power = 1
        while power < self.params.slot_count:
            steps.add(power)
            steps.add(-power)
            power *= 2
        return frozenset(steps)
