"""Rewrite engines built on top of the rule set.

Besides the RL policy (which lives in :mod:`repro.rl`), the reproduction
provides three classical drivers of the same action space:

* :class:`GreedyRewriter` -- the original CHEHAB behaviour: repeatedly apply
  the single (rule, location) whose application reduces the analytical cost
  the most, stopping when no rule improves the cost;
* :class:`BeamSearchRewriter` -- a small beam search over rewrite sequences,
  used as an upper-quality/slower reference point;
* :class:`RandomRewriter` -- applies random applicable rules; used by tests
  and as a sanity baseline.

All drivers return both the optimized expression and the sequence of
:class:`RewriteStep` records, so compilation reports can show exactly which
rules were applied where.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.cost import CostModel
from repro.ir.nodes import Expr
from repro.trs.registry import RuleSet, default_ruleset

__all__ = [
    "RewriteStep",
    "RewriteResult",
    "apply_sequence",
    "GreedyRewriter",
    "BeamSearchRewriter",
    "RandomRewriter",
]


@dataclass(frozen=True)
class RewriteStep:
    """One applied rewrite: which rule, at which match index, and the costs."""

    rule_name: str
    rule_index: int
    location_index: int
    cost_before: float
    cost_after: float


@dataclass
class RewriteResult:
    """Outcome of running a rewrite driver on an expression."""

    initial: Expr
    optimized: Expr
    steps: List[RewriteStep]
    initial_cost: float
    final_cost: float

    @property
    def improvement(self) -> float:
        """Fractional cost reduction (0 when the cost did not improve)."""
        if self.initial_cost <= 0:
            return 0.0
        return max(0.0, (self.initial_cost - self.final_cost) / self.initial_cost)


def apply_sequence(
    expr: Expr,
    actions: Sequence[Tuple[int, int]],
    ruleset: Optional[RuleSet] = None,
    cost_model: Optional[CostModel] = None,
) -> RewriteResult:
    """Apply an explicit sequence of ``(rule_index, location_index)`` actions."""
    ruleset = ruleset if ruleset is not None else default_ruleset()
    cost_model = cost_model if cost_model is not None else CostModel()
    steps: List[RewriteStep] = []
    initial_cost = cost_model.cost(expr)
    current = expr
    for rule_index, location_index in actions:
        if rule_index == ruleset.end_index:
            break
        rule = ruleset[rule_index]
        locations = rule.find(current)
        if not locations:
            continue
        location_index = min(location_index, len(locations) - 1)
        cost_before = cost_model.cost(current)
        current = rule.apply_at(current, locations[location_index])
        steps.append(
            RewriteStep(
                rule_name=rule.name,
                rule_index=rule_index,
                location_index=location_index,
                cost_before=cost_before,
                cost_after=cost_model.cost(current),
            )
        )
    return RewriteResult(
        initial=expr,
        optimized=current,
        steps=steps,
        initial_cost=initial_cost,
        final_cost=cost_model.cost(current),
    )


class GreedyRewriter:
    """Best-improvement greedy rewriting (the non-RL CHEHAB baseline)."""

    def __init__(
        self,
        ruleset: Optional[RuleSet] = None,
        cost_model: Optional[CostModel] = None,
        max_steps: int = 75,
        max_locations_per_rule: int = 8,
    ) -> None:
        self.ruleset = ruleset if ruleset is not None else default_ruleset()
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.max_steps = max_steps
        self.max_locations_per_rule = max_locations_per_rule

    def optimize(self, expr: Expr) -> RewriteResult:
        """Greedily apply the best cost-reducing rule until none improves."""
        steps: List[RewriteStep] = []
        initial_cost = self.cost_model.cost(expr)
        current = expr
        current_cost = initial_cost
        for _ in range(self.max_steps):
            best: Optional[Tuple[float, int, int, Expr]] = None
            for rule_index, rule in enumerate(self.ruleset):
                locations = rule.find(current)
                for location_index, path in enumerate(
                    locations[: self.max_locations_per_rule]
                ):
                    candidate = rule.apply_at(current, path)
                    candidate_cost = self.cost_model.cost(candidate)
                    if candidate_cost < current_cost - 1e-9 and (
                        best is None or candidate_cost < best[0]
                    ):
                        best = (candidate_cost, rule_index, location_index, candidate)
            if best is None:
                break
            candidate_cost, rule_index, location_index, candidate = best
            steps.append(
                RewriteStep(
                    rule_name=self.ruleset[rule_index].name,
                    rule_index=rule_index,
                    location_index=location_index,
                    cost_before=current_cost,
                    cost_after=candidate_cost,
                )
            )
            current = candidate
            current_cost = candidate_cost
        return RewriteResult(
            initial=expr,
            optimized=current,
            steps=steps,
            initial_cost=initial_cost,
            final_cost=current_cost,
        )


class BeamSearchRewriter:
    """Beam search over rewrite sequences (quality reference, slower)."""

    def __init__(
        self,
        ruleset: Optional[RuleSet] = None,
        cost_model: Optional[CostModel] = None,
        beam_width: int = 4,
        max_steps: int = 20,
        max_locations_per_rule: int = 4,
    ) -> None:
        self.ruleset = ruleset if ruleset is not None else default_ruleset()
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.beam_width = beam_width
        self.max_steps = max_steps
        self.max_locations_per_rule = max_locations_per_rule

    def optimize(self, expr: Expr) -> RewriteResult:
        initial_cost = self.cost_model.cost(expr)
        beam: List[Tuple[float, Expr, List[RewriteStep]]] = [(initial_cost, expr, [])]
        best_cost, best_expr, best_steps = initial_cost, expr, []
        seen = {expr}
        for _ in range(self.max_steps):
            candidates: List[Tuple[float, Expr, List[RewriteStep]]] = []
            for cost, current, steps in beam:
                for rule_index, rule in enumerate(self.ruleset):
                    locations = rule.find(current)
                    for location_index, path in enumerate(
                        locations[: self.max_locations_per_rule]
                    ):
                        candidate = rule.apply_at(current, path)
                        if candidate in seen:
                            continue
                        seen.add(candidate)
                        candidate_cost = self.cost_model.cost(candidate)
                        step = RewriteStep(
                            rule_name=rule.name,
                            rule_index=rule_index,
                            location_index=location_index,
                            cost_before=cost,
                            cost_after=candidate_cost,
                        )
                        candidates.append((candidate_cost, candidate, steps + [step]))
            if not candidates:
                break
            candidates.sort(key=lambda item: item[0])
            beam = candidates[: self.beam_width]
            if beam[0][0] < best_cost:
                best_cost, best_expr, best_steps = beam[0]
        return RewriteResult(
            initial=expr,
            optimized=best_expr,
            steps=best_steps,
            initial_cost=initial_cost,
            final_cost=best_cost,
        )


class RandomRewriter:
    """Applies uniformly random applicable rules; a sanity baseline."""

    def __init__(
        self,
        ruleset: Optional[RuleSet] = None,
        cost_model: Optional[CostModel] = None,
        max_steps: int = 20,
        seed: Optional[int] = None,
    ) -> None:
        self.ruleset = ruleset if ruleset is not None else default_ruleset()
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.max_steps = max_steps
        self._rng = random.Random(seed)

    def optimize(self, expr: Expr) -> RewriteResult:
        steps: List[RewriteStep] = []
        initial_cost = self.cost_model.cost(expr)
        current = expr
        for _ in range(self.max_steps):
            applicable = self.ruleset.applicable_rules(current)
            if not applicable:
                break
            rule_index = self._rng.choice(applicable)
            rule = self.ruleset[rule_index]
            locations = rule.find(current)
            location_index = self._rng.randrange(len(locations))
            cost_before = self.cost_model.cost(current)
            current = rule.apply_at(current, locations[location_index])
            steps.append(
                RewriteStep(
                    rule_name=rule.name,
                    rule_index=rule_index,
                    location_index=location_index,
                    cost_before=cost_before,
                    cost_after=self.cost_model.cost(current),
                )
            )
        return RewriteResult(
            initial=expr,
            optimized=current,
            steps=steps,
            initial_cost=initial_cost,
            final_cost=self.cost_model.cost(current),
        )
