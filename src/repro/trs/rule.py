"""Rewrite rules: the atomic actions of the term rewriting system.

Two concrete rule flavours cover the paper's rule families:

* :class:`PatternRule` -- declarative ``lhs ⇒ rhs`` rules written with the
  pattern syntax of the paper (``?a`` pattern variables), optionally guarded
  by a predicate over the bindings and optionally building the result with a
  callback (needed e.g. for constant folding, where the result constant is
  computed from the matched constants).
* :class:`FunctionRule` -- procedural rules whose matching or rewriting
  cannot be expressed as a single fixed pattern (vectorizing *all*
  isomorphic elements of a ``Vec``, packing non-isomorphic elements,
  balancing chains, composing rotations, ...).

Both expose the same interface used by the RL environment and the search
baselines:

* ``find(expr)`` returns the list of *paths* (locations) where the rule is
  applicable, in pre-order;
* ``apply_at(expr, path)`` returns the rewritten expression.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.ir.nodes import Expr, Var
from repro.ir.parser import parse
from repro.ir.pattern import (
    Bindings,
    PatternVar,
    find_matches,
    get_at,
    match,
    replace_at,
    substitute,
)

__all__ = ["Rule", "PatternRule", "FunctionRule", "RuleApplicationError", "pattern"]

Path = Tuple[int, ...]


class RuleApplicationError(ValueError):
    """Raised when a rule is applied at a location where it does not match."""


def pattern(text: str) -> Expr:
    """Parse a pattern written in the paper's rule syntax.

    Identifiers starting with ``?`` become pattern variables; a suffix after
    ``:`` restricts the kind, e.g. ``?c:const`` only matches constants.

    >>> pattern("(+ (* ?a ?b) (* ?a ?c))")           # doctest: +ELLIPSIS
    Add(...)
    """
    parsed = parse(text.replace("?", "__PV__"))
    return _restore_pattern_vars(parsed)


def _restore_pattern_vars(expr: Expr) -> Expr:
    if isinstance(expr, Var) and expr.name.startswith("__PV__"):
        name = expr.name[len("__PV__") :]
        if ":" in name:
            name, kind = name.split(":", 1)
        else:
            kind = "any"
        return PatternVar(name, kind=kind)
    if expr.is_leaf():
        return expr
    children = [_restore_pattern_vars(child) for child in expr.children]
    if children == list(expr.children):
        return expr
    return expr.with_children(children)


class Rule:
    """Abstract rewrite rule."""

    def __init__(self, name: str, category: str = "general", description: str = "") -> None:
        if not name:
            raise ValueError("rule name must be non-empty")
        self.name = name
        self.category = category
        self.description = description

    # -- interface -----------------------------------------------------------
    def find(self, expr: Expr) -> List[Path]:
        """Locations (paths, pre-order) where this rule is applicable."""
        raise NotImplementedError

    def apply_at(self, expr: Expr, path: Path) -> Expr:
        """Apply the rule at ``path`` and return the rewritten expression."""
        raise NotImplementedError

    # -- conveniences ---------------------------------------------------------
    def applicable(self, expr: Expr) -> bool:
        """True when the rule matches anywhere in ``expr``."""
        return bool(self.find(expr))

    def apply_first(self, expr: Expr) -> Expr:
        """Apply the rule at its first match (raises if there is none)."""
        locations = self.find(expr)
        if not locations:
            raise RuleApplicationError(f"rule {self.name!r} does not match")
        return self.apply_at(expr, locations[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Rule {self.name!r} category={self.category!r}>"


class PatternRule(Rule):
    """A declarative ``lhs ⇒ rhs`` rule with optional guard and builder."""

    def __init__(
        self,
        name: str,
        lhs: Expr | str,
        rhs: Optional[Expr | str] = None,
        *,
        guard: Optional[Callable[[Bindings], bool]] = None,
        builder: Optional[Callable[[Bindings], Expr]] = None,
        category: str = "general",
        description: str = "",
    ) -> None:
        super().__init__(name, category=category, description=description)
        self.lhs = pattern(lhs) if isinstance(lhs, str) else lhs
        if rhs is None and builder is None:
            raise ValueError("PatternRule requires either an rhs template or a builder")
        self.rhs = pattern(rhs) if isinstance(rhs, str) else rhs
        self.guard = guard
        self.builder = builder

    def find(self, expr: Expr) -> List[Path]:
        matches = find_matches(self.lhs, expr)
        if self.guard is None:
            return [m.path for m in matches]
        return [m.path for m in matches if self.guard(m.bindings)]

    def apply_at(self, expr: Expr, path: Path) -> Expr:
        target = get_at(expr, path)
        bindings = match(self.lhs, target)
        if bindings is None or (self.guard is not None and not self.guard(bindings)):
            raise RuleApplicationError(
                f"rule {self.name!r} does not match at path {path}"
            )
        if self.builder is not None:
            replacement = self.builder(bindings)
        else:
            assert self.rhs is not None
            replacement = substitute(self.rhs, bindings)
        return replace_at(expr, path, replacement)


class FunctionRule(Rule):
    """A procedural rule defined by a matcher and a rewriter callback.

    ``matcher(node)`` is called on every sub-expression and returns ``True``
    when the rule applies to that node; ``rewriter(node)`` returns the
    replacement (or ``None`` to signal that the node should be left alone,
    which also removes it from the match list).
    """

    def __init__(
        self,
        name: str,
        matcher: Callable[[Expr], bool],
        rewriter: Callable[[Expr], Optional[Expr]],
        *,
        category: str = "general",
        description: str = "",
    ) -> None:
        super().__init__(name, category=category, description=description)
        self.matcher = matcher
        self.rewriter = rewriter

    def find(self, expr: Expr) -> List[Path]:
        from repro.ir.analysis import iter_subexpressions

        locations: List[Path] = []
        for path, node in iter_subexpressions(expr):
            if self.matcher(node) and self.rewriter(node) is not None:
                locations.append(path)
        return locations

    def apply_at(self, expr: Expr, path: Path) -> Expr:
        target = get_at(expr, path)
        if not self.matcher(target):
            raise RuleApplicationError(
                f"rule {self.name!r} does not match at path {path}"
            )
        replacement = self.rewriter(target)
        if replacement is None:
            raise RuleApplicationError(
                f"rule {self.name!r} declined to rewrite at path {path}"
            )
        return replace_at(expr, path, replacement)
