"""Term Rewriting System (TRS) driving CHEHAB's code optimization.

The TRS is the action space of the RL agent: 84 rewrite rules (plus the
``END`` action) spanning

* vectorization of isomorphic and non-isomorphic scalar sub-expressions,
* algebraic simplification (identities, absorption, factorization,
  constant folding, plaintext consolidation),
* arithmetic transformations (commutativity, associativity, distribution)
  that enable later simplification or vectorization,
* circuit balancing to reduce (multiplicative) depth,
* rotation rules, including composite rules that turn sum-of-product
  patterns into a multiply/rotate/add dataflow.

Every rule is semantics preserving with respect to the IR's evaluation
semantics (checked by the property-based test-suite).
"""

from repro.trs.rule import FunctionRule, PatternRule, Rule, RuleApplicationError, pattern
from repro.trs.registry import RuleSet, default_ruleset
from repro.trs.rewriter import (
    BeamSearchRewriter,
    GreedyRewriter,
    RandomRewriter,
    RewriteStep,
    apply_sequence,
)

__all__ = [
    "Rule",
    "PatternRule",
    "FunctionRule",
    "RuleApplicationError",
    "pattern",
    "RuleSet",
    "default_ruleset",
    "GreedyRewriter",
    "BeamSearchRewriter",
    "RandomRewriter",
    "RewriteStep",
    "apply_sequence",
]
