"""The default rule set: 84 rewrite rules plus the ``END`` action.

The rule set is the agent's action space.  Rules are indexed in a stable
order so that a trained policy's action indices remain meaningful across
runs; the ``END`` action always has the last index.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.ir.nodes import Expr
from repro.trs.rule import Rule
from repro.trs.rules.algebraic import algebraic_rules
from repro.trs.rules.balance import balance_rules
from repro.trs.rules.rotation import rotation_rules
from repro.trs.rules.vectorize import vectorization_rules

__all__ = ["RuleSet", "default_ruleset", "END_ACTION_NAME"]

#: Name of the special episode-terminating action.
END_ACTION_NAME = "END"


class RuleSet:
    """An ordered, indexable collection of rewrite rules plus ``END``.

    The ``END`` action is not a rule; it carries the index ``len(rules)`` and
    is exposed through :attr:`end_index` so policies can select it uniformly
    with rewrite rules.
    """

    def __init__(self, rules: Sequence[Rule]) -> None:
        if not rules:
            raise ValueError("a RuleSet needs at least one rule")
        names = [rule.name for rule in rules]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise ValueError(f"duplicate rule names: {sorted(duplicates)}")
        self._rules: Tuple[Rule, ...] = tuple(rules)
        self._by_name: Dict[str, int] = {rule.name: i for i, rule in enumerate(rules)}

    # -- container protocol ----------------------------------------------------
    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __getitem__(self, index: int) -> Rule:
        return self._rules[index]

    # -- lookups ----------------------------------------------------------------
    @property
    def rules(self) -> Tuple[Rule, ...]:
        return self._rules

    @property
    def names(self) -> List[str]:
        """Rule names in index order (without ``END``)."""
        return [rule.name for rule in self._rules]

    @property
    def action_count(self) -> int:
        """Number of actions a policy chooses from (rules plus ``END``)."""
        return len(self._rules) + 1

    @property
    def end_index(self) -> int:
        """Action index of the ``END`` action."""
        return len(self._rules)

    def index_of(self, name: str) -> int:
        """Index of the rule called ``name``."""
        return self._by_name[name]

    def by_name(self, name: str) -> Rule:
        """The rule called ``name``."""
        return self._rules[self._by_name[name]]

    def categories(self) -> Dict[str, List[str]]:
        """Rule names grouped by category (for documentation and reporting)."""
        grouped: Dict[str, List[str]] = {}
        for rule in self._rules:
            grouped.setdefault(rule.category, []).append(rule.name)
        return grouped

    # -- applicability ------------------------------------------------------------
    def applicable_rules(self, expr: Expr) -> List[int]:
        """Indices of the rules that match somewhere in ``expr``."""
        return [index for index, rule in enumerate(self._rules) if rule.applicable(expr)]

    def action_mask(self, expr: Expr, include_end: bool = True) -> List[bool]:
        """Boolean mask over the action space (``END`` is always valid)."""
        mask = [rule.applicable(expr) for rule in self._rules]
        if include_end:
            mask.append(True)
        return mask

    def match_locations(self, rule_index: int, expr: Expr) -> List[Tuple[int, ...]]:
        """Locations where rule ``rule_index`` matches in ``expr``."""
        return self._rules[rule_index].find(expr)

    def apply(
        self, expr: Expr, rule_index: int, location_index: int = 0
    ) -> Expr:
        """Apply rule ``rule_index`` at its ``location_index``-th match."""
        rule = self._rules[rule_index]
        locations = rule.find(expr)
        if not locations:
            raise ValueError(f"rule {rule.name!r} does not match the expression")
        location_index = min(location_index, len(locations) - 1)
        return rule.apply_at(expr, locations[location_index])


_DEFAULT_RULESET: Optional[RuleSet] = None


def default_ruleset() -> RuleSet:
    """The default 84-rule TRS used throughout the paper's evaluation."""
    global _DEFAULT_RULESET
    if _DEFAULT_RULESET is None:
        rules: List[Rule] = []
        rules.extend(algebraic_rules())
        rules.extend(vectorization_rules())
        rules.extend(rotation_rules())
        rules.extend(balance_rules())
        _DEFAULT_RULESET = RuleSet(rules)
    return _DEFAULT_RULESET
