"""Vectorization rules: pack scalar operations into vector instructions.

Two families (paper Appendix E):

* **Isomorphic** rules rewrite a ``Vec`` whose elements are all the same
  scalar operation into a single vector operation on re-packed operand
  vectors, e.g.::

      (Vec (+ a b) (+ c d))  =>  (VecAdd (Vec a c) (Vec b d))

  Fixed-width variants (widths 2, 3, 4 and 8) match the paper's
  ``add-vectorize-2`` style rules; a "full" variant per operator matches a
  ``Vec`` of any width whose elements are all that operator.

* **Non-isomorphic** rules handle mixed ``Vec`` elements: every element that
  uses the target operator is packed, while non-matching elements move into
  the first operand vector and the second operand vector is padded with the
  operator's identity element (1 for multiplication, 0 for addition and
  subtraction)::

      (Vec (* a b) (* c d) (- f g))
        => (VecMul (Vec a c (- f g)) (Vec b d 1))
"""

from __future__ import annotations

from typing import Callable, List, Optional, Type

from repro.ir.nodes import (
    Add,
    Const,
    Expr,
    Mul,
    Neg,
    Sub,
    Vec,
    VecAdd,
    VecMul,
    VecNeg,
    VecSub,
)
from repro.trs.rule import FunctionRule, Rule

__all__ = ["vectorization_rules"]

_OP_TABLE = (
    ("add", Add, VecAdd, 0),
    ("sub", Sub, VecSub, 0),
    ("mul", Mul, VecMul, 1),
)

_FIXED_WIDTHS = (2, 3, 4)


def _make_isomorphic_rule(
    label: str,
    scalar_cls: Type[Expr],
    vector_cls: Type[Expr],
    width: Optional[int],
) -> Rule:
    """Vectorize a Vec whose elements are all ``scalar_cls`` operations."""

    def matcher(node: Expr) -> bool:
        if not isinstance(node, Vec):
            return False
        elements = node.elements
        if width is not None and len(elements) != width:
            return False
        if len(elements) < 2:
            return False
        return all(isinstance(element, scalar_cls) for element in elements)

    def rewriter(node: Expr) -> Optional[Expr]:
        elements = node.elements
        lhs = Vec(*[element.children[0] for element in elements])
        rhs = Vec(*[element.children[1] for element in elements])
        return vector_cls(lhs, rhs)

    suffix = "full" if width is None else str(width)
    return FunctionRule(
        f"{label}-vectorize-{suffix}",
        matcher,
        rewriter,
        category="vectorize",
        description=f"pack a Vec of {label} operations into a single {vector_cls.__name__}",
    )


def _make_neg_rule(width: Optional[int]) -> Rule:
    """Vectorize a Vec whose elements are all negations."""

    def matcher(node: Expr) -> bool:
        if not isinstance(node, Vec):
            return False
        elements = node.elements
        if width is not None and len(elements) != width:
            return False
        if len(elements) < 2:
            return False
        return all(isinstance(element, Neg) for element in elements)

    def rewriter(node: Expr) -> Optional[Expr]:
        return VecNeg(Vec(*[element.operand for element in node.elements]))

    suffix = "full" if width is None else str(width)
    return FunctionRule(
        f"neg-vectorize-{suffix}",
        matcher,
        rewriter,
        category="vectorize",
        description="pack a Vec of negations into a single VecNeg",
    )


def _make_non_isomorphic_rule(
    label: str,
    scalar_cls: Type[Expr],
    vector_cls: Type[Expr],
    identity: int,
) -> Rule:
    """Vectorize the ``scalar_cls`` elements of a mixed Vec (identity padding)."""

    def matcher(node: Expr) -> bool:
        if not isinstance(node, Vec):
            return False
        elements = node.elements
        matching = sum(1 for element in elements if isinstance(element, scalar_cls))
        # The rule is useful only for genuinely mixed vectors: the isomorphic
        # rules already handle the all-matching case.
        return matching >= 2 and matching < len(elements)

    def rewriter(node: Expr) -> Optional[Expr]:
        first: List[Expr] = []
        second: List[Expr] = []
        for element in node.elements:
            if isinstance(element, scalar_cls):
                first.append(element.children[0])
                second.append(element.children[1])
            else:
                first.append(element)
                second.append(Const(identity))
        return vector_cls(Vec(*first), Vec(*second))

    return FunctionRule(
        f"{label}-vectorize-mixed",
        matcher,
        rewriter,
        category="vectorize",
        description=(
            f"pack the {label} elements of a mixed Vec, padding the second "
            f"operand with the identity element {identity}"
        ),
    )


def vectorization_rules() -> List[Rule]:
    """The vectorization rule family (isomorphic, full and mixed variants)."""
    rules: List[Rule] = []
    for label, scalar_cls, vector_cls, _identity in _OP_TABLE:
        for width in _FIXED_WIDTHS:
            rules.append(_make_isomorphic_rule(label, scalar_cls, vector_cls, width))
        rules.append(_make_isomorphic_rule(label, scalar_cls, vector_cls, None))
    rules.append(_make_neg_rule(2))
    rules.append(_make_neg_rule(None))
    for label, scalar_cls, vector_cls, identity in _OP_TABLE:
        rules.append(_make_non_isomorphic_rule(label, scalar_cls, vector_cls, identity))
    return rules
