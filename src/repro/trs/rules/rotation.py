"""Rotation rules: compose, hoist and exploit ciphertext rotations.

Rotations are the data-movement primitive of batched FHE.  They are
expensive (roughly half the cost of a ciphertext multiplication) and add
noise, so the rule set both *removes redundant rotations* (composition,
hoisting out of element-wise operations) and *introduces rotations when they
replace something more expensive* (the composite sum-of-products and
reduction rules of Appendix E, which turn trees of scalar multiplications
and additions into one vector multiplication followed by a logarithmic
rotate-and-add reduction).

Composite rules only fire when every packed operand is a leaf (an input
variable or a constant); this keeps the rewrites slot-exact for the
positions the surrounding program observes.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple, Type

from repro.ir.nodes import (
    Add,
    Const,
    Expr,
    Mul,
    Rotate,
    Vec,
    VecAdd,
    VecMul,
    VecSub,
)
from repro.trs.rule import FunctionRule, PatternRule, Rule

__all__ = ["rotation_rules"]


def _is_leaf_operand(node: Expr) -> bool:
    return node.is_leaf()


def _flatten_sum(node: Expr) -> Optional[List[Expr]]:
    """Flatten a tree of additions into its list of terms (None if not a sum)."""
    if isinstance(node, Add):
        left = _flatten_sum(node.lhs)
        right = _flatten_sum(node.rhs)
        if left is None or right is None:
            return None
        return left + right
    return [node]


def _term_operands(term: Expr) -> Optional[Tuple[Expr, Expr]]:
    """Split a reduction term into (lhs, rhs) factors of a product.

    Products of leaves split naturally; bare leaves are treated as a product
    with the multiplicative identity so that mixed sums still pack.
    """
    if isinstance(term, Mul) and _is_leaf_operand(term.lhs) and _is_leaf_operand(term.rhs):
        return term.lhs, term.rhs
    if _is_leaf_operand(term):
        return term, Const(1)
    return None


def _rotate_reduce(vector: Expr, term_count: int) -> Expr:
    """Build the rotate-and-add reduction summing ``term_count`` slots into slot 0."""
    result = vector
    power = 1 << max(0, (term_count - 1).bit_length())
    step = power // 2
    while step >= 1:
        result = VecAdd(result, Rotate(result, step))
        step //= 2
    return result


def rotation_rules() -> List[Rule]:
    """The rotation rule family."""
    rules: List[Rule] = []

    # -- structural rotation simplification ------------------------------------
    def _rotate_zero_matcher(node: Expr) -> bool:
        return isinstance(node, Rotate) and node.step == 0

    rules.append(
        FunctionRule(
            "rotate-zero",
            _rotate_zero_matcher,
            lambda node: node.operand,
            category="rotation",
            description="(<< x 0) => x",
        )
    )

    def _rotate_compose_matcher(node: Expr) -> bool:
        return isinstance(node, Rotate) and isinstance(node.operand, Rotate)

    def _rotate_compose(node: Expr) -> Optional[Expr]:
        inner = node.operand
        return Rotate(inner.operand, node.step + inner.step)

    rules.append(
        FunctionRule(
            "rotate-compose",
            _rotate_compose_matcher,
            _rotate_compose,
            category="rotation",
            description="(<< (<< x a) b) => (<< x (a+b))",
        )
    )

    # -- hoist rotations out of element-wise operations ------------------------
    for label, vector_cls in (("add", VecAdd), ("sub", VecSub), ("mul", VecMul)):

        def _distribute_matcher(node: Expr, cls: Type[Expr] = vector_cls) -> bool:
            return (
                isinstance(node, cls)
                and isinstance(node.children[0], Rotate)
                and isinstance(node.children[1], Rotate)
                and node.children[0].step == node.children[1].step
            )

        def _distribute(node: Expr, cls: Type[Expr] = vector_cls) -> Optional[Expr]:
            left = node.children[0]
            right = node.children[1]
            return Rotate(cls(left.operand, right.operand), left.step)

        rules.append(
            FunctionRule(
                f"rotate-hoist-{label}",
                _distribute_matcher,
                _distribute,
                category="rotation",
                description=(
                    f"(Vec{label.capitalize()} (<< x k) (<< y k)) => "
                    f"(<< (Vec{label.capitalize()} x y) k)"
                ),
            )
        )

    # -- composite: pack pairs of isomorphic scalar operations -------------------
    # Unstructured (non-loop) code has no Vec constructor to vectorize; these
    # rules pack two sibling scalar operations over leaf operands into one
    # vector operation and combine the two packed results with a single
    # rotation.  The scalar result lives in slot 0 of the rewritten
    # expression, which is the slot surrounding scalar operations observe.
    def _make_pack_pair_rule(
        name: str,
        outer_op: str,
        inner_cls: Type[Expr],
        inner_vec_cls: Type[Expr],
    ) -> Rule:
        outer_cls = {"+": Add, "*": Mul}[outer_op]
        outer_vec_cls = {"+": VecAdd, "*": VecMul}[outer_op]

        def matcher(node: Expr) -> bool:
            if not isinstance(node, outer_cls):
                return False
            left, right = node.children
            if not (isinstance(left, inner_cls) and isinstance(right, inner_cls)):
                return False
            operands = (*left.children, *right.children)
            return all(_is_leaf_operand(operand) for operand in operands)

        def rewriter(node: Expr) -> Optional[Expr]:
            left, right = node.children
            packed = inner_vec_cls(
                Vec(left.children[0], right.children[0]),
                Vec(left.children[1], right.children[1]),
            )
            return outer_vec_cls(packed, Rotate(packed, 1))

        return FunctionRule(
            name,
            matcher,
            rewriter,
            category="rotation",
            description=(
                f"pack two sibling {inner_cls.__name__} operations into one "
                f"{inner_vec_cls.__name__} and combine them with one rotation"
            ),
        )

    rules.append(_make_pack_pair_rule("pack-add-of-products", "+", Mul, VecMul))
    rules.append(_make_pack_pair_rule("pack-mul-of-products", "*", Mul, VecMul))
    rules.append(_make_pack_pair_rule("pack-add-of-sums", "+", Add, VecAdd))
    rules.append(_make_pack_pair_rule("pack-mul-of-sums", "*", Add, VecAdd))

    # -- composite: vector of pairwise sums of products -------------------------
    def _pack_pairs_matcher(node: Expr) -> bool:
        if not isinstance(node, Vec) or len(node.elements) < 2:
            return False
        for element in node.elements:
            if not isinstance(element, Add):
                return False
            if not isinstance(element.lhs, Mul) or not isinstance(element.rhs, Mul):
                return False
            for factor in (*element.lhs.children, *element.rhs.children):
                if not _is_leaf_operand(factor):
                    return False
        return True

    def _pack_pairs(node: Expr) -> Optional[Expr]:
        elements = node.elements
        count = len(elements)
        first: List[Expr] = []
        second: List[Expr] = []
        # Lay out the first product of every element, then the second product
        # of every element; a rotation by ``count`` then aligns each pair.
        for element in elements:
            first.append(element.lhs.lhs)
            second.append(element.lhs.rhs)
        for element in elements:
            first.append(element.rhs.lhs)
            second.append(element.rhs.rhs)
        packed = VecMul(Vec(*first), Vec(*second))
        return VecAdd(packed, Rotate(packed, count))

    rules.append(
        FunctionRule(
            "rotate-pack-sum-of-products",
            _pack_pairs_matcher,
            _pack_pairs,
            category="rotation",
            description=(
                "(Vec (+ (* a b) (* c d)) ...) => one VecMul followed by a "
                "rotation-aligned VecAdd"
            ),
        )
    )

    # -- composite: reduction of a long sum into slot 0 --------------------------
    def _reduction_target(node: Expr) -> Optional[Expr]:
        """The sum expression a reduction rule should consider, if any."""
        if isinstance(node, Vec) and len(node.elements) == 1:
            return node.elements[0]
        if isinstance(node, Add):
            return node
        return None

    def _reduce_sum_matcher(node: Expr) -> bool:
        target = _reduction_target(node)
        if target is None:
            return False
        terms = _flatten_sum(target)
        if terms is None:
            return False
        minimum = 2 if isinstance(node, Vec) else 3
        if len(terms) < minimum:
            return False
        return all(_term_operands(term) is not None for term in terms)

    def _reduce_sum(node: Expr) -> Optional[Expr]:
        terms = _flatten_sum(_reduction_target(node))
        assert terms is not None
        pairs = [_term_operands(term) for term in terms]
        has_product = any(isinstance(term, Mul) for term in terms)
        if has_product:
            lhs = Vec(*[pair[0] for pair in pairs])
            rhs = Vec(*[pair[1] for pair in pairs])
            packed: Expr = VecMul(lhs, rhs)
        else:
            packed = Vec(*[pair[0] for pair in pairs])
        return _rotate_reduce(packed, len(terms))

    rules.append(
        FunctionRule(
            "rotate-reduce-sum",
            _reduce_sum_matcher,
            _reduce_sum,
            category="rotation",
            description=(
                "(Vec (+ t0 (+ t1 ...))) over leaf products => packed VecMul "
                "plus a logarithmic rotate-and-add reduction into slot 0"
            ),
        )
    )

    # -- composite: element-wise squared difference / product reduction ----------
    def _reduce_sub_mul_matcher(node: Expr) -> bool:
        # Sum (possibly wrapped in a single-element Vec) of squared
        # element-wise differences/sums/products -- the L2-distance motif.
        target = _reduction_target(node)
        if target is None:
            return False
        terms = _flatten_sum(target)
        if terms is None or len(terms) < 2:
            return False
        inner_ops = set()
        for term in terms:
            if not (isinstance(term, Mul) and term.lhs == term.rhs):
                return False
            inner = term.lhs
            if inner.is_leaf() or inner.arity != 2 or inner.op not in ("+", "-", "*"):
                return False
            if not all(_is_leaf_operand(child) for child in inner.children):
                return False
            inner_ops.add(inner.op)
        return len(inner_ops) == 1

    def _reduce_sub_mul(node: Expr) -> Optional[Expr]:
        terms = _flatten_sum(_reduction_target(node))
        assert terms is not None
        inners = [term.lhs for term in terms]
        # Pack the inner expressions element-wise, square the packed vector,
        # then reduce with rotations.
        sample = inners[0]
        lhs = Vec(*[inner.children[0] for inner in inners])
        rhs = Vec(*[inner.children[1] for inner in inners])
        vectorized = {"+": VecAdd, "-": VecSub, "*": VecMul}.get(sample.op)
        if vectorized is None:
            return None
        packed_inner = vectorized(lhs, rhs)
        squared = VecMul(packed_inner, packed_inner)
        return _rotate_reduce(squared, len(terms))

    rules.append(
        FunctionRule(
            "rotate-reduce-squares",
            _reduce_sub_mul_matcher,
            _reduce_sub_mul,
            category="rotation",
            description=(
                "sum of squared element-wise differences => packed VecSub, one "
                "VecMul square and a rotate-and-add reduction (L2-distance motif)"
            ),
        )
    )

    return rules
