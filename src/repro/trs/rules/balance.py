"""Circuit balancing rules: reduce (multiplicative) depth of operator chains.

A left- or right-leaning chain of ``k`` multiplications has multiplicative
depth ``k``; balancing it into a tree reduces the depth to ``ceil(log2 k)``,
which directly reduces noise growth (noise grows exponentially with
multiplicative depth in BFV).  The same transformation on addition chains
reduces circuit depth.

Pattern variants cover the three-node case from Appendix E; the general
``balance-*-chain`` rules rebalance arbitrarily long chains in one step.
"""

from __future__ import annotations

from typing import List, Optional, Type

from repro.ir.nodes import Add, Expr, Mul, VecAdd, VecMul
from repro.trs.rule import FunctionRule, PatternRule, Rule

__all__ = ["balance_rules"]


def _collect_chain(node: Expr, cls: Type[Expr]) -> List[Expr]:
    """Flatten a chain of ``cls`` operations into its operand list."""
    if isinstance(node, cls):
        return _collect_chain(node.children[0], cls) + _collect_chain(
            node.children[1], cls
        )
    return [node]


def _build_balanced(operands: List[Expr], cls: Type[Expr]) -> Expr:
    """Combine ``operands`` with ``cls`` into a depth-minimal balanced tree."""
    nodes = list(operands)
    while len(nodes) > 1:
        paired: List[Expr] = []
        for index in range(0, len(nodes) - 1, 2):
            paired.append(cls(nodes[index], nodes[index + 1]))
        if len(nodes) % 2 == 1:
            paired.append(nodes[-1])
        nodes = paired
    return nodes[0]


def _chain_depth(node: Expr, cls: Type[Expr]) -> int:
    if not isinstance(node, cls):
        return 0
    return 1 + max(_chain_depth(child, cls) for child in node.children)


def _make_chain_rule(label: str, cls: Type[Expr]) -> Rule:
    """Rebalance a chain of ``cls`` operations into a balanced tree."""

    def matcher(node: Expr) -> bool:
        if not isinstance(node, cls):
            return False
        operands = _collect_chain(node, cls)
        if len(operands) < 3:
            return False
        balanced_depth = max(1, (len(operands) - 1).bit_length())
        return _chain_depth(node, cls) > balanced_depth

    def rewriter(node: Expr) -> Optional[Expr]:
        operands = _collect_chain(node, cls)
        return _build_balanced(operands, cls)

    return FunctionRule(
        f"balance-{label}-chain",
        matcher,
        rewriter,
        category="balance",
        description=f"rebalance a {cls.__name__} chain into a depth-minimal tree",
    )


def balance_rules() -> List[Rule]:
    """The balancing rule family."""
    rules: List[Rule] = []

    rules.append(
        PatternRule(
            "balance-mul-right",
            "(* ?x (* ?y (* ?z ?t)))",
            "(* (* ?x ?y) (* ?z ?t))",
            category="balance",
            description="right-leaning multiplication chain => balanced tree",
        )
    )
    rules.append(
        PatternRule(
            "balance-mul-left",
            "(* (* (* ?x ?y) ?z) ?t)",
            "(* (* ?x ?y) (* ?z ?t))",
            category="balance",
            description="left-leaning multiplication chain => balanced tree",
        )
    )
    rules.append(
        PatternRule(
            "balance-add-right",
            "(+ ?x (+ ?y (+ ?z ?t)))",
            "(+ (+ ?x ?y) (+ ?z ?t))",
            category="balance",
            description="right-leaning addition chain => balanced tree",
        )
    )
    rules.append(
        PatternRule(
            "balance-vecmul-right",
            "(VecMul ?x (VecMul ?y (VecMul ?z ?t)))",
            "(VecMul (VecMul ?x ?y) (VecMul ?z ?t))",
            category="balance",
            description="right-leaning VecMul chain => balanced tree",
        )
    )
    rules.append(_make_chain_rule("mul", Mul))
    rules.append(_make_chain_rule("add", Add))
    rules.append(_make_chain_rule("vecmul", VecMul))
    rules.append(_make_chain_rule("vecadd", VecAdd))

    return rules
