"""Rule families of the CHEHAB term rewriting system."""

from repro.trs.rules.algebraic import algebraic_rules
from repro.trs.rules.balance import balance_rules
from repro.trs.rules.rotation import rotation_rules
from repro.trs.rules.vectorize import vectorization_rules

__all__ = [
    "algebraic_rules",
    "vectorization_rules",
    "rotation_rules",
    "balance_rules",
]
