"""Algebraic simplification and transformation rules.

These rules reduce the number of operations and the (multiplicative) depth of
a circuit, or transform expressions into a shape that later rules (vectorization,
factorization) can exploit.  They follow the families described in Appendix E
of the paper: arithmetic simplification, arithmetic transformations and
plaintext consolidation, restricted to operations FHE supports (no
comparisons, divisions or modulo).
"""

from __future__ import annotations

from typing import List

from repro.ir.nodes import (
    Add,
    Const,
    Expr,
    Mul,
    Neg,
    Sub,
    Vec,
    VecAdd,
    VecMul,
    VecSub,
)
from repro.ir.pattern import Bindings
from repro.trs.rule import PatternRule, Rule

__all__ = ["algebraic_rules"]


def _const(bindings: Bindings, name: str) -> int:
    node = bindings[name]
    assert isinstance(node, Const)
    return node.value


def _is_zero_vec(node: Expr) -> bool:
    return isinstance(node, Vec) and all(
        isinstance(e, Const) and e.value == 0 for e in node.elements
    )


def _is_one_vec(node: Expr) -> bool:
    return isinstance(node, Vec) and all(
        isinstance(e, Const) and e.value == 1 for e in node.elements
    )


def algebraic_rules() -> List[Rule]:
    """The algebraic rule family (identities, folding, factorization, ...)."""
    rules: List[Rule] = []

    # -- identity elimination -------------------------------------------------
    rules.append(
        PatternRule(
            "add-identity-right",
            "(+ ?x 0)",
            "?x",
            category="simplify",
            description="x + 0 => x",
        )
    )
    rules.append(
        PatternRule(
            "add-identity-left",
            "(+ 0 ?x)",
            "?x",
            category="simplify",
            description="0 + x => x",
        )
    )
    rules.append(
        PatternRule(
            "sub-identity",
            "(- ?x 0)",
            "?x",
            category="simplify",
            description="x - 0 => x",
        )
    )
    rules.append(
        PatternRule(
            "sub-from-zero",
            "(- 0 ?x)",
            builder=lambda b: Neg(b["x"]),
            category="simplify",
            description="0 - x => -x",
        )
    )
    rules.append(
        PatternRule(
            "mul-identity-right",
            "(* ?x 1)",
            "?x",
            category="simplify",
            description="x * 1 => x",
        )
    )
    rules.append(
        PatternRule(
            "mul-identity-left",
            "(* 1 ?x)",
            "?x",
            category="simplify",
            description="1 * x => x",
        )
    )

    # -- absorption -----------------------------------------------------------
    rules.append(
        PatternRule(
            "mul-absorb-right",
            "(* ?x 0)",
            builder=lambda b: Const(0),
            category="simplify",
            description="x * 0 => 0",
        )
    )
    rules.append(
        PatternRule(
            "mul-absorb-left",
            "(* 0 ?x)",
            builder=lambda b: Const(0),
            category="simplify",
            description="0 * x => 0",
        )
    )
    rules.append(
        PatternRule(
            "sub-self",
            "(- ?x ?x)",
            builder=lambda b: Const(0),
            category="simplify",
            description="x - x => 0",
        )
    )

    # -- negation -------------------------------------------------------------
    rules.append(
        PatternRule(
            "neg-neg",
            lhs=_neg_neg_pattern(),
            builder=lambda b: b["x"],
            category="simplify",
            description="-(-x) => x",
        )
    )
    rules.append(
        PatternRule(
            "add-neg-to-sub",
            lhs=Add(_pv("x"), Neg(_pv("y"))),
            builder=lambda b: Sub(b["x"], b["y"]),
            category="simplify",
            description="x + (-y) => x - y",
        )
    )
    rules.append(
        PatternRule(
            "sub-neg-to-add",
            lhs=Sub(_pv("x"), Neg(_pv("y"))),
            builder=lambda b: Add(b["x"], b["y"]),
            category="simplify",
            description="x - (-y) => x + y",
        )
    )
    rules.append(
        PatternRule(
            "neg-const",
            lhs=Neg(_pv("c", "const")),
            builder=lambda b: Const(-_const(b, "c")),
            category="simplify",
            description="-(c) => (-c) for constants",
        )
    )

    # -- constant folding -------------------------------------------------------
    rules.append(
        PatternRule(
            "const-fold-add",
            "(+ ?a:const ?b:const)",
            builder=lambda b: Const(_const(b, "a") + _const(b, "b")),
            category="simplify",
            description="fold constant addition",
        )
    )
    rules.append(
        PatternRule(
            "const-fold-sub",
            "(- ?a:const ?b:const)",
            builder=lambda b: Const(_const(b, "a") - _const(b, "b")),
            category="simplify",
            description="fold constant subtraction",
        )
    )
    rules.append(
        PatternRule(
            "const-fold-mul",
            "(* ?a:const ?b:const)",
            builder=lambda b: Const(_const(b, "a") * _const(b, "b")),
            category="simplify",
            description="fold constant multiplication",
        )
    )

    # -- plaintext consolidation ------------------------------------------------
    rules.append(
        PatternRule(
            "plain-consolidate",
            "(* ?a:const (* ?b:const ?x))",
            builder=lambda b: Mul(Const(_const(b, "a") * _const(b, "b")), b["x"]),
            category="simplify",
            description="(* a (* b x)) => (* (a*b) x) for plaintext constants",
        )
    )
    rules.append(
        PatternRule(
            "plain-consolidate-right",
            "(* (* ?x ?a:const) ?b:const)",
            builder=lambda b: Mul(b["x"], Const(_const(b, "a") * _const(b, "b"))),
            category="simplify",
            description="(* (* x a) b) => (* x (a*b)) for plaintext constants",
        )
    )

    # -- strength reduction ------------------------------------------------------
    rules.append(
        PatternRule(
            "mul-two-to-add",
            "(* 2 ?x)",
            "(+ ?x ?x)",
            category="simplify",
            description="2*x => x + x (addition is far cheaper than multiplication)",
        )
    )
    rules.append(
        PatternRule(
            "mul-two-to-add-right",
            "(* ?x 2)",
            "(+ ?x ?x)",
            category="simplify",
            description="x*2 => x + x",
        )
    )
    rules.append(
        PatternRule(
            "add-self-to-mul",
            "(+ ?x ?x)",
            "(* 2 ?x)",
            category="transform",
            description="x + x => 2*x (enables plaintext consolidation)",
        )
    )

    # -- factorization ------------------------------------------------------------
    rules.append(
        PatternRule(
            "comm-factor",
            "(+ (* ?a ?b) (* ?a ?c))",
            "(* ?a (+ ?b ?c))",
            category="simplify",
            description="a*b + a*c => a*(b+c)",
        )
    )
    rules.append(
        PatternRule(
            "comm-factor-right",
            "(+ (* ?b ?a) (* ?c ?a))",
            "(* (+ ?b ?c) ?a)",
            category="simplify",
            description="b*a + c*a => (b+c)*a",
        )
    )
    rules.append(
        PatternRule(
            "comm-factor-mixed",
            "(+ (* ?a ?b) (* ?c ?a))",
            "(* ?a (+ ?b ?c))",
            category="simplify",
            description="a*b + c*a => a*(b+c)",
        )
    )
    rules.append(
        PatternRule(
            "comm-factor-mixed-left",
            "(+ (* ?b ?a) (* ?a ?c))",
            "(* ?a (+ ?b ?c))",
            category="simplify",
            description="b*a + a*c => a*(b+c)",
        )
    )
    rules.append(
        PatternRule(
            "comm-factor-sub",
            "(- (* ?a ?b) (* ?a ?c))",
            "(* ?a (- ?b ?c))",
            category="simplify",
            description="a*b - a*c => a*(b-c)",
        )
    )
    rules.append(
        PatternRule(
            "distribute-left",
            "(* ?a (+ ?b ?c))",
            "(+ (* ?a ?b) (* ?a ?c))",
            category="transform",
            description="a*(b+c) => a*b + a*c (may enable vectorization)",
        )
    )
    rules.append(
        PatternRule(
            "distribute-right",
            "(* (+ ?a ?b) ?c)",
            "(+ (* ?a ?c) (* ?b ?c))",
            category="transform",
            description="(a+b)*c => a*c + b*c",
        )
    )

    # -- commutativity / associativity ---------------------------------------------
    rules.append(
        PatternRule(
            "add-commute",
            "(+ ?a ?b)",
            "(+ ?b ?a)",
            guard=lambda b: b["a"] != b["b"],
            category="transform",
            description="a + b => b + a",
        )
    )
    rules.append(
        PatternRule(
            "mul-commute",
            "(* ?a ?b)",
            "(* ?b ?a)",
            guard=lambda b: b["a"] != b["b"],
            category="transform",
            description="a * b => b * a",
        )
    )
    rules.append(
        PatternRule(
            "add-assoc-left",
            "(+ ?a (+ ?b ?c))",
            "(+ (+ ?a ?b) ?c)",
            category="transform",
            description="a + (b + c) => (a + b) + c",
        )
    )
    rules.append(
        PatternRule(
            "add-assoc-right",
            "(+ (+ ?a ?b) ?c)",
            "(+ ?a (+ ?b ?c))",
            category="transform",
            description="(a + b) + c => a + (b + c)",
        )
    )
    rules.append(
        PatternRule(
            "mul-assoc-left",
            "(* ?a (* ?b ?c))",
            "(* (* ?a ?b) ?c)",
            category="transform",
            description="a * (b * c) => (a * b) * c",
        )
    )
    rules.append(
        PatternRule(
            "mul-assoc-right",
            "(* (* ?a ?b) ?c)",
            "(* ?a (* ?b ?c))",
            category="transform",
            description="(a * b) * c => a * (b * c)",
        )
    )
    rules.append(
        PatternRule(
            "sub-add-regroup",
            "(- (+ ?a ?b) ?b)",
            "?a",
            category="simplify",
            description="(a + b) - b => a",
        )
    )
    rules.append(
        PatternRule(
            "add-sub-cancel",
            "(+ (- ?a ?b) ?b)",
            "?a",
            category="simplify",
            description="(a - b) + b => a",
        )
    )

    # -- vector-level algebra ----------------------------------------------------------
    rules.append(
        PatternRule(
            "vecadd-commute",
            "(VecAdd ?a ?b)",
            "(VecAdd ?b ?a)",
            guard=lambda b: b["a"] != b["b"],
            category="transform",
            description="VecAdd a b => VecAdd b a",
        )
    )
    rules.append(
        PatternRule(
            "vecmul-commute",
            "(VecMul ?a ?b)",
            "(VecMul ?b ?a)",
            guard=lambda b: b["a"] != b["b"],
            category="transform",
            description="VecMul a b => VecMul b a",
        )
    )
    rules.append(
        PatternRule(
            "vecadd-assoc-right",
            "(VecAdd (VecAdd ?a ?b) ?c)",
            "(VecAdd ?a (VecAdd ?b ?c))",
            category="transform",
            description="(VecAdd (VecAdd a b) c) => (VecAdd a (VecAdd b c))",
        )
    )
    rules.append(
        PatternRule(
            "vecmul-assoc-right",
            "(VecMul (VecMul ?a ?b) ?c)",
            "(VecMul ?a (VecMul ?b ?c))",
            category="transform",
            description="(VecMul (VecMul a b) c) => (VecMul a (VecMul b c))",
        )
    )
    rules.append(
        PatternRule(
            "vec-factor",
            "(VecAdd (VecMul ?a ?b) (VecMul ?a ?c))",
            "(VecMul ?a (VecAdd ?b ?c))",
            category="simplify",
            description="VecMul a b + VecMul a c => VecMul a (VecAdd b c)",
        )
    )
    rules.append(
        PatternRule(
            "vec-factor-right",
            "(VecAdd (VecMul ?b ?a) (VecMul ?c ?a))",
            "(VecMul (VecAdd ?b ?c) ?a)",
            category="simplify",
            description="VecMul b a + VecMul c a => VecMul (VecAdd b c) a",
        )
    )
    rules.append(
        PatternRule(
            "vec-factor-sub",
            "(VecSub (VecMul ?a ?b) (VecMul ?a ?c))",
            "(VecMul ?a (VecSub ?b ?c))",
            category="simplify",
            description="VecMul a b - VecMul a c => VecMul a (VecSub b c)",
        )
    )
    rules.append(
        PatternRule(
            "vecsub-self",
            "(VecSub ?x ?x)",
            builder=lambda b: _zero_vec_like(b["x"]),
            guard=lambda b: _vec_arity(b["x"]) is not None,
            category="simplify",
            description="VecSub x x => zero vector",
        )
    )
    rules.append(
        PatternRule(
            "vecadd-zero",
            lhs=VecAdd(_pv("x"), _pv("z")),
            builder=lambda b: b["x"],
            guard=lambda b: _is_zero_vec(b["z"]),
            category="simplify",
            description="VecAdd x 0-vector => x",
        )
    )
    rules.append(
        PatternRule(
            "vecmul-one",
            lhs=VecMul(_pv("x"), _pv("o")),
            builder=lambda b: b["x"],
            guard=lambda b: _is_one_vec(b["o"]),
            category="simplify",
            description="VecMul x 1-vector => x",
        )
    )
    rules.append(
        PatternRule(
            "vecneg-neg",
            "(VecNeg (VecNeg ?x))",
            "?x",
            category="simplify",
            description="VecNeg (VecNeg x) => x",
        )
    )

    return rules


# ---------------------------------------------------------------------------
# Small pattern-construction helpers
# ---------------------------------------------------------------------------
def _pv(name: str, kind: str = "any"):
    from repro.ir.pattern import PatternVar

    return PatternVar(name, kind=kind)


def _neg_neg_pattern() -> Expr:
    return Neg(Neg(_pv("x")))


def _vec_arity(node: Expr):
    if isinstance(node, Vec):
        return len(node.elements)
    if isinstance(node, (VecAdd, VecSub, VecMul)):
        left = _vec_arity(node.children[0])
        right = _vec_arity(node.children[1])
        if left is not None:
            return left
        return right
    return None


def _zero_vec_like(node: Expr) -> Expr:
    arity = _vec_arity(node) or 1
    return Vec(*[Const(0) for _ in range(arity)])
