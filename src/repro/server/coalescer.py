"""The batch coalescer: group queued executions sharing a circuit.

This is the headline throughput move of the orchestration server.  When N
queued users all want the *same* circuit executed (the common case for a
serving system: one popular kernel, many input sets), running them one by
one wastes N-1 passes over the instruction tape.  The coalescer groups
pending execute jobs by ``(circuit content fingerprint, backend)`` —
:func:`~repro.backends.base.program_fingerprint`, the same content hash the
:class:`~repro.service.execution.ExecutionService` keys its measured-time
table on — and each group becomes a *single* backend batch: one
``execute_many`` call whose input list is the concatenation of every member
job's inputs.  On the vector VM one tape pass then serves the whole group
(``scripts/bench_server.py`` measures the resulting speedup against
one-at-a-time submission in ``BENCH_server.json``).

Groups preserve priority order within themselves, and each remembers which
slice of the batched reports belongs to which job so results fan back out
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.backends.base import program_fingerprint
from repro.compiler.circuit import CircuitProgram
from repro.obs.trace import NULL_TRACER, Tracer
from repro.server.jobs import Job

__all__ = ["CoalescedGroup", "coalesce"]


@dataclass
class CoalescedGroup:
    """One backend batch: N jobs sharing a circuit, inputs concatenated."""

    fingerprint: str
    backend_key: str
    program: CircuitProgram
    jobs: List[Job] = field(default_factory=list)
    #: Per-job input sets, parallel to ``jobs`` (job i owns the slice
    #: ``[offsets[i], offsets[i] + len(inputs_per_job[i]))`` of the batch).
    inputs_per_job: List[List[Mapping[str, int]]] = field(default_factory=list)

    def add(self, job: Job, inputs: Sequence[Mapping[str, int]]) -> None:
        self.jobs.append(job)
        self.inputs_per_job.append(list(inputs))

    @property
    def batched_inputs(self) -> List[Mapping[str, int]]:
        """Every member job's inputs, concatenated in job order."""
        flat: List[Mapping[str, int]] = []
        for inputs in self.inputs_per_job:
            flat.extend(inputs)
        return flat

    @property
    def coalesced(self) -> bool:
        """True when more than one job shares this batch."""
        return len(self.jobs) > 1

    def slices(self) -> List[Tuple[int, int]]:
        """``(start, stop)`` report-slice per job, in job order."""
        bounds: List[Tuple[int, int]] = []
        cursor = 0
        for inputs in self.inputs_per_job:
            bounds.append((cursor, cursor + len(inputs)))
            cursor += len(inputs)
        return bounds


def coalesce(
    entries: Sequence[Tuple[Job, CircuitProgram, Sequence[Mapping[str, int]], str]],
    *,
    tracer: Optional[Tracer] = None,
) -> List[CoalescedGroup]:
    """Group ``(job, circuit, inputs, backend_key)`` entries into batches.

    Entries arrive in scheduling (priority) order and groups come back
    ordered by their first member, so coalescing never reorders work across
    priorities — it only merges equal circuits that would have run anyway.

    With a ``tracer`` the grouping work (fingerprint hashing included — that
    is the cost coalescing amortizes) is recorded as one ``coalesce`` stage
    span, nested under whatever span the calling thread has open.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    with tracer.span("coalesce", attrs={"entries": len(entries)}) as span:
        groups: Dict[Tuple[str, str], CoalescedGroup] = {}
        ordered: List[CoalescedGroup] = []
        #: Jobs sharing a circuit usually share the object too (the server's
        #: circuit memo), so hash each distinct object once per call.
        fingerprints: Dict[int, str] = {}
        for job, program, inputs, backend_key in entries:
            fingerprint = fingerprints.get(id(program))
            if fingerprint is None:
                fingerprint = fingerprints[id(program)] = program_fingerprint(program)
            key = (fingerprint, backend_key)
            group = groups.get(key)
            if group is None:
                group = CoalescedGroup(
                    fingerprint=key[0], backend_key=backend_key, program=program
                )
                groups[key] = group
                ordered.append(group)
            group.add(job, inputs)
        span.set_attr("groups", len(ordered))
        span.set_attr("coalesced_jobs", sum(len(g.jobs) for g in ordered if g.coalesced))
    return ordered
