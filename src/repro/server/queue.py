"""A thread-safe priority queue of jobs with batch draining and overload
protection.

The scheduling loop of the :class:`~repro.server.server.JobServer` does not
pop one job at a time: coalescing only works when the scheduler can see
*all* currently pending work, group it by circuit fingerprint and hand whole
groups to the backend.  :meth:`JobQueue.pop_batch` therefore drains every
queued job in priority order in one call (blocking until at least one is
available or the timeout lapses), which is the queue-level half of the
two-level scheduling scheme — the worker-level half lives in
:meth:`repro.service.execution.ExecutionService.run_jobs`.

Ordering: higher *effective* priority first, then submission order (a
monotonically increasing sequence number breaks ties), so the ordering is a
strict total order and the queue is deterministic.  With ``aging_interval_s``
set, the effective priority of a waiting job rises by one level per interval
waited, so under sustained high-priority pressure a low-priority job cannot
starve: eventually its aged priority overtakes fresh arrivals.

Overload protection is the queue's second job:

* ``capacity`` bounds the total queue depth.  When a push overflows it, the
  entry with the *lowest* effective priority — the incoming job or a queued
  one it displaces — is shed and returned to the caller, which gives it a
  terminal ``SHED`` status.  Ties shed the youngest entry, so FIFO fairness
  within a priority level survives overload.
* ``per_priority_capacity`` bounds each base-priority level separately
  (backpressure per class): one flooding priority fills only its own slots,
  and its overflow is shed even while the queue has room overall.

The queue also maintains per-priority counts and summed service-time
estimates (the server stamps each job's estimate before pushing), which is
what the admission controller reads to turn backlog into an estimated drain
time without walking the queue.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.server.jobs import Job

__all__ = ["JobQueue", "ENQUEUED_AT_ATTR", "ESTIMATE_ATTR"]

#: Attribute the server stamps on jobs before pushing: estimated service
#: seconds, fed into the per-priority backlog aggregates.
ESTIMATE_ATTR = "_estimated_service_s"

#: Attribute the queue stamps on jobs at enqueue time (wall-clock seconds).
#: Retried jobs are re-pushed and re-stamped, so the tracer's per-attempt
#: ``queue_wait`` span starts at that attempt's own enqueue instead of the
#: original submission.
ENQUEUED_AT_ATTR = "_enqueued_wall"


class JobQueue:
    """Priority queue: higher effective priority first, FIFO within a level.

    Parameters
    ----------
    capacity:
        Maximum queued jobs; pushes beyond it shed the lowest-effective-
        priority entry (None: unbounded, the pre-overload behaviour).
    per_priority_capacity:
        Maximum queued jobs *per base priority level*; an arrival into a
        full level is shed immediately, regardless of total occupancy.
    aging_interval_s:
        Seconds of waiting that raise a job's effective priority by one
        level (None: no aging, effective == base priority).
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        *,
        per_priority_capacity: Optional[int] = None,
        aging_interval_s: Optional[float] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        if per_priority_capacity is not None and per_priority_capacity < 1:
            raise ValueError("per-priority capacity must be at least 1")
        if aging_interval_s is not None and aging_interval_s <= 0.0:
            raise ValueError("aging interval must be positive")
        self.capacity = capacity
        self.per_priority_capacity = per_priority_capacity
        self.aging_interval_s = aging_interval_s
        self._entries: List[Tuple[int, Job]] = []  # guarded-by: _lock
        self._sequence = itertools.count()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._count_by_priority: Dict[int, int] = {}  # guarded-by: _lock
        self._cost_by_priority: Dict[int, float] = {}  # guarded-by: _lock

    # -- priority & ordering -------------------------------------------------
    def effective_priority(self, job: Job, now: Optional[float] = None) -> int:
        """Base priority plus one level per aging interval waited."""
        if self.aging_interval_s is None:
            return job.priority
        if now is None:
            now = time.time()
        waited = max(0.0, now - job.submitted_at)
        return job.priority + int(waited / self.aging_interval_s)

    def _sort_key(self, entry: Tuple[int, Job], now: float) -> Tuple[int, int]:
        sequence, job = entry
        return (-self.effective_priority(job, now), sequence)

    # -- bookkeeping (all under self._lock) ----------------------------------
    def _account_add(self, job: Job) -> None:  # holds: _lock
        self._count_by_priority[job.priority] = (
            self._count_by_priority.get(job.priority, 0) + 1
        )
        self._cost_by_priority[job.priority] = self._cost_by_priority.get(
            job.priority, 0.0
        ) + float(getattr(job, ESTIMATE_ATTR, 0.0))

    def _account_remove(self, job: Job) -> None:  # holds: _lock
        remaining = self._count_by_priority.get(job.priority, 0) - 1
        if remaining > 0:
            self._count_by_priority[job.priority] = remaining
            self._cost_by_priority[job.priority] = max(
                0.0,
                self._cost_by_priority.get(job.priority, 0.0)
                - float(getattr(job, ESTIMATE_ATTR, 0.0)),
            )
        else:
            self._count_by_priority.pop(job.priority, None)
            self._cost_by_priority.pop(job.priority, None)

    # -- backlog queries ------------------------------------------------------
    def depth_at_or_above(self, priority: int) -> int:
        """Queued jobs whose *base* priority is >= ``priority``."""
        with self._lock:
            return sum(
                count
                for level, count in self._count_by_priority.items()
                if level >= priority
            )

    def backlog_service_s(self, priority: int) -> float:
        """Summed service-time estimates of jobs at base priority >= given.

        This is the work an arrival at ``priority`` must wait behind — the
        admission controller divides it by the worker count to estimate
        drain time.
        """
        with self._lock:
            return sum(
                cost
                for level, cost in self._cost_by_priority.items()
                if level >= priority
            )

    # -- mutation -------------------------------------------------------------
    def push(self, job: Job) -> Optional[Job]:
        """Enqueue ``job``; returns the job shed by overload, if any.

        None means the push succeeded with room to spare.  A returned job is
        either the incoming one (its priority level is full, or it is the
        cheapest entry of a full queue) or a displaced queued job whose
        effective priority was the lowest; the caller owns giving it a
        terminal ``SHED`` status.
        """
        setattr(job, ENQUEUED_AT_ATTR, time.time())
        with self._not_empty:
            level_count = self._count_by_priority.get(job.priority, 0)
            if (
                self.per_priority_capacity is not None
                and level_count >= self.per_priority_capacity
            ):
                return job
            if self.capacity is not None and len(self._entries) >= self.capacity:
                # Fast path: if the incoming job's base priority is not above
                # any queued level, it is provably its own victim — aging only
                # *raises* queued entries' effective priority, and the
                # youngest-sheds tie break goes against a fresh arrival.  This
                # keeps a flooded low-priority class from paying an O(n) scan
                # (plus a displacement) per overflowing push.
                if job.priority <= min(self._count_by_priority):
                    return job
                now = time.time()
                sequence = next(self._sequence)
                victim_index = None
                victim_key = (-self.effective_priority(job, now), sequence)
                for index, entry in enumerate(self._entries):
                    key = self._sort_key(entry, now)
                    if key > victim_key:  # larger key sorts later = lower rank
                        victim_index = index
                        victim_key = key
                if victim_index is None:
                    return job
                _, victim = self._entries.pop(victim_index)
                self._account_remove(victim)
                self._entries.append((sequence, job))
                self._account_add(job)
                self._not_empty.notify()
                return victim
            self._entries.append((next(self._sequence), job))
            self._account_add(job)
            self._not_empty.notify()
            return None

    def pop(self, timeout: Optional[float] = None) -> Optional[Job]:
        """The highest-effective-priority job, or None on timeout."""
        with self._not_empty:
            if not self._entries and not self._not_empty.wait_for(
                lambda: bool(self._entries), timeout=timeout
            ):
                return None
            now = time.time()
            best = min(range(len(self._entries)), key=lambda i: self._sort_key(self._entries[i], now))
            _, job = self._entries.pop(best)
            self._account_remove(job)
            return job

    def pop_batch(self, timeout: Optional[float] = None) -> List[Job]:
        """Drain every queued job in effective-priority order.

        Blocks until at least one job is available (or ``timeout`` seconds
        pass, returning ``[]``).  This is what lets the scheduler see the
        whole pending set at once and coalesce across it.  Aging is applied
        at drain time: the ordering reflects each job's waited time *now*,
        not its rank when it was pushed.
        """
        with self._not_empty:
            if not self._entries and not self._not_empty.wait_for(
                lambda: bool(self._entries), timeout=timeout
            ):
                return []
            now = time.time()
            self._entries.sort(key=lambda entry: self._sort_key(entry, now))
            jobs = [job for _, job in self._entries]
            self._entries.clear()
            self._count_by_priority.clear()
            self._cost_by_priority.clear()
            return jobs

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._count_by_priority.clear()
            self._cost_by_priority.clear()
