"""A thread-safe priority queue of jobs with batch draining.

The scheduling loop of the :class:`~repro.server.server.JobServer` does not
pop one job at a time: coalescing only works when the scheduler can see
*all* currently pending work, group it by circuit fingerprint and hand whole
groups to the backend.  :meth:`JobQueue.pop_batch` therefore drains every
queued job in priority order in one call (blocking until at least one is
available or the timeout lapses), which is the queue-level half of the
two-level scheduling scheme — the worker-level half lives in
:meth:`repro.service.execution.ExecutionService.run_jobs`.

Ordering: higher ``priority`` first, then submission order (a monotonically
increasing sequence number breaks ties), so the queue is deterministic and
starvation-free among equal priorities.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import List, Optional

from repro.server.jobs import Job

__all__ = ["JobQueue"]


class JobQueue:
    """Priority queue: higher ``Job.priority`` first, FIFO within a level."""

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._sequence = itertools.count()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)

    def push(self, job: Job) -> None:
        with self._not_empty:
            heapq.heappush(self._heap, (-job.priority, next(self._sequence), job))
            self._not_empty.notify()

    def pop(self, timeout: Optional[float] = None) -> Optional[Job]:
        """The highest-priority job, or None when the wait times out."""
        with self._not_empty:
            if not self._heap and not self._not_empty.wait_for(
                lambda: bool(self._heap), timeout=timeout
            ):
                return None
            return heapq.heappop(self._heap)[2]

    def pop_batch(self, timeout: Optional[float] = None) -> List[Job]:
        """Drain every queued job in priority order.

        Blocks until at least one job is available (or ``timeout`` seconds
        pass, returning ``[]``).  This is what lets the scheduler see the
        whole pending set at once and coalesce across it.
        """
        with self._not_empty:
            if not self._heap and not self._not_empty.wait_for(
                lambda: bool(self._heap), timeout=timeout
            ):
                return []
            jobs: List[Job] = []
            while self._heap:
                jobs.append(heapq.heappop(self._heap)[2])
            return jobs

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def clear(self) -> None:
        with self._lock:
            self._heap.clear()
