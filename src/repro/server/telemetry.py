"""Server metrics: counters, gauges, latency histograms, JSON snapshots.

A long-running :class:`~repro.server.server.JobServer` needs observable
internals — how deep is the queue, how many batches were coalesced, what the
job-latency distribution looks like — without pulling in a metrics
dependency.  :class:`MetricsRegistry` is a small, thread-safe registry of
three instrument kinds in the Prometheus mould:

* :class:`Counter` — monotonically increasing event counts
  (``jobs_completed``, ``batches_coalesced``);
* :class:`Gauge` — last-written point-in-time values (``queue_depth``);
* :class:`Histogram` — observation distributions over fixed log-scale
  buckets plus count/sum/min/max (``job_run_s``, ``job_wait_s``).

:meth:`MetricsRegistry.snapshot` renders everything as one plain dict (JSON
serializable by construction), and :meth:`MetricsRegistry.write_snapshot`
atomically persists it — the ``repro metrics`` CLI reads that file, and the
server smoke asserts coalescing happened from the same snapshot.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import threading
from typing import Dict, List, Optional, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Default histogram bucket upper bounds (seconds): log-scale from 100µs up.
DEFAULT_BUCKETS = (
    0.0001,
    0.001,
    0.01,
    0.1,
    1.0,
    10.0,
    100.0,
)


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for decrements")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def as_dict(self) -> float:
        return self._value


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def as_dict(self) -> float:
        return self._value


class Histogram:
    """An observation distribution over fixed cumulative-style buckets.

    ``buckets[i]`` counts observations ``<= bounds[i]``; one overflow bucket
    catches the rest.  Count, sum, min and max ride along so snapshots can
    report means and extremes without retaining raw samples.
    """

    __slots__ = ("name", "bounds", "_buckets", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram bucket bounds must be sorted")
        self.name = name
        self.bounds = tuple(float(bound) for bound in bounds)
        self._buckets = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            slot = len(self.bounds)
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    slot = index
                    break
            self._buckets[slot] += 1
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            buckets: Dict[str, int] = {}
            for bound, count in zip(self.bounds, self._buckets):
                buckets[f"le_{bound:g}"] = count
            buckets["overflow"] = self._buckets[-1]
            return {
                "count": self._count,
                "sum": self._sum,
                "mean": self.mean,
                "min": self._min if self._count else 0.0,
                "max": self._max if self._count else 0.0,
                "buckets": buckets,
            }


class MetricsRegistry:
    """A named, get-or-create registry of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    name, bounds if bounds is not None else DEFAULT_BUCKETS
                )
            return instrument

    def names(self) -> List[str]:
        with self._lock:
            return sorted(
                [*self._counters, *self._gauges, *self._histograms]
            )

    def snapshot(self) -> Dict[str, object]:
        """Everything in the registry as one JSON-serializable dict."""
        with self._lock:
            return {
                "counters": {
                    name: instrument.as_dict()
                    for name, instrument in sorted(self._counters.items())
                },
                "gauges": {
                    name: instrument.as_dict()
                    for name, instrument in sorted(self._gauges.items())
                },
                "histograms": {
                    name: instrument.as_dict()
                    for name, instrument in sorted(self._histograms.items())
                },
            }

    def write_snapshot(self, path: str) -> Dict[str, object]:
        """Atomically write :meth:`snapshot` as JSON to ``path``."""
        payload = self.snapshot()
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "w", dir=directory, suffix=".tmp", delete=False, encoding="utf-8"
        )
        try:
            with handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return payload
