"""Server metrics: counters, gauges, latency histograms, JSON snapshots.

A long-running :class:`~repro.server.server.JobServer` needs observable
internals — how deep is the queue, how many batches were coalesced, what the
job-latency distribution looks like — without pulling in a metrics
dependency.  :class:`MetricsRegistry` is a small, thread-safe registry of
three instrument kinds in the Prometheus mould:

* :class:`Counter` — monotonically increasing event counts
  (``jobs_completed``, ``batches_coalesced``);
* :class:`Gauge` — last-written point-in-time values (``queue_depth``);
* :class:`Histogram` — observation distributions over fixed log-scale
  buckets plus count/sum/min/max (``job_run_s``, ``job_wait_s``), with
  :meth:`Histogram.percentile` interpolating p50/p99 estimates out of the
  buckets (error bounded by the width of the containing bucket).

:meth:`MetricsRegistry.snapshot` renders everything as one plain dict (JSON
serializable by construction), and :meth:`MetricsRegistry.write_snapshot`
atomically persists it — the ``repro metrics`` CLI reads that file, and the
server smoke asserts coalescing happened from the same snapshot.

Serving SLOs live here too: :class:`SLOPolicy` declares per-priority wait /
run latency budgets, and :class:`SLOTracker` folds every observation into
per-priority histograms (``job_wait_s_p{n}``, ``job_run_s_p{n}``) plus
``slo_violations`` counters, all inside an ordinary registry so snapshots
and the CLI need no new machinery.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SLOClass",
    "SLOPolicy",
    "SLOTracker",
    "percentile_from_snapshot",
]

#: Default histogram bucket upper bounds (seconds): log-scale from 100µs up.
DEFAULT_BUCKETS = (
    0.0001,
    0.001,
    0.01,
    0.1,
    1.0,
    10.0,
    100.0,
)

#: Finer latency bounds for the SLO-facing wait/run histograms: percentile
#: estimates interpolate inside one bucket, so the buckets around realistic
#: serving latencies (1ms..10s) are kept narrow enough for p99 checks.
LATENCY_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    100.0,
)


def _bucket_percentile(
    bounds: Sequence[float],
    buckets: Sequence[int],
    count: int,
    minimum: float,
    maximum: float,
    q: float,
) -> float:
    """Percentile ``q`` interpolated from cumulative-style bucket counts.

    The estimate is linear within the containing bucket and clamped to the
    observed ``[min, max]``, so its error is bounded by that bucket's width
    (the unit tests pin exactly this bound).  Edge cases are defined, never
    interpolated: an empty histogram is 0.0 for every ``q``; ``q=0`` /
    ``q=1`` are the observed minimum / maximum; and when the observed
    extremes are missing or non-finite (older persisted snapshots,
    hand-built payloads) the populated bucket bounds stand in for them, so
    estimates stay inside the recorded data instead of clamping to 0.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("percentile q must be in [0, 1]")
    if count <= 0:
        return 0.0
    if not math.isfinite(minimum) or not math.isfinite(maximum):
        populated = [index for index, value in enumerate(buckets) if value > 0]
        if populated:
            first, last = populated[0], populated[-1]
            lower = bounds[first - 1] if first > 0 else 0.0
            if last < len(bounds):
                upper = bounds[last]
            else:  # overflow bucket: the top bound is the best finite stand-in
                upper = bounds[-1] if bounds else lower
        else:
            lower = upper = 0.0
        if not math.isfinite(minimum):
            minimum = lower
        if not math.isfinite(maximum):
            maximum = max(upper, minimum)
    if q <= 0.0:
        return minimum
    if q >= 1.0:
        return maximum
    rank = q * count
    cumulative = 0.0
    for index, bucket_count in enumerate(buckets):
        if bucket_count <= 0:
            continue
        if cumulative + bucket_count >= rank:
            lo = bounds[index - 1] if index > 0 else minimum
            hi = bounds[index] if index < len(bounds) else maximum
            lo = max(lo, minimum)
            hi = min(hi, maximum)
            if hi <= lo:
                return lo
            fraction = (rank - cumulative) / bucket_count
            return lo + fraction * (hi - lo)
        cumulative += bucket_count
    return maximum


def percentile_from_snapshot(payload: Mapping[str, object], q: float) -> float:
    """Percentile ``q`` from one histogram dict of a telemetry snapshot.

    Accepts exactly what :meth:`Histogram.as_dict` (and therefore
    ``metrics.json`` / ``TrafficReport.telemetry``) produce, so consumers of
    persisted snapshots share the same interpolation as live histograms.
    """
    if not payload:
        return 0.0
    raw = payload.get("buckets", {})
    bounds = sorted(float(key[3:]) for key in raw if key.startswith("le_"))
    buckets = [int(raw.get(f"le_{bound:g}", 0)) for bound in bounds]
    buckets.append(int(raw.get("overflow", 0)))
    return _bucket_percentile(
        bounds,
        buckets,
        int(payload.get("count", 0)),
        # NaN (not 0.0) when absent: _bucket_percentile then substitutes the
        # populated bucket bounds instead of clamping everything to 0.
        float(payload.get("min", float("nan"))),
        float(payload.get("max", float("nan"))),
        q,
    )


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for decrements")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def as_dict(self) -> float:
        return self._value


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def as_dict(self) -> float:
        return self._value


class Histogram:
    """An observation distribution over fixed cumulative-style buckets.

    ``buckets[i]`` counts observations ``<= bounds[i]``; one overflow bucket
    catches the rest.  Count, sum, min and max ride along so snapshots can
    report means and extremes without retaining raw samples.
    """

    __slots__ = ("name", "bounds", "_buckets", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram bucket bounds must be sorted")
        self.name = name
        self.bounds = tuple(float(bound) for bound in bounds)
        self._buckets = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            slot = len(self.bounds)
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    slot = index
                    break
            self._buckets[slot] += 1
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Percentile ``q`` (in ``[0, 1]``) interpolated from the buckets.

        Linear within the containing bucket, clamped to the observed
        ``[min, max]`` — so the estimate is never off by more than the width
        of that bucket, which is the bound the unit tests pin.
        """
        with self._lock:
            return _bucket_percentile(
                self.bounds,
                self._buckets,
                self._count,
                self._min if self._count else 0.0,
                self._max if self._count else 0.0,
                q,
            )

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            buckets: Dict[str, int] = {}
            for bound, count in zip(self.bounds, self._buckets):
                buckets[f"le_{bound:g}"] = count
            buckets["overflow"] = self._buckets[-1]
            return {
                "count": self._count,
                "sum": self._sum,
                "mean": self.mean,
                "min": self._min if self._count else 0.0,
                "max": self._max if self._count else 0.0,
                "buckets": buckets,
            }


@dataclass(frozen=True)
class SLOClass:
    """The latency budgets of one priority level."""

    priority: int
    #: Queue-wait budget in seconds (None: this class has no wait SLO).
    max_wait_s: Optional[float] = None
    #: Service-time budget in seconds (None: no run SLO).
    max_run_s: Optional[float] = None
    #: The percentile the SLO is declared over (reporting/benchmark checks;
    #: the violation counters count every individual budget overshoot).
    percentile: float = 0.99

    def as_dict(self) -> Dict[str, object]:
        return {
            "priority": self.priority,
            "max_wait_s": self.max_wait_s,
            "max_run_s": self.max_run_s,
            "percentile": self.percentile,
        }


@dataclass(frozen=True)
class SLOPolicy:
    """A declarative set of per-priority latency SLOs.

    Priorities not named by any class carry no SLO: their latencies are
    still tracked per priority, but nothing counts as a violation and the
    admission controller treats them as best-effort (no deadline budget).
    """

    classes: Tuple[SLOClass, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "classes", tuple(self.classes))
        priorities = [slo.priority for slo in self.classes]
        if len(priorities) != len(set(priorities)):
            raise ValueError("SLOPolicy has duplicate priority classes")

    @classmethod
    def from_budgets(
        cls,
        wait: Mapping[int, float],
        run: Optional[Mapping[int, float]] = None,
        *,
        percentile: float = 0.99,
    ) -> "SLOPolicy":
        """Build a policy from ``{priority: budget_seconds}`` mappings."""
        run = run or {}
        priorities = sorted(set(wait) | set(run), reverse=True)
        return cls(
            tuple(
                SLOClass(
                    priority=priority,
                    max_wait_s=wait.get(priority),
                    max_run_s=run.get(priority),
                    percentile=percentile,
                )
                for priority in priorities
            )
        )

    def class_for(self, priority: int) -> Optional[SLOClass]:
        for slo in self.classes:
            if slo.priority == priority:
                return slo
        return None

    def wait_budget(self, priority: int) -> Optional[float]:
        slo = self.class_for(priority)
        return slo.max_wait_s if slo is not None else None

    def run_budget(self, priority: int) -> Optional[float]:
        slo = self.class_for(priority)
        return slo.max_run_s if slo is not None else None

    def as_dict(self) -> Dict[str, object]:
        return {"classes": [slo.as_dict() for slo in self.classes]}


class SLOTracker:
    """Per-priority latency tracking + violation counting over a registry.

    Every observation lands in a per-priority histogram
    (``job_wait_s_p{n}`` / ``job_run_s_p{n}``, :data:`LATENCY_BUCKETS`
    bounds so p99 interpolation stays tight) and, when the policy declares a
    budget for that priority and the observation overshoots it, bumps
    ``slo_violations`` plus the per-priority breakdown counter.  All
    instruments live in the caller's registry: snapshots, ``metrics.json``
    and the CLI see SLO state with no extra plumbing.
    """

    def __init__(self, policy: Optional[SLOPolicy], registry: MetricsRegistry) -> None:
        self.policy = policy or SLOPolicy()
        self.registry = registry

    def _observe(
        self, kind: str, priority: int, value: float, budget: Optional[float]
    ) -> bool:
        self.registry.histogram(
            f"job_{kind}_s_p{priority}", bounds=LATENCY_BUCKETS
        ).observe(value)
        if budget is None or value <= budget:
            return False
        self.registry.counter("slo_violations").inc()
        self.registry.counter(f"slo_violations_{kind}_p{priority}").inc()
        return True

    def observe_wait(self, priority: int, wait_s: float) -> bool:
        """Record one queue wait; True when it violated the wait budget."""
        return self._observe("wait", priority, wait_s, self.policy.wait_budget(priority))

    def observe_run(self, priority: int, run_s: float) -> bool:
        """Record one service time; True when it violated the run budget."""
        return self._observe("run", priority, run_s, self.policy.run_budget(priority))

    def report(self) -> Dict[str, object]:
        """Per-priority percentile estimates + violation counts."""
        rows: Dict[str, object] = {}
        for slo in self.policy.classes:
            wait = self.registry.histogram(
                f"job_wait_s_p{slo.priority}", bounds=LATENCY_BUCKETS
            )
            run = self.registry.histogram(
                f"job_run_s_p{slo.priority}", bounds=LATENCY_BUCKETS
            )
            rows[str(slo.priority)] = {
                "slo": slo.as_dict(),
                "wait_p50_s": wait.percentile(0.5),
                "wait_p99_s": wait.percentile(slo.percentile),
                "run_p50_s": run.percentile(0.5),
                "run_p99_s": run.percentile(slo.percentile),
                "violations_wait": self.registry.counter(
                    f"slo_violations_wait_p{slo.priority}"
                ).value,
                "violations_run": self.registry.counter(
                    f"slo_violations_run_p{slo.priority}"
                ).value,
            }
        return rows


class MetricsRegistry:
    """A named, get-or-create registry of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}  # guarded-by: _lock
        self._gauges: Dict[str, Gauge] = {}  # guarded-by: _lock
        self._histograms: Dict[str, Histogram] = {}  # guarded-by: _lock
        #: Count of snapshots written so far; stamped into every snapshot's
        #: ``meta`` block so consumers (``repro top``, ``repro metrics
        #: --watch/--delta``) can order snapshots and compute rates.
        self._sequence = 0  # guarded-by: _lock

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    name, bounds if bounds is not None else DEFAULT_BUCKETS
                )
            return instrument

    def names(self) -> List[str]:
        with self._lock:
            return sorted(
                [*self._counters, *self._gauges, *self._histograms]
            )

    def snapshot(self) -> Dict[str, object]:
        """Everything in the registry as one JSON-serializable dict.

        The ``meta`` block carries a wall timestamp (epoch seconds), a
        monotonic timestamp (same-process elapsed-time math without wall
        clock jumps) and the monotonically increasing write-sequence
        number, so two successive ``metrics.json`` reads can be turned into
        per-second rates.
        """
        with self._lock:
            return {
                "meta": {
                    "sequence": self._sequence,
                    "wall_time": time.time(),
                    "monotonic_time": time.monotonic(),
                    "pid": os.getpid(),
                },
                "counters": {
                    name: instrument.as_dict()
                    for name, instrument in sorted(self._counters.items())
                },
                "gauges": {
                    name: instrument.as_dict()
                    for name, instrument in sorted(self._gauges.items())
                },
                "histograms": {
                    name: instrument.as_dict()
                    for name, instrument in sorted(self._histograms.items())
                },
            }

    def write_snapshot(self, path: str) -> Dict[str, object]:
        """Atomically write :meth:`snapshot` as JSON to ``path``.

        Each write bumps the snapshot sequence number first, so every
        persisted snapshot carries a strictly increasing ``meta.sequence``
        within this registry's lifetime.
        """
        with self._lock:
            self._sequence += 1
        payload = self.snapshot()
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "w", dir=directory, suffix=".tmp", delete=False, encoding="utf-8"
        )
        try:
            with handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return payload
