"""The persistent job store: an append-only JSONL event log.

Every job state change is appended to ``jobs.jsonl`` under the server's
``state_dir`` as one self-contained JSON record (see
:meth:`~repro.server.jobs.Job.to_record`), so the store is simultaneously

* **durable state** — :meth:`JobStore.replay` folds the log newest-wins into
  the current job table, which is how a restarted server recovers its queue
  (jobs caught mid-``running`` by a crash are requeued by the server);
* **the submission channel** — ``repro submit`` appends a ``queued`` record
  from another process and the serving loop picks it up through
  :meth:`JobStore.poll`, which tails the log past the last offset this store
  instance has seen.  No sockets, no daemons: the filesystem is the wire.

``state_dir=None`` gives an in-memory store with the same interface, used by
purely in-process servers (tests, the benchmark load generator).

Appends and compaction hold an exclusive ``fcntl`` lock on a sidecar lock
file on POSIX (not on the log itself, whose inode compaction replaces), so
concurrent client submissions interleave whole records and can never land
on an orphaned inode; :meth:`JobStore.compact` rewrites the log to one
record per job.

Recovery is hardened against damaged logs: torn (half-written) and corrupt
records are skipped and tallied in :attr:`JobStore.skipped_records` rather
than crashing replay, appends seal a torn tail with a newline before
writing so new records never concatenate into old garbage, and the
:mod:`repro.server.faults` hooks let tests inject exactly those damage
modes.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.trace import NULL_TRACER, Tracer
from repro.server.faults import InjectedFault
from repro.server.jobs import Job

__all__ = ["JobStore"]

try:  # POSIX only; Windows falls back to the in-process lock.
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

LOG_NAME = "jobs.jsonl"
LOCK_NAME = "jobs.jsonl.lock"
GENERATION_NAME = "jobs.jsonl.gen"
METRICS_NAME = "metrics.json"
TRACE_NAME = "traces.jsonl"


class JobStore:
    """Append-only JSONL persistence for jobs (or in-memory when unrooted).

    The state directory is created lazily on the first *write*, so read-only
    consumers (``repro jobs``/``repro metrics``, ``api.status``) never
    create directories as a side effect of a mistyped path.
    """

    def __init__(
        self,
        state_dir: Optional[str] = None,
        *,
        fault_injector: Optional[object] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.state_dir = os.path.abspath(state_dir) if state_dir else None
        #: Armed-trigger registry for the recovery tests (see
        #: :mod:`repro.server.faults`); None in production use.
        self.faults = fault_injector
        #: Span collector for the ``persist`` / ``store_replay`` /
        #: ``store_compact`` stages; the server passes its tracer in, bare
        #: client-side stores default to the disabled singleton.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Unparseable log records skipped so far by this store instance —
        #: torn (half-written) appends and corrupt (bit-rotted) lines.  The
        #: server mirrors this into the ``store_skipped_records`` counter.
        self.skipped_records = 0
        self._lock = threading.Lock()
        #: Log byte offset up to which :meth:`poll` has already read.
        self._offset = 0
        #: Identity ``(st_dev, st_ino, compaction generation)`` of the log
        #: the offset belongs to.  Compaction atomically *replaces* the
        #: log's inode, so a mere size comparison cannot tell "same log,
        #: new appends" from "new log that regrew past my old offset"; the
        #: generation counter (bumped by every :meth:`compact`) closes the
        #: remaining ABA hole where a freed inode is reused by a later
        #: compaction's temp file.
        self._log_ident: Optional[Tuple[int, int, int]] = None
        #: In-memory record log standing in for the file when unrooted.
        self._memory: List[Dict[str, object]] = []

    # -- paths --------------------------------------------------------------
    @property
    def persistent(self) -> bool:
        return self.state_dir is not None

    @property
    def log_path(self) -> Optional[str]:
        if self.state_dir is None:
            return None
        return os.path.join(self.state_dir, LOG_NAME)

    @property
    def metrics_path(self) -> Optional[str]:
        if self.state_dir is None:
            return None
        return os.path.join(self.state_dir, METRICS_NAME)

    @property
    def trace_path(self) -> Optional[str]:
        if self.state_dir is None:
            return None
        return os.path.join(self.state_dir, TRACE_NAME)

    @property
    def generation_path(self) -> Optional[str]:
        if self.state_dir is None:
            return None
        return os.path.join(self.state_dir, GENERATION_NAME)

    def _read_generation(self) -> int:
        """The log's compaction generation (0 when never compacted)."""
        try:
            with open(self.generation_path, "r", encoding="utf-8") as handle:
                return int(handle.read().strip() or 0)
        except (OSError, ValueError):
            return 0

    def _locked_file(self):
        """An exclusively flocked handle on the sidecar lock file.

        Appends and :meth:`compact` both serialize on this *separate* lock
        file rather than on ``jobs.jsonl`` itself: compaction atomically
        replaces the log's inode, so a writer flocking the log could hold a
        lock on an orphaned inode and silently lose its record.
        """
        os.makedirs(self.state_dir, exist_ok=True)
        handle = open(os.path.join(self.state_dir, LOCK_NAME), "a")
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        return handle

    # -- writing ------------------------------------------------------------
    def append(self, job: Job) -> None:
        """Durably append ``job``'s current state as one log record."""
        self.append_records([job.to_record()])

    def append_record(self, record: Dict[str, object]) -> None:
        self.append_records([record])

    def append_records(self, records: Sequence[Dict[str, object]]) -> None:
        """Durably append many records in one locked open + fsync.

        The batch form is the serving loop's hot path: one coalesced tick
        transitions N jobs, which must not cost N separate fsyncs.
        """
        if not records:
            return
        with self.tracer.span(
            "persist", attrs={"records": len(records), "durable": self.persistent}
        ):
            self._append_records(records)

    def _append_records(self, records: Sequence[Dict[str, object]]) -> None:
        lines = [json.dumps(record, sort_keys=True) for record in records]
        with self._lock:
            if self.state_dir is None:
                if self._offset == len(self._memory):
                    self._offset += len(lines)
                self._memory.extend(json.loads(line) for line in lines)
                return
            lock_handle = self._locked_file()
            try:
                fault = self.faults.fire("store.append") if self.faults is not None else None
                if fault is not None and fault.payload == "corrupt":
                    # Bit rot at write time: scramble the first record's
                    # bytes but keep the newline framing and keep going —
                    # the record must be *skipped* on replay, not crash it.
                    lines[0] = lines[0][: max(1, len(lines[0]) // 2)] + "#corrupt#"
                payload = "".join(line + "\n" for line in lines)
                pre_size = (
                    os.path.getsize(self.log_path)
                    if os.path.exists(self.log_path)
                    else 0
                )
                if pre_size:
                    # Seal a torn tail (a previous writer crashed mid-record)
                    # with its own newline, so our records start on a fresh
                    # line instead of concatenating into the garbage.
                    with open(self.log_path, "rb") as check:
                        check.seek(pre_size - 1)
                        if check.read(1) != b"\n":
                            payload = "\n" + payload
                if fault is not None and fault.payload == "torn":
                    # Crash mid-write: the batch's final record is cut in
                    # half and never gets its newline, then the "process"
                    # dies before returning.
                    data = payload.encode("utf-8")
                    cut = len(data) - (len(lines[-1].encode("utf-8")) // 2 + 1)
                    with open(self.log_path, "ab") as handle:
                        handle.write(data[: max(1, cut)])
                        handle.flush()
                        os.fsync(handle.fileno())
                    raise InjectedFault("simulated crash mid-append (torn record)")
                with open(self.log_path, "a", encoding="utf-8") as handle:
                    handle.write(payload)
                    handle.flush()
                    os.fsync(handle.fileno())
                    stat = os.fstat(handle.fileno())
                ident = (stat.st_dev, stat.st_ino, self._read_generation())
                if self._log_ident is None or ident == self._log_ident:
                    if self._offset == pre_size:
                        # Nothing unread preceded our own records:
                        # fast-forward the poll offset past them so the
                        # serving loop doesn't re-scan its own appends
                        # forever.
                        self._offset = pre_size + len(payload.encode("utf-8"))
                    self._log_ident = ident
                # else: another process compacted (replaced) the log since we
                # last read it; keep the stale identity so the next poll
                # notices the mismatch and re-reads from the start.
            finally:
                if fcntl is not None:
                    fcntl.flock(lock_handle.fileno(), fcntl.LOCK_UN)
                lock_handle.close()

    # -- reading ------------------------------------------------------------
    def _read_records(
        self, start: int = 0, *, count_partial_tail: bool = False
    ) -> Tuple[List[Dict[str, object]], int]:
        """Records from byte/sequence offset ``start``, plus the new offset.

        ``start`` is only honoured when the log file is still the one the
        offset was taken against (same ``(st_dev, st_ino)`` identity).  A log
        replaced by another process's compaction — even one that has since
        regrown *past* ``start`` — is re-read from the beginning: records
        fold newest-wins, so re-seeing old state is harmless, while seeking
        into the middle of a record of the new log would drop or mis-parse
        cross-process submissions.

        Unparseable lines (a record torn in half by a crashed writer, a
        corrupt line from bit rot) are *skipped* and tallied in
        :attr:`skipped_records` — one bad record must never take down
        recovery, and the log folds newest-wins so skipping one state
        transition at worst re-runs a job.  With ``count_partial_tail``
        (the full-log replay), trailing bytes without a newline are counted
        as a torn record too; incremental polls leave them uncounted since
        they may be a concurrent append still in flight.
        """
        if self.state_dir is None:
            return list(self._memory[start:]), len(self._memory)
        path = self.log_path
        if not os.path.exists(path):
            return [], 0
        with open(path, "rb") as handle:
            stat = os.fstat(handle.fileno())
            ident = (stat.st_dev, stat.st_ino, self._read_generation())
            if start and (ident != self._log_ident or stat.st_size < start):
                start = 0
            self._log_ident = ident
            handle.seek(start)
            data = handle.read()
        records: List[Dict[str, object]] = []
        consumed = 0
        for raw in data.split(b"\n"):
            advance = len(raw) + 1
            if consumed + advance > len(data):
                # Trailing bytes without a newline: either a concurrent
                # append mid-write (leave them for the next poll) or, on a
                # full replay after a crash, a torn final record.
                if count_partial_tail and raw.strip():
                    self.skipped_records += 1
                break
            consumed += advance
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                self.skipped_records += 1
                continue
            if not isinstance(record, dict) or "id" not in record:
                self.skipped_records += 1
                continue
            records.append(record)
        return records, start + consumed

    def replay(self) -> Dict[str, Job]:
        """Fold the whole log newest-wins into ``{job_id: Job}``.

        Also fast-forwards this store's poll offset to the end of the log, so
        a subsequent :meth:`poll` only sees records appended afterwards.
        """
        with self.tracer.span("store_replay") as span:
            with self._lock:
                records, offset = self._read_records(0, count_partial_tail=True)
                self._offset = offset
            jobs: Dict[str, Job] = {}
            for record in records:
                jobs[str(record["id"])] = Job.from_record(record)
            span.set_attr("records", len(records))
            span.set_attr("jobs", len(jobs))
        return jobs

    def poll(self) -> List[Job]:
        """Jobs from records appended since the last replay/poll.

        This is the server side of cross-process submission: clients append
        ``queued`` records, the serving loop polls them into its queue.  A
        log whose file identity changed since the last poll (another process
        compacted it — detected by inode, not size, so a log that regrew
        past the saved offset is caught too) is re-read from the start —
        records fold newest-wins, so re-seeing old state is harmless while
        missing new state is not.
        """
        with self._lock:
            records, self._offset = self._read_records(self._offset)
        return [Job.from_record(record) for record in records]

    def compact(self, jobs: Iterable[Job]) -> None:
        """Rewrite the log to exactly one record per job (atomic replace).

        Holds the same sidecar lock as appends, so a concurrent client
        submission cannot land on the replaced inode and vanish.
        """
        records = [job.to_record() for job in jobs]
        with self.tracer.span("store_compact", attrs={"jobs": len(records)}), self._lock:
            if self.state_dir is None:
                self._memory = records
                self._offset = len(records)
                return
            lock_handle = self._locked_file()
            try:
                tmp_path = self.log_path + ".tmp"
                with open(tmp_path, "w", encoding="utf-8") as handle:
                    for record in records:
                        handle.write(json.dumps(record, sort_keys=True) + "\n")
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_path, self.log_path)
                # Bump the compaction generation (atomic replace, same lock):
                # even if a later compaction's temp file reuses this log's
                # freed inode, readers still see the identity change.
                generation = self._read_generation() + 1
                gen_tmp = self.generation_path + ".tmp"
                with open(gen_tmp, "w", encoding="utf-8") as handle:
                    handle.write(f"{generation}\n")
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(gen_tmp, self.generation_path)
                stat = os.stat(self.log_path)
                self._offset = stat.st_size
                self._log_ident = (stat.st_dev, stat.st_ino, generation)
            finally:
                if fcntl is not None:
                    fcntl.flock(lock_handle.fileno(), fcntl.LOCK_UN)
                lock_handle.close()
