"""The job-orchestration server (persistent queue + batch coalescing).

This package is the top level of the system's two-level scheduling story:
above the worker-level, timer-augmented LPT packing that
:class:`~repro.service.execution.ExecutionService` already does, it adds a
*queue-level* scheduler that owns job lifecycle and cross-user batching:

* :mod:`repro.server.jobs` — the :class:`Job` model
  (``compile``/``execute`` kinds, priorities, retries, JSON round-trip);
* :mod:`repro.server.store` — a JSONL :class:`JobStore` under a state
  directory: durable queue, crash recovery, and the file-based submission
  channel ``repro submit`` uses;
* :mod:`repro.server.queue` — the priority :class:`JobQueue` with
  whole-queue batch draining;
* :mod:`repro.server.coalescer` — grouping of pending executions by circuit
  fingerprint so one backend batch serves N queued users;
* :mod:`repro.server.telemetry` — counters / gauges / histograms with JSON
  snapshot export, bucket-interpolated percentiles, and the per-priority
  SLO machinery (:class:`SLOPolicy` / :class:`SLOTracker`);
* :mod:`repro.server.faults` — deterministic fault injection
  (:class:`FaultInjector`) for the crash/corruption recovery tests;
* :mod:`repro.server.server` — :class:`JobServer`, the orchestrator wiring
  all of it to the compilation/execution services, with bounded-queue
  shedding, priority aging and cost-aware admission control under overload.

``repro.api`` exposes the client surface (``serve`` / ``submit`` /
``status`` / ``result``) and ``python -m repro`` the matching CLI
(``serve`` / ``submit`` / ``jobs`` / ``metrics``).
"""

from repro.server.coalescer import CoalescedGroup, coalesce
from repro.server.faults import Fault, FaultInjector, InjectedFault
from repro.server.jobs import (
    Job,
    JobState,
    circuit_from_record,
    circuit_to_record,
    new_job_id,
)
from repro.server.queue import JobQueue
from repro.server.server import JobServer
from repro.server.store import JobStore
from repro.server.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SLOClass,
    SLOPolicy,
    SLOTracker,
    percentile_from_snapshot,
)

__all__ = [
    "CoalescedGroup",
    "coalesce",
    "Fault",
    "FaultInjector",
    "InjectedFault",
    "Job",
    "JobState",
    "JobQueue",
    "JobServer",
    "JobStore",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SLOClass",
    "SLOPolicy",
    "SLOTracker",
    "percentile_from_snapshot",
    "circuit_from_record",
    "circuit_to_record",
    "new_job_id",
]
