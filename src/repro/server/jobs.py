"""The job model of the orchestration server.

A :class:`Job` is one queued unit of client work — *compile this source* or
*execute this source (or pre-lowered circuit) on these inputs* — carrying
everything the server needs to schedule, run, retry and persist it:

* **identity and routing** — a generated id, ``kind`` (``compile`` /
  ``execute``), compiler registry name + options, backend registry name;
* **payload** — the s-expression source, explicit inputs or a
  ``seed``/``input_range`` pair to sample them from, or a pre-lowered
  :class:`~repro.compiler.circuit.CircuitProgram` (serialized instruction by
  instruction so it survives the JSONL store);
* **lifecycle** — ``queued → running → completed | failed`` status (plus
  ``shed``, the terminal state overload protection rejects jobs into
  without running them), attempt counting against ``max_retries``, and
  submit/start/finish timestamps feeding the latency histograms;
* **outcome** — a JSON-serializable ``result`` dict (outputs, latency,
  noise accounting, coalesced batch size) or an ``error`` string.

Every field round-trips through :meth:`Job.to_record` /
:meth:`Job.from_record`, which is what makes the whole queue replayable from
the persistent store after a restart or crash.
"""

from __future__ import annotations

import enum
import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.compiler.circuit import CircuitProgram, InputSlot, Instruction, Opcode
from repro.obs.trace import new_span_id, new_trace_id

__all__ = [
    "JobState",
    "Job",
    "new_job_id",
    "circuit_to_record",
    "circuit_from_record",
]


class JobState(str, enum.Enum):
    """Lifecycle states of a job."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    #: Rejected by overload protection (queue backpressure or admission
    #: control) without ever running.  Terminal like FAILED, but cheap by
    #: construction — a shed job never touched a compiler or backend.
    SHED = "shed"

    @property
    def terminal(self) -> bool:
        return self in (JobState.COMPLETED, JobState.FAILED, JobState.SHED)


_COUNTER = itertools.count()
_COUNTER_LOCK = threading.Lock()


def new_job_id() -> str:
    """A process-unique, time-ordered job id (``job-<epoch-ms>-<pid>-<n>``)."""
    with _COUNTER_LOCK:
        serial = next(_COUNTER)
    return f"job-{int(time.time() * 1000):x}-{os.getpid():x}-{serial:x}"


def circuit_to_record(program: CircuitProgram) -> Dict[str, object]:
    """A JSON-serializable rendering of a lowered circuit.

    Pre-compiled execute jobs must survive the JSONL store like every other
    job, so the instruction tape is flattened field by field instead of being
    pickled (records stay greppable and cross-version readable).
    """
    instructions = []
    for instruction in program.instructions:
        instructions.append(
            {
                "result": instruction.result,
                "opcode": instruction.opcode.value,
                "operands": list(instruction.operands),
                "step": instruction.step,
                "name": instruction.name,
                "layout": [
                    [slot.name, slot.constant] for slot in instruction.layout
                ],
                "values": list(instruction.values),
            }
        )
    return {
        "name": program.name,
        "instructions": instructions,
        "outputs": [list(entry) for entry in program.outputs],
        "scalar_inputs": list(program.scalar_inputs),
    }


def circuit_from_record(record: Dict[str, object]) -> CircuitProgram:
    """Rebuild a :class:`CircuitProgram` from :func:`circuit_to_record`."""
    instructions: List[Instruction] = []
    for item in record["instructions"]:
        instructions.append(
            Instruction(
                result=int(item["result"]),
                opcode=Opcode(item["opcode"]),
                operands=tuple(int(op) for op in item["operands"]),
                step=int(item["step"]),
                name=item["name"],
                layout=tuple(
                    InputSlot(name=slot_name, constant=constant)
                    for slot_name, constant in item["layout"]
                ),
                values=tuple(int(value) for value in item["values"]),
            )
        )
    return CircuitProgram(
        name=str(record["name"]),
        instructions=instructions,
        outputs=[
            (int(register), str(name), int(length))
            for register, name, length in record["outputs"]
        ],
        scalar_inputs=[str(name) for name in record["scalar_inputs"]],
    )


@dataclass
class Job:
    """One queued unit of work (see module docstring for the field groups)."""

    id: str = field(default_factory=new_job_id)
    #: ``"compile"`` or ``"execute"``.
    kind: str = "execute"
    #: S-expression source text (None for pre-compiled circuit jobs).
    source: Optional[str] = None
    #: Pre-lowered circuit (execute jobs submitted by the harness).
    program: Optional[CircuitProgram] = None
    #: Compiler registry name (None follows the server default).
    compiler: Optional[str] = None
    compiler_options: Dict[str, object] = field(default_factory=dict)
    #: Execution backend registry name (None follows the server default).
    backend: Optional[str] = None
    #: Explicit program inputs; when None they are sampled from ``seed``.
    inputs: Optional[Dict[str, int]] = None
    seed: int = 0
    input_range: int = 7
    #: Higher runs earlier; ties break by submission order.
    priority: int = 0
    max_retries: int = 0
    name: Optional[str] = None
    #: Trace context: the id of the distributed trace this submission
    #: belongs to and the id of its root span.  Both are generated at
    #: construction when absent and persist through :meth:`to_record` /
    #: :meth:`from_record`, so crash recovery, requeue, retries, shed and
    #: cross-process store hand-offs all re-attach their spans to the
    #: original trace — one submission, one connected trace.
    trace_id: Optional[str] = None
    trace_root: Optional[str] = None

    status: JobState = JobState.QUEUED
    attempts: int = 0
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[Dict[str, object]] = None
    error: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("compile", "execute"):
            raise ValueError(f"job kind must be 'compile' or 'execute', got {self.kind!r}")
        if self.source is None and self.program is None:
            raise ValueError("a job needs a source expression or a pre-lowered circuit")
        if self.kind == "compile" and self.source is None:
            raise ValueError("compile jobs need a source expression")
        if self.trace_id is None:
            self.trace_id = new_trace_id()
        if self.trace_root is None:
            self.trace_root = new_span_id()

    def label(self) -> str:
        return self.name or (self.program.name if self.program is not None else self.id)

    @property
    def done(self) -> bool:
        return self.status.terminal

    # -- persistence --------------------------------------------------------
    def to_record(self) -> Dict[str, object]:
        """This job as one JSON-serializable store record."""
        record: Dict[str, object] = {
            "id": self.id,
            "kind": self.kind,
            "source": self.source,
            "compiler": self.compiler,
            "compiler_options": dict(self.compiler_options),
            "backend": self.backend,
            "inputs": dict(self.inputs) if self.inputs is not None else None,
            "seed": self.seed,
            "input_range": self.input_range,
            "priority": self.priority,
            "max_retries": self.max_retries,
            "name": self.name,
            "trace_id": self.trace_id,
            "trace_root": self.trace_root,
            "status": self.status.value,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "result": self.result,
            "error": self.error,
        }
        if self.program is not None:
            record["circuit"] = circuit_to_record(self.program)
        return record

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "Job":
        """Rebuild a job from a store record (inverse of :meth:`to_record`)."""
        circuit = record.get("circuit")
        inputs = record.get("inputs")
        return cls(
            id=str(record["id"]),
            kind=str(record.get("kind", "execute")),
            source=record.get("source"),
            program=circuit_from_record(circuit) if circuit is not None else None,
            compiler=record.get("compiler"),
            compiler_options=dict(record.get("compiler_options") or {}),
            backend=record.get("backend"),
            inputs={str(k): int(v) for k, v in inputs.items()} if inputs else None,
            seed=int(record.get("seed", 0)),
            input_range=int(record.get("input_range", 7)),
            priority=int(record.get("priority", 0)),
            max_retries=int(record.get("max_retries", 0)),
            name=record.get("name"),
            # Pre-observability records carry no trace context; __post_init__
            # then mints fresh ids, and the first re-append persists them.
            trace_id=record.get("trace_id"),
            trace_root=record.get("trace_root"),
            status=JobState(record.get("status", "queued")),
            attempts=int(record.get("attempts", 0)),
            submitted_at=float(record.get("submitted_at", 0.0)),
            started_at=record.get("started_at"),
            finished_at=record.get("finished_at"),
            result=record.get("result"),
            error=record.get("error"),
        )

    def summary(self) -> Dict[str, object]:
        """The compact status row ``repro jobs`` / ``api.status`` show."""
        row: Dict[str, object] = {
            "id": self.id,
            "kind": self.kind,
            "name": self.label(),
            "status": self.status.value,
            "priority": self.priority,
            "attempts": self.attempts,
        }
        if self.error is not None:
            row["error"] = self.error
        if self.result is not None and "coalesced_batch" in self.result:
            row["coalesced_batch"] = self.result["coalesced_batch"]
        return row
