"""The job-orchestration server: queue in, coalesced batches out.

:class:`JobServer` turns the one-shot compilation/execution stack into a
long-running service.  Clients submit :class:`~repro.server.jobs.Job`
objects (in-process through :meth:`JobServer.submit`, or cross-process by
appending ``queued`` records to the persistent store that ``repro serve``
polls); the scheduling loop then runs a *two-level* schedule per tick:

1. **Queue level** — drain every pending job in priority order, compile
   sources through a cached :class:`~repro.service.service.CompilationService`
   (identical expressions dedup through the content-addressed cache), and
   *coalesce* execute jobs sharing a circuit fingerprint into single backend
   batches (:mod:`repro.server.coalescer`) — one vector-VM tape pass serves
   every queued user of that circuit.
2. **Worker level** — hand the coalesced groups to
   :meth:`~repro.service.execution.ExecutionService.run_jobs`, which packs
   them largest-first across the worker pool using the service's
   timer-augmented EWMA weights (measured per-circuit times preferred over
   the analytical latency model).

Every state transition is appended to the
:class:`~repro.server.store.JobStore` (restart-safe: ``queued`` jobs are
re-enqueued, jobs caught ``running`` by a crash are retried), and a
:class:`~repro.server.telemetry.MetricsRegistry` tracks counters, queue
depth and latency histograms, snapshotted to ``metrics.json`` under the
state directory.

The server is overload-hardened: the queue can be bounded (total and
per-priority), overflowing or over-budget arrivals are *shed* into a
terminal ``SHED`` state instead of growing the backlog without bound,
priority aging keeps low-priority jobs from starving, a declarative
:class:`~repro.server.telemetry.SLOPolicy` drives per-priority latency
tracking plus cost-aware admission control (drain-time estimates from the
ExecutionService's timer-augmented EWMA weights), and a
:class:`~repro.server.faults.FaultInjector` gives the recovery tests exact
crash/slowdown/corruption injection points.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.backends.base import backend_produces_outputs
from repro.backends.registry import default_backend_name
from repro.compiler.executor import declared_outputs, reference_output
from repro.compiler.registry import CompilerSpec
from repro.fhe.params import BFVParameters
from repro.ir.analysis import variables
from repro.ir.evaluate import output_arity
from repro.ir.nodes import Expr
from repro.ir.parser import parse
from repro.obs.trace import NULL_TRACER, JsonlSpanSink, Span, Tracer, new_trace_id
from repro.server.coalescer import CoalescedGroup, coalesce
from repro.server.faults import FaultInjector
from repro.server.jobs import Job, JobState
from repro.server.queue import ENQUEUED_AT_ATTR, ESTIMATE_ATTR, JobQueue
from repro.server.store import TRACE_NAME, JobStore
from repro.server.telemetry import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    SLOPolicy,
    SLOTracker,
)
from repro.api import sample_named_inputs
from repro.service.cache import CompilationCache
from repro.service.execution import ExecutionJob, ExecutionService
from repro.service.service import CompilationService

__all__ = ["JobServer"]

#: How long a cached per-circuit service estimate stays fresh.  Admission
#: control consults the estimate on every submit; recomputing the circuit
#: fingerprint each time costs more than the submit itself under overload,
#: and EWMA drift over a fraction of a second is noise at that decision.
ESTIMATE_TTL_S = 0.25


class JobServer:
    """A persistent-queue, batch-coalescing orchestration server.

    Parameters
    ----------
    state_dir:
        Directory for the persistent job store and metrics snapshots; None
        keeps everything in memory (tests, in-process load generation).
    backend:
        Default execution backend for jobs that do not name one (falls back
        to the ``REPRO_BACKEND``/``reference`` default).
    compiler:
        Default compiler registry name for jobs that do not name one.
    workers:
        Worker threads the execution services pack coalesced groups across.
    compile_workers:
        Process-pool workers for the compilation services.
    params:
        BFV parameters every execution runs under (defaults to the paper's).
    poll_interval:
        Sleep of the background serving loop between empty ticks, and the
        cadence at which externally appended store records are picked up.
    queue_capacity:
        Bound on the total queue depth; overflowing pushes shed the
        lowest-effective-priority job into the terminal ``SHED`` state
        (None: unbounded, the pre-overload behaviour).
    per_priority_capacity:
        Bound per base-priority level (per-class backpressure): arrivals
        into a full level are shed even while the queue has room overall.
    aging_interval_s:
        Seconds of queue wait that raise a job's effective priority by one
        level, so sustained high-priority pressure cannot starve the
        low-priority classes (None: no aging).
    slo:
        Declarative per-priority latency budgets
        (:class:`~repro.server.telemetry.SLOPolicy`).  Always tracked
        (per-priority histograms + violation counters); also the deadline
        budgets admission control checks drain time against.
    admission:
        ``"off"`` (default) accepts everything the queue has room for;
        ``"shed"`` rejects an arrival whose estimated drain time exceeds
        its priority's wait budget; ``"downgrade"`` demotes such arrivals
        to ``admission_floor`` priority (best effort, no deadline) instead
        of rejecting them.
    admission_floor:
        The priority ``"downgrade"`` mode demotes to.
    coalesce:
        When False every execute job runs as its own backend batch — the
        pre-coalescing behaviour.  The ablation engine flips this to price
        the fingerprint coalescer; leave it True for serving.
    memoize_circuits:
        When False the hot-path circuit memo is bypassed and every execute
        job pays a full parse plus compilation-service lookup.  Combined
        with a disabled :class:`~repro.service.cache.CompilationCache`
        (``capacity=0``) this prices the whole compilation-caching tier.
    prefer_measured:
        Forwarded to every :class:`~repro.service.execution.ExecutionService`
        this server creates; False schedules (and admits) on the raw
        analytical latency model instead of the timer-augmented EWMA.
    fault_injector:
        Armed-trigger registry for the recovery tests
        (:mod:`repro.server.faults`); shared with the job store.
    tracing:
        Enable end-to-end tracing: every lifecycle stage (``submit``,
        ``admission``, ``persist``, ``queue_wait``, ``poll_store``,
        ``queue_drain``, ``coalesce``, ``schedule``, ``backend_compile``,
        ``execute``, ``commit_result``) emits spans into a bounded ring
        buffer, persisted to ``traces.jsonl`` under the state directory
        when one exists, plus per-job mirror spans forming one connected
        trace per submission.  Off by default (the disabled tracer's hot
        path is a no-op); the ``tracing`` studies component measures the
        residual overhead.
    tracer:
        Inject a pre-built :class:`~repro.obs.trace.Tracer` (tests drive
        fake clocks through it; benchmarks read its ring buffer directly).
        Overrides ``tracing``; the server does not close an injected tracer.
    """

    def __init__(
        self,
        state_dir: Optional[str] = None,
        *,
        backend: Optional[str] = None,
        compiler: str = "greedy",
        workers: int = 1,
        compile_workers: int = 1,
        cache: Optional[CompilationCache] = None,
        cache_dir: Optional[str] = None,
        params: Optional[BFVParameters] = None,
        poll_interval: float = 0.05,
        queue_capacity: Optional[int] = None,
        per_priority_capacity: Optional[int] = None,
        aging_interval_s: Optional[float] = None,
        slo: Optional[SLOPolicy] = None,
        admission: str = "off",
        admission_floor: int = 0,
        coalesce: bool = True,
        memoize_circuits: bool = True,
        prefer_measured: bool = True,
        fault_injector: Optional[FaultInjector] = None,
        tracing: bool = False,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if admission not in ("off", "shed", "downgrade"):
            raise ValueError("admission must be 'off', 'shed' or 'downgrade'")
        self.faults = fault_injector if fault_injector is not None else FaultInjector()
        self._own_tracer = tracer is None and tracing
        if tracer is not None:
            self.tracer = tracer
        elif tracing:
            sink = (
                JsonlSpanSink(os.path.join(os.path.abspath(state_dir), TRACE_NAME))
                if state_dir
                else None
            )
            self.tracer = Tracer(sink=sink)
        else:
            self.tracer = NULL_TRACER
        self.tracing = self.tracer.enabled
        if self.tracer.enabled and self.tracer.observer is None:
            self.tracer.observer = self._observe_span
        #: The server-lifecycle trace every tick/stage span belongs to
        #: (per-job mirror spans belong to each job's own trace instead).
        self.trace_id = new_trace_id() if self.tracer.enabled else ""
        self.store = JobStore(state_dir, fault_injector=self.faults, tracer=self.tracer)
        self.queue = JobQueue(
            queue_capacity,
            per_priority_capacity=per_priority_capacity,
            aging_interval_s=aging_interval_s,
        )
        self.telemetry = MetricsRegistry()
        self.slo = slo
        self.admission = admission
        self.admission_floor = admission_floor
        self.coalesce = coalesce
        self.memoize_circuits = memoize_circuits
        self.prefer_measured = prefer_measured
        self._slo_tracker = SLOTracker(slo, self.telemetry)
        #: EWMA of observed per-job tick seconds: the admission fallback
        #: weight for jobs whose circuit has no ExecutionService estimate
        #: yet.  None until the first tick has measured anything.
        self._service_s_ewma: Optional[float] = None
        #: (circuit memo key, backend) -> (service estimate s, monotonic stamp).
        self._estimate_cache: Dict[Tuple[object, str], Tuple[float, float]] = {}  # guarded-by: _lock
        self._store_skips_seen = 0
        self.default_backend = backend or default_backend_name()
        self.default_compiler = compiler
        self.workers = workers
        self.compile_workers = compile_workers
        self.params = params if params is not None else BFVParameters.default()
        self.poll_interval = poll_interval
        self.cache = cache if cache is not None else CompilationCache(directory=cache_dir)
        self._jobs: Dict[str, Job] = {}  # guarded-by: _lock
        self._lock = threading.RLock()
        self._job_done = threading.Condition(self._lock)
        #: (compiler key, source) -> (circuit, expr, input names).  The hot
        #: serving path: N queued users of one kernel must not pay N parses
        #: and N cache-key hashes before coalescing even starts.
        self._circuit_memo: "OrderedDict[Tuple[str, Tuple[Tuple[str, object], ...], str], Tuple[object, Expr, List[str]]]" = OrderedDict()  # guarded-by: _lock
        self._circuit_memo_cap = 4096
        self._compile_services: Dict[Tuple[str, Tuple[Tuple[str, object], ...]], CompilationService] = {}
        self._execution_services: Dict[str, ExecutionService] = {}  # guarded-by: _lock
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        #: Last-seen snapshot of the process-wide compiled-tape memo counters
        #: (repro.backends.tapeopt); per-tick deltas land in telemetry.
        self._tape_stats_seen: Dict[str, int] = {}
        self.telemetry.gauge("workers").set(workers)
        self._recover()

    # -- persistence / recovery --------------------------------------------
    def _recover(self) -> None:
        """Replay the store: keep terminal jobs, requeue unfinished ones."""
        for job in self.store.replay().values():
            with self._lock:
                self._jobs[job.id] = job
            if job.status is JobState.RUNNING:
                # Caught mid-run by a crash or kill: run it again.  The
                # requeued record keeps the original trace context, so the
                # new process's spans extend the submission's trace.
                job.status = JobState.QUEUED
                self.store.append(job)
                self.telemetry.counter("jobs_recovered").inc()
                self._job_event(job, "recovered", attrs={"attempts": job.attempts})
                self._count_submission(job)
                self._queue_push(job)
            elif job.status is JobState.QUEUED:
                self._count_submission(job)
                self._queue_push(job)
        self._sync_store_skips()
        self._update_queue_depth()

    def _poll_store(self) -> int:
        """Ingest jobs appended to the store by other processes."""
        ingested = 0
        for job in self.store.poll():
            with self._lock:
                known = job.id in self._jobs
                if not known:
                    self._jobs[job.id] = job
            if not known and job.status is JobState.QUEUED:
                self._count_submission(job)
                reason = self._admit(job)
                if reason is not None:
                    self._shed(job, reason)
                else:
                    self._queue_push(job)
                ingested += 1
        self._sync_store_skips()
        if ingested:
            self._update_queue_depth()
        return ingested

    def _sync_store_skips(self) -> None:
        """Mirror the store's damaged-record tally into telemetry."""
        skipped = self.store.skipped_records
        delta = skipped - self._store_skips_seen
        if delta > 0:
            self.telemetry.counter("store_skipped_records").inc(delta)
            self._store_skips_seen = skipped

    def _update_queue_depth(self) -> None:
        self.telemetry.gauge("queue_depth").set(len(self.queue))

    # -- tracing ------------------------------------------------------------
    def _observe_span(self, span: Span) -> None:
        """Tracer observer: fold stage durations into telemetry histograms.

        ``repro top`` reads stage p50/p99 straight from ``metrics.json``, so
        every finished stage span also lands in a ``stage_<name>_s``
        histogram (latency bounds: the percentile interpolation must stay
        tight at serving timescales).
        """
        if span.cat == "stage":
            self.telemetry.histogram(
                f"stage_{span.name}_s", bounds=LATENCY_BUCKETS
            ).observe(span.duration_s)

    def _job_event(self, job: Job, name: str, *, status: str = "ok",
                   attrs: Optional[Dict[str, object]] = None) -> None:
        """A zero-duration marker span on ``job``'s own trace."""
        if not self.tracer.enabled:
            return
        now = self.tracer.wall()
        self.tracer.record(
            name, now, now,
            trace_id=job.trace_id, parent_id=job.trace_root,
            cat="job", status=status, attrs=attrs,
        )

    def _close_job_trace(self, job: Job) -> None:
        """Emit the terminal ``job`` envelope span, pinned to the persisted
        root span id so every process's child spans attach to it."""
        if not self.tracer.enabled:
            return
        end = job.finished_at if job.finished_at is not None else self.tracer.wall()
        self.tracer.record(
            "job", job.submitted_at, end,
            trace_id=job.trace_id, span_id=job.trace_root, parent_id=None,
            cat="job",
            status="ok" if job.status is JobState.COMPLETED else "error",
            attrs={
                "job": job.id,
                "kind": job.kind,
                "name": job.label(),
                "status": job.status.value,
                "attempts": job.attempts,
            },
        )

    # -- client surface -----------------------------------------------------
    def submit(self, job: Job) -> str:
        """Queue one job; returns its id immediately.

        Overload protection applies at this boundary: admission control may
        shed (or downgrade) the job up front, and a bounded queue may shed
        it — or a lower-effective-priority job it displaces — on overflow.
        Shed jobs reach the terminal ``SHED`` state without running;
        ``status``/``result`` surface it like any other outcome.
        """
        with self._lock:
            if job.id in self._jobs:
                raise ValueError(f"job id {job.id!r} was already submitted")
            self._jobs[job.id] = job
        submit_wall = self.tracer.wall() if self.tracer.enabled else 0.0
        with self.tracer.span(
            "submit", trace_id=self.trace_id, attrs={"job": job.id}
        ):
            self._count_submission(job)
            reason = self._admit(job)
            if reason is not None:
                self._shed(job, reason)
                return job.id
            self.store.append(job)
            self._queue_push(job)
            self._update_queue_depth()
        if self.tracer.enabled:
            # Mirror onto the job's own trace so the submission boundary is
            # part of its connected span tree, not just the server's.
            self.tracer.record(
                "submit", submit_wall, self.tracer.wall(),
                trace_id=job.trace_id, parent_id=job.trace_root, cat="job",
            )
        return job.id

    def _count_submission(self, job: Job) -> None:
        self.telemetry.counter("jobs_submitted").inc()
        self.telemetry.counter(f"{job.kind}_jobs").inc()

    # -- overload protection -------------------------------------------------
    def _estimate_job_service_s(self, job: Job) -> float:
        """Estimated service seconds for one job, cheapest source first.

        Pre-lowered (or already-memoized) circuits go through the backend's
        :meth:`~repro.service.execution.ExecutionService.estimate_ms` —
        measured EWMA per circuit when it has run before, the calibrated
        analytical model otherwise.  Unknown sources fall back to the
        server-wide EWMA of per-job tick time (0 until the first tick, so a
        cold server admits its warm-up traffic).
        """
        program = job.program
        backend = job.backend or self.default_backend
        cache_key = None
        if program is None and job.source is not None:
            memo_key = (
                job.compiler or self.default_compiler,
                tuple(sorted(job.compiler_options.items())),
                job.source,
            )
            cache_key = (memo_key, backend)
            with self._lock:
                cached = self._estimate_cache.get(cache_key)
                hit = self._circuit_memo.get(memo_key)
            if cached is not None and time.monotonic() - cached[1] < ESTIMATE_TTL_S:
                return cached[0]
            if hit is not None:
                program = hit[0]
        if program is not None:
            try:
                service = self._execution_service(backend)
                estimate_ms, _ = service.estimate_ms(program)
            except Exception:
                pass  # unknown backend etc.: the job will fail later anyway
            else:
                estimate = estimate_ms / 1000.0
                if cache_key is not None:
                    with self._lock:
                        self._estimate_cache[cache_key] = (estimate, time.monotonic())
                return estimate
        return self._service_s_ewma or 0.0

    def _admit(self, job: Job) -> Optional[str]:
        """None to accept ``job``; otherwise the reason it must be shed.

        ``"downgrade"`` mode demotes over-budget arrivals to the floor
        priority (accepting them as best effort) and only sheds when the
        job is already at or below the floor.
        """
        if self.admission == "off":
            return None
        if self.slo is None:
            return None
        budget = self.slo.wait_budget(job.priority)
        if budget is None:
            return None  # best-effort class: no deadline to protect
        with self.tracer.span("admission", attrs={"job": job.id}) as span:
            estimate = self._estimate_job_service_s(job)
            setattr(job, ESTIMATE_ATTR, estimate)  # reused by _queue_push
            backlog = self.queue.backlog_service_s(job.priority)
            drain_s = (backlog + estimate) / max(1, self.workers)
            if drain_s <= budget:
                return None
            if self.admission == "downgrade" and job.priority > self.admission_floor:
                job.priority = self.admission_floor
                self.telemetry.counter("jobs_downgraded").inc()
                span.set_attr("decision", "downgrade")
                return None
            self.telemetry.counter("admission_rejects").inc()
            span.set_attr("decision", "reject")
            return (
                f"admission control: estimated drain {drain_s:.3f}s exceeds "
                f"wait budget {budget:.3f}s for priority {job.priority}"
            )

    def _queue_push(self, job: Job, sink: Optional[List[Dict[str, object]]] = None) -> None:
        """Stamp the job's service estimate and push; shed any overflow victim."""
        if getattr(job, ESTIMATE_ATTR, None) is None:
            setattr(job, ESTIMATE_ATTR, self._estimate_job_service_s(job))
        victim = self.queue.push(job)
        if victim is not None:
            self._shed(victim, "shed on overload: queue is full", sink)

    def _shed(
        self,
        job: Job,
        reason: str,
        sink: Optional[List[Dict[str, object]]] = None,
    ) -> None:
        """Terminal-reject ``job``: it never ran and never will."""
        job.status = JobState.SHED
        job.error = reason
        job.finished_at = time.time()
        self.telemetry.counter("jobs_shed").inc()
        self._job_event(job, "shed", status="error", attrs={"reason": reason})
        self._close_job_trace(job)
        record = job.to_record()
        if sink is not None:
            sink.append(record)
        else:
            self.store.append_record(record)
        with self._job_done:
            self._job_done.notify_all()

    def slo_report(self) -> Dict[str, object]:
        """Per-priority latency percentiles + violation counts (see
        :meth:`~repro.server.telemetry.SLOTracker.report`)."""
        return self._slo_tracker.report()

    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job id {job_id!r}") from None

    def status(self, job_id: str) -> Dict[str, object]:
        """The compact status row of one job."""
        return self.get(job_id).summary()

    def jobs(self) -> List[Dict[str, object]]:
        """Status rows of every known job, in submission order."""
        with self._lock:
            ordered = sorted(self._jobs.values(), key=lambda job: job.submitted_at)
        return [job.summary() for job in ordered]

    def result(
        self, job_id: str, *, wait: bool = False, timeout: Optional[float] = None
    ) -> Dict[str, object]:
        """The result payload of a completed job.

        With ``wait=True`` blocks until the job reaches a terminal state
        (requires a running serving loop or a concurrent :meth:`drain`).
        Raises :class:`RuntimeError` for failed and shed jobs and
        :class:`TimeoutError` when the wait lapses.
        """
        job = self.get(job_id)
        if wait:
            with self._job_done:
                if not self._job_done.wait_for(lambda: job.done, timeout=timeout):
                    raise TimeoutError(f"job {job_id} still {job.status.value} after {timeout}s")
        if job.status is JobState.FAILED:
            raise RuntimeError(f"job {job_id} failed: {job.error}")
        if job.status is JobState.SHED:
            raise RuntimeError(f"job {job_id} was shed: {job.error}")
        if job.status is not JobState.COMPLETED:
            raise RuntimeError(
                f"job {job_id} is {job.status.value}; pass wait=True or drain() first"
            )
        return job.result or {}

    # -- serving loop -------------------------------------------------------
    def start(self) -> "JobServer":
        """Run the scheduling loop in a daemon thread until :meth:`stop`."""
        with self._lock:
            if self._thread is not None:
                return self
            self._stop_event.clear()
            self._thread = threading.Thread(
                target=self._serve_loop, name="repro-job-server", daemon=True
            )
            self._thread.start()
        return self

    def _serve_loop(self) -> None:
        while not self._stop_event.is_set():
            processed = self.tick(timeout=self.poll_interval)
            if processed and self.store.persistent:
                self.telemetry.write_snapshot(self.store.metrics_path)

    def stop(self) -> None:
        """Stop the background loop (processing finishes the current tick)."""
        thread = self._thread
        if thread is None:
            return
        self._stop_event.set()
        thread.join()
        with self._lock:
            self._thread = None

    def close(self) -> None:
        """Stop, write a final metrics snapshot and compact the store."""
        self.stop()
        if self.store.persistent:
            self._poll_store()  # don't compact away a just-submitted job
            self.telemetry.write_snapshot(self.store.metrics_path)
            with self._lock:
                jobs = sorted(self._jobs.values(), key=lambda job: job.submitted_at)
            self.store.compact(jobs)
        if self._own_tracer:
            self.tracer.close()  # flushes the span sink
        elif self.tracer.enabled:
            self.tracer.flush()

    def __enter__(self) -> "JobServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def drain(self, timeout: float = 0.0) -> int:
        """Process everything currently queued (and store-appended); returns
        the number of jobs brought to a terminal state."""
        processed = 0
        while True:
            advanced = self.tick(timeout=timeout)
            processed += advanced
            # Retried jobs are requeued without reaching a terminal state, so
            # keep ticking while the queue is non-empty even if this round
            # finished nothing.
            if advanced == 0 and len(self.queue) == 0:
                break
        if self.store.persistent:
            self.telemetry.write_snapshot(self.store.metrics_path)
        if self.tracer.enabled:
            self.tracer.flush()
        return processed

    # -- one scheduling round ----------------------------------------------
    def tick(self, timeout: Optional[float] = 0.0) -> int:
        """One scheduling round over every currently pending job.

        Returns the number of jobs that reached a terminal state (retried
        jobs are requeued and not counted).
        """
        tick_start = time.perf_counter()
        enabled = self.tracer.enabled
        t0_wall = self.tracer.wall() if enabled else 0.0
        t0_mono = self.tracer.mono() if enabled else 0.0
        self._poll_store()
        t1_wall = self.tracer.wall() if enabled else 0.0
        pending = self.queue.pop_batch(timeout=timeout)
        self._update_queue_depth()
        if not pending:
            return 0
        tick_span = None
        if enabled:
            # The envelope is opened retroactively (empty ticks must not
            # clutter the trace) and covers the store poll and queue drain
            # that already happened; stage spans below nest inside it.
            tick_span = self.tracer.span(
                "tick",
                trace_id=self.trace_id,
                parent_id=None,
                cat="tick",
                attrs={"jobs": len(pending)},
                start_wall=t0_wall,
                start_mono=t0_mono,
            )
            tick_span.__enter__()
            self.tracer.record(
                "poll_store", t0_wall, t1_wall,
                trace_id=self.trace_id, parent_id=tick_span.span_id, cat="stage",
            )
        self.telemetry.gauge("jobs_running").set(len(pending))
        now = time.time()
        #: One tick's state transitions, flushed in a single locked fsync at
        #: the end (per-job appends would bookend the coalesced batch with 2N
        #: fsyncs).  Crash mid-tick replays the jobs as queued/running and
        #: re-runs them — the store's semantics are at-least-once anyway.
        sink: List[Dict[str, object]] = []
        for job in pending:
            job.status = JobState.RUNNING
            job.attempts += 1
            job.started_at = now
            sink.append(job.to_record())
            wait_s = now - job.submitted_at
            self.telemetry.histogram("job_wait_s", bounds=LATENCY_BUCKETS).observe(wait_s)
            self._slo_tracker.observe_wait(job.priority, wait_s)
            if enabled:
                # Per-attempt wait on the job's own trace: from this
                # attempt's enqueue (retries re-stamp it) to the drain.
                self.tracer.record(
                    "queue_wait",
                    getattr(job, ENQUEUED_AT_ATTR, job.submitted_at), now,
                    trace_id=job.trace_id, parent_id=job.trace_root, cat="job",
                    attrs={"attempt": job.attempts, "priority": job.priority},
                )
        if enabled:
            # queue_drain closes after the mark-running loop: draining the
            # queue and stamping/persist-staging the batch is one stage.
            self.tracer.record(
                "queue_drain", t1_wall, self.tracer.wall(),
                trace_id=self.trace_id, parent_id=tick_span.span_id, cat="stage",
                attrs={"jobs": len(pending)},
            )

        terminal = 0
        try:
            compile_jobs = [job for job in pending if job.kind == "compile"]
            execute_jobs = [job for job in pending if job.kind == "execute"]
            terminal += self._run_compile_jobs(compile_jobs, sink)
            terminal += self._run_execute_jobs(execute_jobs, sink)
            #: Crash-before-commit injection point: everything above ran but
            #: none of it is durable yet; a fault here models the process dying
            #: with the store still saying "queued".
            self.faults.fire("server.before_commit")
            self.store.append_records(sink)
        finally:
            if tick_span is not None:
                tick_span.set_attr("terminal", terminal)
                tick_span.__exit__(None, None, None)

        self.telemetry.gauge("jobs_running").set(0)
        self._update_queue_depth()
        self._sync_tape_stats()
        wall = time.perf_counter() - tick_start
        self.telemetry.histogram("tick_s").observe(wall)
        # Fold this tick's per-job wall time into the admission fallback
        # weight (coalescing makes it an upper bound on marginal cost).
        per_job = wall / len(pending)
        self._service_s_ewma = (
            per_job
            if self._service_s_ewma is None
            else 0.3 * per_job + 0.7 * self._service_s_ewma
        )
        return terminal

    def _sync_tape_stats(self) -> None:
        """Fold the compiled-tape memo's counter deltas into telemetry.

        The memo (:func:`repro.backends.tapeopt.get_compiled_tape`) is
        process-wide and shared with direct-path callers, so the server
        tracks the last snapshot it saw and records only the delta —
        ``tape_cache_hits`` / ``tape_compiles`` then count this server's
        observation window, not the whole process history.  The static-
        analysis counters (``tapes_verified`` / ``analysis_findings``) are
        touched every tick so they appear in snapshots even at zero: an
        absent findings counter is indistinguishable from "never checked".
        """
        from repro.backends.tapeopt import tape_cache_stats

        stats = tape_cache_stats()
        for counter, key, always in (
            ("tape_cache_hits", "hits", False),
            ("tape_compiles", "compiles", False),
            ("tapes_verified", "verified", True),
            ("analysis_findings", "findings", True),
        ):
            delta = stats[key] - self._tape_stats_seen.get(key, 0)
            if delta > 0 or always:
                self.telemetry.counter(counter).inc(delta)
            self._tape_stats_seen[key] = stats[key]

    # -- compilation --------------------------------------------------------
    def _compile_service(self, job: Job) -> CompilationService:
        name = job.compiler or self.default_compiler
        key = (name, tuple(sorted(job.compiler_options.items())))
        service = self._compile_services.get(key)
        if service is None:
            spec = CompilerSpec.create(name, **job.compiler_options)
            service = CompilationService(
                spec, workers=self.compile_workers, cache=self.cache
            )
            self._compile_services[key] = service
        return service

    def _compiled_circuit(self, job: Job) -> Tuple[object, Optional[Expr], List[str]]:
        """``(circuit, source expression, input names)``, compiling if needed.

        Memoized on ``(compiler configuration, source text)`` so a flood of
        jobs for one kernel pays parsing/compile-cache hashing once; the
        shared circuit *object* also lets the coalescer fingerprint each
        distinct circuit once per tick.
        """
        if job.program is not None:
            return job.program, None, list(job.program.scalar_inputs)
        memo_key = (
            job.compiler or self.default_compiler,
            tuple(sorted(job.compiler_options.items())),
            job.source,
        )
        if self.memoize_circuits:
            with self._lock:
                hit = self._circuit_memo.get(memo_key)
                if hit is not None:
                    self._circuit_memo.move_to_end(memo_key)
                    self.telemetry.counter("circuit_memo_hits").inc()
                    return hit
        self.telemetry.counter("circuit_memo_misses").inc()
        expr = parse(job.source)
        report = self._compile_service(job).compile_expression(
            expr, name=job.name or "circuit"
        )
        entry = (report.circuit, expr, list(variables(expr)))
        if self.memoize_circuits:
            with self._lock:
                self._circuit_memo[memo_key] = entry
                while len(self._circuit_memo) > self._circuit_memo_cap:
                    self._circuit_memo.popitem(last=False)
        return entry

    def _run_compile_jobs(
        self, jobs: Sequence[Job], sink: List[Dict[str, object]]
    ) -> int:
        terminal = 0
        for job in jobs:
            try:
                with self.tracer.span(
                    "backend_compile",
                    attrs={"job": job.id, "compiler": job.compiler or self.default_compiler},
                ):
                    expr = parse(job.source)
                    service = self._compile_service(job)
                    report = service.compile_expression(expr, name=job.name or "circuit")
                job.result = {
                    "name": report.name,
                    "compiler": job.compiler or self.default_compiler,
                    "initial_cost": report.initial_cost,
                    "final_cost": report.final_cost,
                    "compile_time_s": report.compile_time_s,
                    "instructions": len(report.circuit.instructions),
                    "stats": report.stats.as_dict(),
                }
                terminal += self._finish(job, JobState.COMPLETED, sink)
            except Exception as error:
                terminal += self._handle_failure(job, error, sink)
        return terminal

    # -- execution ----------------------------------------------------------
    def _execution_service(self, backend_name: str) -> ExecutionService:
        # Called from the server thread and from client submit threads (via
        # admission estimates), so the get-or-create must be atomic.
        with self._lock:
            service = self._execution_services.get(backend_name)
            if service is None:
                service = ExecutionService(
                    backend_name,
                    params=self.params,
                    workers=self.workers,
                    prefer_measured=self.prefer_measured,
                    tracer=self.tracer,
                )
                self._execution_services[backend_name] = service
            return service

    def _job_inputs(self, job: Job, input_names: Sequence[str]) -> List[Dict[str, int]]:
        if job.inputs is not None:
            return [dict(job.inputs)]
        return [sample_named_inputs(input_names, job.seed, job.input_range)]

    def _run_execute_jobs(
        self, jobs: Sequence[Job], sink: List[Dict[str, object]]
    ) -> int:
        terminal = 0
        entries = []
        expressions: Dict[str, Optional[Expr]] = {}
        with self.tracer.span("backend_compile", attrs={"jobs": len(jobs)}):
            for job in jobs:
                try:
                    program, expr, names = self._compiled_circuit(job)
                    inputs = self._job_inputs(job, names)
                    backend_name = job.backend or self.default_backend
                    # Resolving the service now surfaces unknown-backend errors
                    # per job instead of failing the whole group later.
                    self._execution_service(backend_name)
                    expressions[job.id] = expr
                    entries.append((job, program, inputs, backend_name))
                except Exception as error:
                    terminal += self._handle_failure(job, error, sink)

        if self.coalesce:
            groups = coalesce(entries, tracer=self.tracer)
        else:
            # Ablated: one group per job, as if the coalescer never existed
            # (each still pays its own fingerprint hash — that cost is part
            # of what coalescing amortizes).
            groups = [
                group
                for entry in entries
                for group in coalesce([entry], tracer=self.tracer)
            ]
        by_backend: Dict[str, List[CoalescedGroup]] = {}
        for group in groups:
            by_backend.setdefault(group.backend_key, []).append(group)

        for backend_name, backend_groups in by_backend.items():
            service = self._execution_service(backend_name)
            self.telemetry.counter("batches_total").inc(len(backend_groups))
            for group in backend_groups:
                self.telemetry.histogram("group_size", bounds=(1, 2, 4, 8, 16, 32, 64, 128)).observe(
                    len(group.jobs)
                )
                if group.coalesced:
                    self.telemetry.counter("batches_coalesced").inc()
                    self.telemetry.counter("coalesced_jobs").inc(len(group.jobs))
            exec_jobs = [
                ExecutionJob(
                    program=group.program,
                    inputs=group.batched_inputs,
                    name=group.jobs[0].label(),
                )
                for group in backend_groups
            ]
            try:
                self.faults.fire("server.slow_worker")
                self.faults.fire("server.mid_batch")
                batch = service.run_jobs(exec_jobs)
            except Exception as error:
                for group in backend_groups:
                    for job in group.jobs:
                        terminal += self._handle_failure(job, error, sink)
                continue
            self.telemetry.counter("executions_total").inc(batch.total_executions)
            with self.tracer.span(
                "commit_result",
                attrs={"backend": backend_name, "groups": len(backend_groups)},
            ):
                for group, reports, record in zip(
                    backend_groups, batch.reports, batch.records
                ):
                    for job_index, (job, (lo, hi)) in enumerate(
                        zip(group.jobs, group.slices())
                    ):
                        try:
                            job.result = self._execution_result(
                                job_index,
                                group,
                                reports[lo:hi],
                                expressions.get(job.id),
                                record.estimate_source,
                            )
                            terminal += self._finish(job, JobState.COMPLETED, sink)
                        except Exception as error:
                            terminal += self._handle_failure(job, error, sink)
        return terminal

    def _execution_result(
        self,
        job_index: int,
        group: CoalescedGroup,
        reports: Sequence[object],
        expr: Optional[Expr],
        estimate_source: str,
    ) -> Dict[str, object]:
        with self._lock:
            backend = self._execution_services[group.backend_key].backend
        verified = backend_produces_outputs(backend) and expr is not None
        inputs = group.inputs_per_job[job_index]
        outputs = [
            declared_outputs(group.program, report.outputs) for report in reports
        ]
        result: Dict[str, object] = {
            "backend": group.backend_key,
            "inputs": [dict(item) for item in inputs],
            "outputs": outputs,
            "coalesced_batch": len(group.batched_inputs),
            "group_jobs": len(group.jobs),
            "estimate_source": estimate_source,
            "verified": verified,
        }
        if reports:
            head = reports[0]
            result["latency_ms"] = head.latency_ms
            result["consumed_noise_budget"] = head.consumed_noise_budget
            result["remaining_noise_budget"] = head.remaining_noise_budget
            result["noise_budget_exhausted"] = head.noise_budget_exhausted
        if verified:
            slot_count = max(64, output_arity(expr) + 8)
            references = [
                reference_output(
                    expr,
                    item,
                    slot_count=slot_count,
                    plain_modulus=self.params.plain_modulus,
                )
                for item in inputs
            ]
            result["references"] = references
            result["correct"] = outputs == references
        return result

    # -- lifecycle plumbing --------------------------------------------------
    def _finish(
        self, job: Job, status: JobState, sink: List[Dict[str, object]]
    ) -> int:
        job.status = status
        if status is JobState.COMPLETED:
            job.error = None  # clear any earlier retried-attempt message
        job.finished_at = time.time()
        if job.started_at is not None:
            run_s = job.finished_at - job.started_at
            self.telemetry.histogram("job_run_s", bounds=LATENCY_BUCKETS).observe(run_s)
            self._slo_tracker.observe_run(job.priority, run_s)
        self.telemetry.counter(
            "jobs_completed" if status is JobState.COMPLETED else "jobs_failed"
        ).inc()
        sink.append(job.to_record())
        if self.tracer.enabled:
            if job.started_at is not None:
                self.tracer.record(
                    "run", job.started_at, job.finished_at,
                    trace_id=job.trace_id, parent_id=job.trace_root, cat="job",
                    status="ok" if status is JobState.COMPLETED else "error",
                    attrs={"attempt": job.attempts, "kind": job.kind},
                )
            self._close_job_trace(job)
        with self._job_done:
            self._job_done.notify_all()
        return 1

    def _handle_failure(
        self, job: Job, error: Exception, sink: List[Dict[str, object]]
    ) -> int:
        """Requeue for retry when attempts remain, otherwise fail the job."""
        message = f"{type(error).__name__}: {error}"
        if job.attempts <= job.max_retries:
            job.status = JobState.QUEUED
            job.error = message
            sink.append(job.to_record())
            if self.tracer.enabled and job.started_at is not None:
                # The failed attempt stays on the job's trace; the requeued
                # job keeps its trace_id so the retry extends the same tree.
                self.tracer.record(
                    "run", job.started_at, self.tracer.wall(),
                    trace_id=job.trace_id, parent_id=job.trace_root, cat="job",
                    status="retry",
                    attrs={"attempt": job.attempts, "error": message},
                )
            self.queue.push(job)
            self.telemetry.counter("jobs_retried").inc()
            self._update_queue_depth()
            return 0
        job.error = message + "\n" + traceback.format_exc(limit=4)
        job.result = None
        return self._finish(job, JobState.FAILED, sink)
