"""Deterministic fault injection for the serving stack's recovery tests.

Proving the server's recovery invariants — no job lost, no job duplicated,
no deadlock, consistent telemetry — needs faults that fire at *exact*
points in the pipeline, not whenever a signal happens to land.
:class:`FaultInjector` is a tiny armed-trigger registry threaded through
:class:`~repro.server.server.JobServer` and
:class:`~repro.server.store.JobStore`: production code calls
:meth:`FaultInjector.fire` at named sites, which is a no-op until a test
arms that site.

Instrumented sites:

``server.before_commit``
    In :meth:`JobServer.tick`, immediately before the tick's state
    transitions are flushed to the store.  Arming an exception here models
    a crash after work ran but before it was committed: the store still
    says ``queued``, and a restarted server must re-run the work.
``server.mid_batch``
    Inside the per-backend execution loop, before the backend runs a
    coalesced batch.  An exception here fails (or retries) every job of the
    batch through the ordinary failure path.
``server.slow_worker``
    Same place, armed with ``sleep_s`` instead: stalls the worker so run
    latencies blow past their SLO budgets deterministically.
``store.append``
    In :meth:`JobStore.append_records`, before the payload is written.
    Armed with ``payload="torn"`` the store writes the batch truncated
    mid-record and then raises (a crash mid-write); with
    ``payload="corrupt"`` it scrambles one record's bytes but keeps
    appending (bit rot).  Both must be *skipped* with a counter on replay,
    never crash recovery.

Faults are armed for a finite number of firings (default one), so a test
can inject a crash, rebuild the server over the same state directory and
let the retry run clean.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["Fault", "FaultInjector", "InjectedFault"]


class InjectedFault(RuntimeError):
    """The exception armed faults raise (distinguishable from real bugs)."""


@dataclass
class Fault:
    """One armed fault: what happens when its site fires."""

    site: str
    #: Remaining firings before the fault disarms itself.
    times: int = 1
    #: Exception instance or class to raise (after any sleep).
    exc: Optional[object] = None
    #: Seconds to stall the firing thread (slow-worker style faults).
    sleep_s: Optional[float] = None
    #: Free-form directive for sites that interpret the fault themselves
    #: (the store's ``"torn"`` / ``"corrupt"`` write modes).
    payload: Optional[str] = None


@dataclass
class _FiringLog:
    fired: Dict[str, int] = field(default_factory=dict)


class FaultInjector:
    """An armed-trigger registry the serving stack fires at named sites."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._armed: Dict[str, Fault] = {}
        self._log = _FiringLog()

    def arm(
        self,
        site: str,
        *,
        times: int = 1,
        exc: Optional[object] = None,
        sleep_s: Optional[float] = None,
        payload: Optional[str] = None,
    ) -> Fault:
        """Arm ``site`` to misbehave for the next ``times`` firings."""
        if times < 1:
            raise ValueError("a fault must be armed for at least one firing")
        fault = Fault(site=site, times=times, exc=exc, sleep_s=sleep_s, payload=payload)
        with self._lock:
            self._armed[site] = fault
        return fault

    def disarm(self, site: str) -> None:
        with self._lock:
            self._armed.pop(site, None)

    def fired(self, site: str) -> int:
        """How many times ``site`` actually fired an armed fault."""
        with self._lock:
            return self._log.fired.get(site, 0)

    def fire(self, site: str) -> Optional[Fault]:
        """Fire ``site``: no-op unless armed.

        An armed fault first consumes one firing, then sleeps (if
        ``sleep_s``), then raises (if ``exc``).  Faults carrying only a
        ``payload`` are returned for the call site to interpret.
        """
        with self._lock:
            fault = self._armed.get(site)
            if fault is None:
                return None
            fault.times -= 1
            if fault.times <= 0:
                self._armed.pop(site, None)
            self._log.fired[site] = self._log.fired.get(site, 0) + 1
        if fault.sleep_s is not None:
            time.sleep(fault.sleep_s)
        if fault.exc is not None:
            error = fault.exc
            if isinstance(error, type):
                error = error(f"injected fault at {site}")
            raise error
        return fault
