"""Shared experiment machinery.

:class:`BenchmarkRunner` compiles and executes benchmark kernels under any
number of named compiler configurations and returns one
:class:`BenchmarkResult` per (kernel, compiler) pair.  Every execution is
verified against the plaintext reference; mismatches are flagged rather than
silently reported, so a regression in any compiler path is caught by the
benchmark harness as well as by the tests.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.backends.base import backend_produces_outputs
from repro.compiler.executor import ExecutionReport, declared_outputs
from repro.compiler.pipeline import CompilationReport, Compiler, CompilerOptions
from repro.kernels.registry import Benchmark
from repro.rl.agent import ChehabAgent
from repro.rl.policy import PolicyConfig
from repro.rl.ppo import PPOConfig
from repro.rl.reward import RewardConfig
from repro.service import (
    BatchReport,
    CompilationCache,
    CompilationJob,
    CompilationService,
    ExecutionService,
)

__all__ = [
    "BenchmarkResult",
    "BenchmarkRunner",
    "geometric_mean",
    "make_default_agent",
    "make_agent_compiler",
]


@dataclass
class BenchmarkResult:
    """All metrics collected for one (benchmark, compiler) pair."""

    benchmark: str
    compiler: str
    backend: str
    #: False when the backend produces no outputs (``cost-sim``): nothing
    #: was decrypted, so ``correct`` is vacuous.
    verified: bool
    compile_time_s: float
    execution_latency_ms: float
    consumed_noise_budget: float
    remaining_noise_budget: float
    noise_budget_exhausted: bool
    correct: bool
    depth: int
    mult_depth: int
    ct_ct_multiplications: int
    ct_pt_multiplications: int
    rotations: int
    additions: int
    subtractions: int
    total_operations: int

    def as_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (0 values are clamped to a tiny epsilon)."""
    if not values:
        return 0.0
    total = 0.0
    for value in values:
        total += math.log(max(float(value), 1e-12))
    return math.exp(total / len(values))


class BenchmarkRunner:
    """Compile + execute + verify benchmark kernels under several compilers.

    All compilation is routed through :class:`CompilationService`: each
    configured compiler is wrapped in a service sharing one
    :class:`CompilationCache`, so repeated runs (and kernels shared between
    experiments) skip recompilation, and ``workers > 1`` fans each
    compiler's jobs out across a cost-balanced process pool.
    """

    def __init__(
        self,
        compilers: Mapping[str, object],
        input_seed: int = 0,
        *,
        backend: Union[str, object, None] = None,
        workers: int = 1,
        cache: Optional[CompilationCache] = None,
        cache_dir: Optional[str] = None,
        server: Optional[object] = None,
    ) -> None:
        """``compilers`` maps a label to a compiler.

        Each value may be a live object with ``compile_expression``, a
        registry name (``"coyote"``) or a
        :class:`~repro.compiler.registry.CompilerSpec`; names and specs are
        resolved through the compiler registry and get cache keys that are
        stable across processes.  ``backend`` names the execution backend
        every result row runs on (resolved through the backend registry;
        None follows the ``REPRO_BACKEND``/``reference`` default).
        Executions route through an :class:`ExecutionService`, which records
        measured per-circuit times as it goes (a scheduler sharing the
        service — :meth:`ExecutionService.run_jobs` — then prefers them
        over the analytical model).

        ``server`` (a :class:`~repro.server.server.JobServer`) reroutes the
        execution phase through the job-orchestration server instead: each
        result row is submitted as a pre-compiled execute job, so the
        harness doubles as a load generator for the server's coalescing
        scheduler (identical circuits across rows share one backend batch).
        """
        if not compilers:
            raise ValueError("BenchmarkRunner needs at least one compiler")
        self.input_seed = input_seed
        self.server = server
        self.execution_service = ExecutionService(backend)
        self.backend = self.execution_service.backend
        self.backend_name = self.execution_service.backend_name
        self.cache = cache if cache is not None else CompilationCache(directory=cache_dir)
        self.services: Dict[str, CompilationService] = {
            label: CompilationService(compiler, workers=workers, cache=self.cache)
            for label, compiler in compilers.items()
        }
        #: Resolved compiler objects by label (names/specs already built).
        self.compilers: Dict[str, object] = {
            label: service.compiler for label, service in self.services.items()
        }
        #: Per-label batch accounting of the most recent :meth:`run` call.
        self.last_batch_reports: Dict[str, BatchReport] = {}

    def _make_result(
        self,
        benchmark: Benchmark,
        label: str,
        report: CompilationReport,
        reference: Sequence[int],
        inputs: Mapping[str, int],
    ) -> BenchmarkResult:
        execution: ExecutionReport = self.execution_service.execute(report.circuit, inputs)
        verified = backend_produces_outputs(self.backend)
        if verified:
            output = declared_outputs(report.circuit, execution.outputs)
            correct = list(output) == list(reference)
        else:
            correct = True  # vacuous: accounting-only backends decrypt nothing
        return self._build_result(
            benchmark,
            label,
            report,
            verified=verified,
            correct=correct,
            latency_ms=execution.latency_ms,
            consumed_noise_budget=execution.consumed_noise_budget,
            remaining_noise_budget=execution.remaining_noise_budget,
            noise_budget_exhausted=execution.noise_budget_exhausted,
        )

    def _build_result(
        self,
        benchmark: Benchmark,
        label: str,
        report: CompilationReport,
        *,
        verified: bool,
        correct: bool,
        latency_ms: float,
        consumed_noise_budget: float,
        remaining_noise_budget: float,
        noise_budget_exhausted: bool,
    ) -> BenchmarkResult:
        stats = report.stats
        return BenchmarkResult(
            benchmark=benchmark.name,
            compiler=label,
            backend=self.backend_name,
            verified=verified,
            compile_time_s=report.compile_time_s,
            execution_latency_ms=latency_ms,
            consumed_noise_budget=consumed_noise_budget,
            remaining_noise_budget=remaining_noise_budget,
            noise_budget_exhausted=noise_budget_exhausted,
            correct=correct,
            depth=stats.depth,
            mult_depth=stats.mult_depth,
            ct_ct_multiplications=stats.ct_ct_multiplications,
            ct_pt_multiplications=stats.ct_pt_multiplications,
            rotations=stats.rotations,
            additions=stats.additions,
            subtractions=stats.subtractions,
            total_operations=stats.total_operations,
        )

    def run_benchmark(self, benchmark: Benchmark) -> List[BenchmarkResult]:
        """Run every configured compiler on one benchmark.

        This is the single-kernel entry point of :meth:`run`: the same
        compile-batch / execute / verify path, on a one-element suite.
        """
        return self.run([benchmark])

    def run_workloads(self, workloads: Iterable[object]) -> List[BenchmarkResult]:
        """Run every configured compiler on registered workloads.

        ``workloads`` holds registry names (``"dot-product"``) or built
        :class:`~repro.workloads.registry.Workload` objects; each is adapted
        to a :class:`Benchmark` (same seeded input sampling, same plaintext
        reference) and run through the exact :meth:`run` path — including
        ``server=`` load-generator routing when configured.
        """
        from repro.workloads.registry import get_workload

        suite = [get_workload(workload).as_benchmark() for workload in workloads]
        return self.run(suite)

    def run(self, benchmarks: Iterable[Benchmark]) -> List[BenchmarkResult]:
        """Run every compiler on every benchmark.

        The compile phase is batched per compiler through the service (one
        cost-balanced fan-out per label); execution and verification stay
        serial because the FHE simulator dominates neither phase.  Sample
        inputs and the plaintext reference are computed once per benchmark
        and shared across every compiler's result.
        """
        suite = list(benchmarks)
        jobs = [CompilationJob(expr=b.expression(), name=b.name) for b in suite]
        self.last_batch_reports = {}
        results: List[BenchmarkResult] = []
        per_label_reports: Dict[str, List[CompilationReport]] = {}
        for label, service in self.services.items():
            batch = service.compile_batch(jobs)
            self.last_batch_reports[label] = batch
            per_label_reports[label] = batch.reports
        if self.server is not None:
            return self._run_through_server(suite, per_label_reports)
        for index, benchmark in enumerate(suite):
            inputs = benchmark.sample_inputs(seed=self.input_seed)
            reference = benchmark.reference(inputs)
            for label in self.services:
                report = per_label_reports[label][index]
                results.append(
                    self._make_result(benchmark, label, report, reference, inputs)
                )
        return results

    def _run_through_server(
        self,
        suite: Sequence[Benchmark],
        per_label_reports: Mapping[str, List[CompilationReport]],
    ) -> List[BenchmarkResult]:
        """Execution phase via the job-orchestration server (load-generator
        mode): one pre-compiled execute job per result row, coalesced by the
        server wherever rows share a circuit, verified here against the
        plaintext reference exactly like the direct path."""
        from repro.server.jobs import Job

        rows = []
        for index, benchmark in enumerate(suite):
            inputs = benchmark.sample_inputs(seed=self.input_seed)
            reference = benchmark.reference(inputs)
            for label in self.services:
                report = per_label_reports[label][index]
                job = Job(
                    kind="execute",
                    program=report.circuit,
                    inputs={key: int(value) for key, value in inputs.items()},
                    backend=self.backend_name,
                    name=f"{benchmark.name}/{label}",
                )
                self.server.submit(job)
                rows.append((job, benchmark, label, report, reference))
        self.server.drain()
        results: List[BenchmarkResult] = []
        verified = backend_produces_outputs(self.backend)
        for job, benchmark, label, report, reference in rows:
            payload = self.server.result(job.id, wait=True, timeout=300.0)
            if verified:
                outputs = payload["outputs"][0]
                correct = list(outputs) == list(reference)
            else:
                correct = True  # vacuous: accounting-only backends decrypt nothing
            results.append(
                self._build_result(
                    benchmark,
                    label,
                    report,
                    verified=verified,
                    correct=correct,
                    latency_ms=payload.get("latency_ms", 0.0),
                    consumed_noise_budget=payload.get("consumed_noise_budget", 0.0),
                    remaining_noise_budget=payload.get("remaining_noise_budget", 0.0),
                    noise_budget_exhausted=payload.get("noise_budget_exhausted", False),
                )
            )
        return results

    # -- summaries -------------------------------------------------------------------
    @staticmethod
    def summarize_ratio(
        results: Sequence[BenchmarkResult],
        metric: str,
        numerator: str,
        denominator: str,
    ) -> float:
        """Geometric-mean ratio ``numerator/denominator`` of ``metric``.

        This is how the paper reports "Coyote / CHEHAB RL" factors (e.g. the
        5.3× execution-time speedup): per-benchmark ratios, then the
        geometric mean.
        """
        by_benchmark: Dict[str, Dict[str, float]] = {}
        for result in results:
            by_benchmark.setdefault(result.benchmark, {})[result.compiler] = float(
                getattr(result, metric)
            )
        ratios: List[float] = []
        for values in by_benchmark.values():
            if numerator in values and denominator in values and values[denominator] > 0:
                ratios.append(max(values[numerator], 1e-12) / values[denominator])
        return geometric_mean(ratios)


def make_agent_compiler(
    agent: ChehabAgent,
    layout_before_encryption: bool = True,
) -> Compiler:
    """Wrap a trained agent in a Compiler (the CHEHAB RL configuration)."""
    return Compiler(
        CompilerOptions(
            optimizer=agent,
            layout_before_encryption=layout_before_encryption,
            cost_model=agent.reward_config.cost_model,
        )
    )


@lru_cache(maxsize=8)
def _cached_agent(
    train_timesteps: int,
    dataset_size: int,
    seed: int,
    use_random_data: bool,
    use_terminal_reward: bool,
) -> ChehabAgent:
    from repro.datagen import RandomExpressionGenerator, SyntheticKernelGenerator, build_dataset
    from repro.ir.tokenize import ICITokenizer
    from repro.kernels.registry import benchmark_suite

    tokenizer = ICITokenizer(max_length=96)
    if use_random_data:
        generator = RandomExpressionGenerator(max_depth=4, max_vector_size=4, seed=seed)
    else:
        generator = SyntheticKernelGenerator(seed=seed, max_size=6)
    benchmarks = [b.expression() for b in benchmark_suite(include_deep_trees=False)]
    dataset = build_dataset(generator, dataset_size, benchmarks=benchmarks)
    reward = RewardConfig(use_terminal_reward=use_terminal_reward)
    agent = ChehabAgent(
        policy_config=PolicyConfig.small(vocab_size=tokenizer.vocab_size, max_tokens=96, seed=seed),
        reward_config=reward,
        max_steps=25,
    )
    agent.tokenizer = tokenizer
    if train_timesteps > 0 and len(dataset) > 0:
        agent.train(
            list(dataset),
            total_timesteps=train_timesteps,
            num_envs=2,
            ppo_config=PPOConfig.small(seed=seed),
            seed=seed,
        )
    return agent


def make_default_agent(
    train_timesteps: int = 512,
    dataset_size: int = 64,
    seed: int = 0,
    use_random_data: bool = False,
    use_terminal_reward: bool = True,
) -> ChehabAgent:
    """A (small, briefly trained) CHEHAB RL agent for the experiment harness.

    The configuration is the scaled-down counterpart of the paper's 2M-step
    training run; raise ``train_timesteps`` and ``dataset_size`` to approach
    the full-scale setup.  Agents are cached per configuration so repeated
    harness invocations in one process reuse the same trained policy.
    """
    return _cached_agent(
        int(train_timesteps), int(dataset_size), int(seed), bool(use_random_data), bool(use_terminal_reward)
    )
