"""The main comparison: CHEHAB RL vs Coyote (Figs. 5, 6 and 7).

Runs the benchmark suite under the trained RL agent (plugged into the
CHEHAB compiler pipeline) and under the Coyote-style baseline, and reports
the three headline metrics per benchmark plus the geometric-mean factors the
paper quotes: execution time (5.3× in the paper), compilation time (27.9×)
and consumed noise budget (2.54×).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.harness import (
    BenchmarkResult,
    BenchmarkRunner,
    make_agent_compiler,
    make_default_agent,
)
from repro.experiments.reporting import series_by_compiler
from repro.kernels.registry import Benchmark, small_benchmark_suite
from repro.service import CompilationCache

__all__ = ["MainComparisonResult", "run_main_comparison"]

CHEHAB_RL = "CHEHAB RL"
COYOTE = "Coyote"


@dataclass
class MainComparisonResult:
    """Raw per-benchmark results plus the figure series and summary factors."""

    results: List[BenchmarkResult]
    #: Fig. 5 series: execution latency (ms) per benchmark per compiler.
    execution_time_series: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Fig. 6 series: compilation time (s) per benchmark per compiler.
    compile_time_series: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Fig. 7 series: consumed noise budget (bits) per benchmark per compiler.
    noise_series: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Geometric-mean factors (Coyote / CHEHAB RL); > 1 means CHEHAB RL wins.
    execution_speedup: float = 0.0
    compile_speedup: float = 0.0
    noise_reduction: float = 0.0

    @property
    def all_correct(self) -> bool:
        return all(result.correct for result in self.results if not result.noise_budget_exhausted)


def run_main_comparison(
    benchmarks: Optional[Sequence[Benchmark]] = None,
    train_timesteps: int = 512,
    input_seed: int = 0,
    workers: int = 1,
    cache: Optional[CompilationCache] = None,
) -> MainComparisonResult:
    """Run the CHEHAB RL vs Coyote comparison and summarise it.

    Compilation goes through the :class:`repro.service.CompilationService`;
    pass ``workers > 1`` to fan kernels out across a process pool and a
    shared ``cache`` to skip recompilation across repeated runs.
    """
    benchmarks = list(benchmarks) if benchmarks is not None else small_benchmark_suite()
    agent = make_default_agent(train_timesteps=train_timesteps)
    # The RL configuration wraps a live trained agent (not spec-serializable);
    # the Coyote baseline is addressed by registry name.
    runner = BenchmarkRunner(
        {CHEHAB_RL: make_agent_compiler(agent), COYOTE: "coyote"},
        input_seed=input_seed,
        workers=workers,
        cache=cache,
    )
    results = runner.run(benchmarks)
    comparison = MainComparisonResult(results=results)
    comparison.execution_time_series = series_by_compiler(results, "execution_latency_ms")
    comparison.compile_time_series = series_by_compiler(results, "compile_time_s")
    comparison.noise_series = series_by_compiler(results, "consumed_noise_budget")
    comparison.execution_speedup = runner.summarize_ratio(
        results, "execution_latency_ms", COYOTE, CHEHAB_RL
    )
    comparison.compile_speedup = runner.summarize_ratio(
        results, "compile_time_s", COYOTE, CHEHAB_RL
    )
    comparison.noise_reduction = runner.summarize_ratio(
        results, "consumed_noise_budget", COYOTE, CHEHAB_RL
    )
    return comparison
