"""The paper's motivating example (Sec. 2): costs of two vectorization strategies.

The example compares the scalar expression

.. math::

   x = (((v_1 v_2)(v_3 v_4)) + ((v_3 v_4)(v_5 v_6))) \\cdot ((v_7 v_8)(v_9 v_{10}))

under the illustrative toy cost model of the paper (multiplications and
rotations cost 1, additions cost 0.1): the scalar form costs 9.1, the first
vectorization 8.1 and the second 10.1, showing that not every vectorization
is beneficial.  ``run_motivating_example`` reproduces those three numbers
and also optimizes the expression with the real compiler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.compiler.pipeline import Compiler, CompilerOptions
from repro.ir.parser import parse

__all__ = ["MotivatingExampleResult", "run_motivating_example", "MOTIVATING_EXPRESSION"]

#: The motivating example, staged as IR (Eq. 1 of the paper).
MOTIVATING_EXPRESSION = (
    "(* (+ (* (* v1 v2) (* v3 v4)) (* (* v3 v4) (* v5 v6))) "
    "(* (* v7 v8) (* v9 v10)))"
)


@dataclass
class MotivatingExampleResult:
    """Toy-model costs of the three strategies plus the compiler's outcome."""

    scalar_cost: float
    first_vectorization_cost: float
    second_vectorization_cost: float
    compiled_cost_improvement: float

    def as_dict(self) -> Dict[str, float]:
        return dict(self.__dict__)


def toy_cost(multiplications: int, additions: int, rotations: int) -> float:
    """The illustrative cost model of Sec. 2 (mult/rot = 1, add = 0.1)."""
    return multiplications * 1.0 + rotations * 1.0 + additions * 0.1


def run_motivating_example() -> MotivatingExampleResult:
    """Reproduce the 9.1 / 8.1 / 10.1 comparison and compile the expression."""
    # The original scalar expression: 9 multiplications, 1 addition.
    scalar = toy_cost(multiplications=9, additions=1, rotations=0)
    # First strategy (Fig. 2a): 6 multiplications, 1 addition, 2 rotations.
    first = toy_cost(multiplications=6, additions=1, rotations=2)
    # Second strategy (Fig. 2b): 7 multiplications, 1 addition, 3 rotations.
    second = toy_cost(multiplications=7, additions=1, rotations=3)

    expr = parse(MOTIVATING_EXPRESSION)
    report = Compiler(CompilerOptions(optimizer="greedy")).compile_expression(
        expr, name="motivating_example"
    )
    return MotivatingExampleResult(
        scalar_cost=scalar,
        first_vectorization_cost=first,
        second_vectorization_cost=second,
        compiled_cost_improvement=report.cost_improvement,
    )
