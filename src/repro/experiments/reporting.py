"""Reporting helpers: text tables, CSV output and per-figure series."""

from __future__ import annotations

import csv
import os
from typing import Dict, Iterable, List, Mapping, Sequence, Union

from repro.experiments.harness import BenchmarkResult

__all__ = ["results_to_rows", "format_table", "write_csv", "series_by_compiler"]


def results_to_rows(results: Sequence[BenchmarkResult]) -> List[Dict[str, object]]:
    """Convert results to plain dictionaries (one row per result)."""
    return [result.as_dict() for result in results]


def format_table(
    rows: Sequence[Mapping[str, object]], columns: Sequence[str], title: str = ""
) -> str:
    """Format rows as a fixed-width text table."""
    widths = {column: len(column) for column in columns}
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                text = f"{value:.3f}"
            else:
                text = str(value)
            widths[column] = max(widths[column], len(text))
            rendered.append(text)
        rendered_rows.append(rendered)
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for rendered in rendered_rows:
        lines.append(
            "  ".join(text.ljust(widths[column]) for text, column in zip(rendered, columns))
        )
    return "\n".join(lines)


def write_csv(
    rows: Sequence[Mapping[str, object]],
    path: Union[str, os.PathLike],
    columns: Sequence[str] = (),
) -> None:
    """Write rows to a CSV file (creating parent directories)."""
    rows = list(rows)
    if not rows:
        raise ValueError("cannot write an empty CSV")
    columns = list(columns) if columns else list(rows[0].keys())
    directory = os.path.dirname(os.fspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(os.fspath(path), "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)


def series_by_compiler(
    results: Sequence[BenchmarkResult], metric: str
) -> Dict[str, Dict[str, float]]:
    """Per-compiler series ``{compiler: {benchmark: value}}`` for one metric.

    This is the data behind the paper's per-benchmark bar plots (Figs. 5-9,
    12): one series per compiler, one point per benchmark.
    """
    series: Dict[str, Dict[str, float]] = {}
    for result in results:
        series.setdefault(result.compiler, {})[result.benchmark] = float(
            getattr(result, metric)
        )
    return series
