"""Table 6: per-benchmark operation counts and depths under four configurations.

The four columns of the paper's Table 6:

1. **Initial** -- the naive scalar lowering (no optimization);
2. **CHEHAB RL** -- the trained agent inside the CHEHAB pipeline, with the
   input data layout transformed before encryption;
3. **Coyote** -- the Coyote-style baseline;
4. **CHEHAB RL (layout after encryption)** -- the ablation column where the
   packed-input layout is assembled homomorphically after encryption.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.compiler.registry import CompilerSpec
from repro.experiments.harness import (
    BenchmarkResult,
    BenchmarkRunner,
    make_agent_compiler,
    make_default_agent,
)
from repro.kernels.registry import Benchmark, small_benchmark_suite
from repro.service import CompilationCache

__all__ = ["TABLE6_CONFIGURATIONS", "run_table6"]

TABLE6_CONFIGURATIONS = (
    "Initial",
    "CHEHAB RL",
    "Coyote",
    "CHEHAB RL (layout after encryption)",
)


def run_table6(
    benchmarks: Optional[Sequence[Benchmark]] = None,
    train_timesteps: int = 512,
    input_seed: int = 0,
    workers: int = 1,
    cache: Optional[CompilationCache] = None,
) -> List[BenchmarkResult]:
    """Collect the Table 6 rows for every benchmark and configuration."""
    benchmarks = list(benchmarks) if benchmarks is not None else small_benchmark_suite()
    agent = make_default_agent(train_timesteps=train_timesteps)
    # Registry specs for the deterministic columns; the two RL columns wrap
    # the live trained agent (not spec-serializable).
    compilers: Dict[str, object] = {
        "Initial": CompilerSpec.create("initial"),
        "CHEHAB RL": make_agent_compiler(agent, layout_before_encryption=True),
        "Coyote": CompilerSpec.create("coyote"),
        "CHEHAB RL (layout after encryption)": make_agent_compiler(
            agent, layout_before_encryption=False
        ),
    }
    runner = BenchmarkRunner(compilers, input_seed=input_seed, workers=workers, cache=cache)
    return runner.run(benchmarks)
