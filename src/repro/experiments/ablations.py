"""Ablation studies of the paper's Sec. 7.6 (Table 1, Figs. 8-13, Table 7).

Each runner returns a small, self-describing result object whose fields map
directly onto the corresponding table rows or figure series.  Training runs
are scaled down (hundreds of PPO steps instead of two million) but keep the
exact structural contrasts the ablations isolate: reward terms, reward
weights, training-data distribution, tokenizer, encoder architecture and
action-space factorisation.

System-level ablations (compiler, backend, coalescing, caches, scheduler —
the serving stack rather than the RL stack) live in :mod:`repro.studies`;
:func:`run_system_ablation` is the thin wrapper that runs one through the
study engine and returns its ranked importance report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compiler.registry import CompilerSpec
from repro.core.cost import CostModel, CostWeights
from repro.datagen import RandomExpressionGenerator, SyntheticKernelGenerator, build_dataset
from repro.experiments.harness import (
    BenchmarkResult,
    BenchmarkRunner,
    geometric_mean,
    make_agent_compiler,
    make_default_agent,
)
from repro.ir.bpe import BPETokenizer
from repro.ir.tokenize import ICITokenizer
from repro.kernels.registry import Benchmark, small_benchmark_suite
from repro.rl.agent import ChehabAgent
from repro.rl.autoencoder import (
    AutoencoderConfig,
    GRUAutoencoder,
    TransformerAutoencoder,
    reconstruction_accuracy,
    train_autoencoder,
)
from repro.rl.env import EnvConfig, FheRewriteEnv, dataset_source
from repro.rl.flat_policy import FlatActorCritic
from repro.rl.policy import HierarchicalActorCritic, PolicyConfig
from repro.rl.ppo import PPOConfig, PPOTrainer
from repro.rl.reward import RewardConfig
from repro.service import CompilationCache
from repro.trs.registry import default_ruleset

__all__ = [
    "run_reward_weight_ablation",
    "run_dataset_ablation",
    "run_reward_term_ablation",
    "run_tokenizer_ablation",
    "run_encoder_ablation",
    "run_greedy_comparison",
    "run_action_space_ablation",
    "run_system_ablation",
]


def _default_benchmarks(benchmarks: Optional[Sequence[Benchmark]], limit: int) -> List[Benchmark]:
    suite = list(benchmarks) if benchmarks is not None else small_benchmark_suite()
    return suite[:limit]


def _training_dataset(size: int, seed: int = 0, random_data: bool = False):
    generator = (
        RandomExpressionGenerator(max_depth=4, max_vector_size=4, seed=seed)
        if random_data
        else SyntheticKernelGenerator(seed=seed, max_size=6)
    )
    return list(build_dataset(generator, size))


# ---------------------------------------------------------------------------
# Table 1 — reward weight sensitivity
# ---------------------------------------------------------------------------
@dataclass
class RewardWeightAblationResult:
    """One row per weight configuration, relative to the (1, 1, 1) default."""

    weight_configs: List[Tuple[float, float, float]]
    execution_time_factor: Dict[Tuple[float, float, float], float] = field(default_factory=dict)
    noise_factor: Dict[Tuple[float, float, float], float] = field(default_factory=dict)
    results: List[BenchmarkResult] = field(default_factory=list)


def run_reward_weight_ablation(
    benchmarks: Optional[Sequence[Benchmark]] = None,
    weight_configs: Sequence[Tuple[float, float, float]] = ((1, 1, 1), (1, 50, 50), (1, 100, 100)),
    input_seed: int = 0,
    workers: int = 1,
    cache: Optional[CompilationCache] = None,
) -> RewardWeightAblationResult:
    """Vary ``(w_ops, w_depth, w_mult)`` and compare runtime and noise (Table 1).

    To isolate the effect of the cost-function weights from RL training
    variance, the ablation drives the deterministic greedy rewriter with each
    weighted cost model (the same cost model the agent's reward would use).
    """
    benchmarks = _default_benchmarks(benchmarks, limit=6)
    compilers = {}
    for weights in weight_configs:
        model = CostModel(weights=CostWeights(ops=weights[0], depth=weights[1], mult_depth=weights[2]))
        compilers[str(tuple(weights))] = CompilerSpec.create("greedy", cost_model=model)
    runner = BenchmarkRunner(compilers, input_seed=input_seed, workers=workers, cache=cache)
    results = runner.run(benchmarks)

    outcome = RewardWeightAblationResult(weight_configs=list(weight_configs), results=results)
    baseline_label = str(tuple(weight_configs[0]))
    for weights in weight_configs:
        label = str(tuple(weights))
        outcome.execution_time_factor[tuple(weights)] = runner.summarize_ratio(
            results, "execution_latency_ms", label, baseline_label
        )
        outcome.noise_factor[tuple(weights)] = runner.summarize_ratio(
            results, "consumed_noise_budget", label, baseline_label
        )
    return outcome


# ---------------------------------------------------------------------------
# Fig. 8 — LLM-generated vs random training data
# ---------------------------------------------------------------------------
@dataclass
class DatasetAblationResult:
    results: List[BenchmarkResult]
    execution_time_series: Dict[str, Dict[str, float]]
    #: Geometric-mean factor random / motif (>1 means motif data wins).
    speedup_of_realistic_data: float


def run_dataset_ablation(
    benchmarks: Optional[Sequence[Benchmark]] = None,
    train_timesteps: int = 384,
    input_seed: int = 0,
    workers: int = 1,
    cache: Optional[CompilationCache] = None,
) -> DatasetAblationResult:
    """Train one agent on motif ("LLM-like") data and one on random data (Fig. 8)."""
    from repro.experiments.reporting import series_by_compiler

    benchmarks = _default_benchmarks(benchmarks, limit=6)
    realistic_agent = make_default_agent(
        train_timesteps=train_timesteps, use_random_data=False, seed=0
    )
    random_agent = make_default_agent(
        train_timesteps=train_timesteps, use_random_data=True, seed=0
    )
    runner = BenchmarkRunner(
        {
            "LLM-style data": make_agent_compiler(realistic_agent),
            "Random data": make_agent_compiler(random_agent),
        },
        input_seed=input_seed,
        workers=workers,
        cache=cache,
    )
    results = runner.run(benchmarks)
    return DatasetAblationResult(
        results=results,
        execution_time_series=series_by_compiler(results, "execution_latency_ms"),
        speedup_of_realistic_data=runner.summarize_ratio(
            results, "execution_latency_ms", "Random data", "LLM-style data"
        ),
    )


# ---------------------------------------------------------------------------
# Fig. 9 — step-only vs step + terminal reward
# ---------------------------------------------------------------------------
@dataclass
class RewardTermAblationResult:
    results: List[BenchmarkResult]
    execution_time_series: Dict[str, Dict[str, float]]
    #: Geometric-mean factor step-only / step+terminal (>1 means terminal wins).
    improvement_from_terminal: float


def run_reward_term_ablation(
    benchmarks: Optional[Sequence[Benchmark]] = None,
    train_timesteps: int = 384,
    input_seed: int = 0,
    workers: int = 1,
    cache: Optional[CompilationCache] = None,
) -> RewardTermAblationResult:
    """Compare agents trained with and without the terminal reward (Fig. 9)."""
    from repro.experiments.reporting import series_by_compiler

    benchmarks = _default_benchmarks(benchmarks, limit=6)
    combined_agent = make_default_agent(
        train_timesteps=train_timesteps, use_terminal_reward=True, seed=0
    )
    step_only_agent = make_default_agent(
        train_timesteps=train_timesteps, use_terminal_reward=False, seed=0
    )
    runner = BenchmarkRunner(
        {
            "step+terminal": make_agent_compiler(combined_agent),
            "step-only": make_agent_compiler(step_only_agent),
        },
        input_seed=input_seed,
        workers=workers,
        cache=cache,
    )
    results = runner.run(benchmarks)
    return RewardTermAblationResult(
        results=results,
        execution_time_series=series_by_compiler(results, "execution_latency_ms"),
        improvement_from_terminal=runner.summarize_ratio(
            results, "execution_latency_ms", "step-only", "step+terminal"
        ),
    )


# ---------------------------------------------------------------------------
# Fig. 10 — ICI vs BPE tokenization
# ---------------------------------------------------------------------------
@dataclass
class TokenizerAblationResult:
    ici_tokens_per_program: float
    bpe_tokens_per_program: float
    ici_tokenization_time_s: float
    bpe_tokenization_time_s: float
    ici_reward_curve: List[float]
    bpe_training_time_factor: float


def run_tokenizer_ablation(
    corpus_size: int = 96,
    train_timesteps: int = 256,
    seed: int = 0,
) -> TokenizerAblationResult:
    """Compare ICI against BPE tokenization (Fig. 10).

    The measured quantities are the ones that drive the paper's finding that
    ICI trains faster: the tokenization throughput and the sequence lengths
    (BPE produces longer subword sequences, and every training step pays for
    them), plus the reward curve of a short ICI-based training run.
    """
    dataset = _training_dataset(corpus_size, seed=seed)
    ici = ICITokenizer(max_length=96)
    bpe = BPETokenizer(vocab_size=256, max_length=96)
    bpe.train(dataset)

    start = time.perf_counter()
    ici_lengths = [len(ici.tokenize(expr)) for expr in dataset]
    ici_time = time.perf_counter() - start
    start = time.perf_counter()
    bpe_lengths = [len(bpe.tokenize(expr)) for expr in dataset]
    bpe_time = time.perf_counter() - start

    agent = make_default_agent(train_timesteps=train_timesteps, seed=seed)
    reward_curve = (
        list(agent.training_history.mean_episode_reward)
        if agent.training_history is not None
        else []
    )
    # Per-step training cost scales with sequence length (attention is
    # quadratic); report the implied slow-down factor of BPE.
    ratio = (float(np.mean(bpe_lengths)) / max(1.0, float(np.mean(ici_lengths)))) if dataset else 1.0
    return TokenizerAblationResult(
        ici_tokens_per_program=float(np.mean(ici_lengths)) if dataset else 0.0,
        bpe_tokens_per_program=float(np.mean(bpe_lengths)) if dataset else 0.0,
        ici_tokenization_time_s=ici_time,
        bpe_tokenization_time_s=bpe_time,
        ici_reward_curve=reward_curve,
        bpe_training_time_factor=ratio,
    )


# ---------------------------------------------------------------------------
# Fig. 11 + Table 7 — Transformer vs GRU autoencoder
# ---------------------------------------------------------------------------
@dataclass
class EncoderAblationResult:
    transformer_history: Dict[str, List[float]]
    gru_history: Dict[str, List[float]]
    transformer_accuracy: Dict[str, float]
    gru_accuracy: Dict[str, float]


def run_encoder_ablation(
    corpus_size: int = 48,
    epochs: int = 8,
    seed: int = 0,
) -> EncoderAblationResult:
    """Train both autoencoders on random IR and compare reconstruction (Table 7)."""
    generator = RandomExpressionGenerator(max_depth=3, max_vector_size=3, seed=seed)
    dataset = list(build_dataset(generator, corpus_size))
    config = AutoencoderConfig(max_tokens=48, model_dim=32, latent_dim=32, num_layers=1, num_heads=2, seed=seed)
    tokenizer = ICITokenizer(max_length=config.max_tokens)
    config.vocab_size = tokenizer.vocab_size

    transformer = TransformerAutoencoder(config)
    gru = GRUAutoencoder(config)
    transformer_history = train_autoencoder(
        transformer, dataset, tokenizer=tokenizer, epochs=epochs, seed=seed
    )
    gru_history = train_autoencoder(gru, dataset, tokenizer=tokenizer, epochs=epochs, seed=seed)

    token_ids = np.stack([np.asarray(tokenizer.encode(expr)) for expr in dataset])
    padding = np.stack([np.asarray(tokenizer.attention_mask(row)) for row in token_ids])
    return EncoderAblationResult(
        transformer_history=transformer_history,
        gru_history=gru_history,
        transformer_accuracy=reconstruction_accuracy(transformer, token_ids, padding),
        gru_accuracy=reconstruction_accuracy(gru, token_ids, padding),
    )


# ---------------------------------------------------------------------------
# Fig. 12 — CHEHAB (greedy) vs CHEHAB RL
# ---------------------------------------------------------------------------
@dataclass
class GreedyComparisonResult:
    results: List[BenchmarkResult]
    execution_time_series: Dict[str, Dict[str, float]]
    #: Geometric-mean factor greedy / RL (>1 means the RL agent wins).
    rl_speedup_over_greedy: float


def run_greedy_comparison(
    benchmarks: Optional[Sequence[Benchmark]] = None,
    train_timesteps: int = 512,
    input_seed: int = 0,
    workers: int = 1,
    cache: Optional[CompilationCache] = None,
) -> GreedyComparisonResult:
    """Compare the original CHEHAB (greedy TRS) against CHEHAB RL (Fig. 12)."""
    from repro.experiments.reporting import series_by_compiler

    benchmarks = _default_benchmarks(benchmarks, limit=8)
    agent = make_default_agent(train_timesteps=train_timesteps)
    runner = BenchmarkRunner(
        {
            "CHEHAB RL": make_agent_compiler(agent),
            "CHEHAB": "greedy",
        },
        input_seed=input_seed,
        workers=workers,
        cache=cache,
    )
    results = runner.run(benchmarks)
    return GreedyComparisonResult(
        results=results,
        execution_time_series=series_by_compiler(results, "execution_latency_ms"),
        rl_speedup_over_greedy=runner.summarize_ratio(
            results, "execution_latency_ms", "CHEHAB", "CHEHAB RL"
        ),
    )


# ---------------------------------------------------------------------------
# Fig. 13 — flat vs hierarchical action space
# ---------------------------------------------------------------------------
@dataclass
class ActionSpaceAblationResult:
    hierarchical_rewards: List[float]
    flat_rewards: List[float]
    hierarchical_final_reward: float
    flat_final_reward: float


def run_action_space_ablation(
    train_timesteps: int = 256,
    dataset_size: int = 32,
    seed: int = 0,
) -> ActionSpaceAblationResult:
    """Train a hierarchical and a flat agent and compare learning curves (Fig. 13)."""
    dataset = _training_dataset(dataset_size, seed=seed)
    tokenizer = ICITokenizer(max_length=96)
    ruleset = default_ruleset()
    config = PolicyConfig.small(vocab_size=tokenizer.vocab_size, max_tokens=96, seed=seed)
    env_config = EnvConfig(max_steps=20, max_locations=config.max_locations, max_tokens=96)

    def make_envs(count: int) -> List[FheRewriteEnv]:
        return [
            FheRewriteEnv(
                dataset_source(dataset, seed=seed + index),
                ruleset=ruleset,
                tokenizer=tokenizer,
                config=env_config,
            )
            for index in range(count)
        ]

    hierarchical = HierarchicalActorCritic(ruleset.action_count, config)
    flat = FlatActorCritic(ruleset.action_count, config)
    ppo = PPOConfig.small(seed=seed)

    hierarchical_history = PPOTrainer(hierarchical, make_envs(2), ppo).train(train_timesteps)
    flat_history = PPOTrainer(flat, make_envs(2), ppo).train(train_timesteps)

    return ActionSpaceAblationResult(
        hierarchical_rewards=list(hierarchical_history.mean_episode_reward),
        flat_rewards=list(flat_history.mean_episode_reward),
        hierarchical_final_reward=(
            float(np.mean(hierarchical_history.mean_episode_reward[-2:]))
            if hierarchical_history.mean_episode_reward
            else 0.0
        ),
        flat_final_reward=(
            float(np.mean(flat_history.mean_episode_reward[-2:]))
            if flat_history.mean_episode_reward
            else 0.0
        ),
    )


# ---------------------------------------------------------------------------
# System ablation — thin wrapper over the repro.studies engine
# ---------------------------------------------------------------------------
def run_system_ablation(
    study_dir: str,
    components: Optional[Sequence[str]] = None,
    workloads: Optional[Sequence[str]] = None,
    replicates: int = 3,
    jobs_per_replicate: int = 8,
    seed: int = 0,
    workers: int = 2,
    resume: bool = False,
    resamples: int = 2000,
) -> Dict[str, object]:
    """Ablate serving-stack components through the study engine.

    Unlike the RL-stack runners above (which train and benchmark agents),
    this delegates entirely to :func:`repro.api.run_study`: the study engine
    expands the baseline + one-component-off matrix, executes every
    replicate on a :class:`~repro.server.server.JobServer`, persists state
    under ``study_dir`` (pass ``resume=True`` to continue an interrupted
    study without re-running finished replicates) and returns the report
    dict with per-component importance scores, bootstrap CIs and ranking.
    """
    from repro.api import run_study

    return run_study(
        study_dir,
        components=list(components) if components is not None else None,
        workloads=list(workloads) if workloads is not None else None,
        replicates=replicates,
        jobs_per_replicate=jobs_per_replicate,
        seed=seed,
        workers=workers,
        resume=resume,
        resamples=resamples,
    )
