"""Experiment harnesses regenerating the paper's tables and figures.

Each module corresponds to one experiment of the evaluation section (see the
experiment index in DESIGN.md).  All harnesses share
:class:`repro.experiments.harness.BenchmarkRunner`, which compiles every
kernel with every configured compiler, executes the circuits on the FHE
simulator, verifies the outputs against the plaintext reference and collects
the metrics the paper reports (execution latency, compilation time, consumed
noise budget, operation counts, depth and multiplicative depth).

The scaled-down defaults (small kernel subset, short RL training) run in
seconds-to-minutes; every knob can be raised towards the paper's full-scale
setup.  EXPERIMENTS.md records the settings used and the measured results.
"""

from repro.experiments.harness import (
    BenchmarkResult,
    BenchmarkRunner,
    geometric_mean,
    make_agent_compiler,
    make_default_agent,
)
from repro.experiments.main_comparison import run_main_comparison
from repro.experiments.table6 import run_table6
from repro.experiments.motivating_example import run_motivating_example
from repro.experiments.ablations import (
    run_action_space_ablation,
    run_dataset_ablation,
    run_encoder_ablation,
    run_greedy_comparison,
    run_reward_term_ablation,
    run_reward_weight_ablation,
    run_tokenizer_ablation,
)
from repro.experiments.reporting import format_table, results_to_rows, write_csv

__all__ = [
    "BenchmarkRunner",
    "BenchmarkResult",
    "geometric_mean",
    "make_default_agent",
    "make_agent_compiler",
    "run_main_comparison",
    "run_table6",
    "run_motivating_example",
    "run_reward_weight_ablation",
    "run_dataset_ablation",
    "run_reward_term_ablation",
    "run_tokenizer_ablation",
    "run_encoder_ablation",
    "run_greedy_comparison",
    "run_action_space_ablation",
    "format_table",
    "results_to_rows",
    "write_csv",
]
