"""Typed, immutable expression nodes for the CHEHAB IR.

Every node derives from :class:`Expr` and exposes a uniform interface:

* ``op`` -- a short string naming the operator (``"+"``, ``"Vec"``, ...).
* ``children`` -- a tuple of child expressions (empty for leaves).
* ``with_children(new_children)`` -- rebuild the node with new children,
  preserving any non-child attributes (variable name, constant value,
  rotation step).

This generic interface is what the term rewriting system, the analyses and
the tokenizers traverse, while user-facing code can still construct and
pattern-match on the concrete classes.

Nodes are immutable and implement structural equality and hashing, so they
can be used as dictionary keys (hash-consing, CSE, memoised analyses).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

__all__ = [
    "Expr",
    "Var",
    "Const",
    "Add",
    "Sub",
    "Mul",
    "Neg",
    "Rotate",
    "Vec",
    "VecAdd",
    "VecSub",
    "VecMul",
    "VecNeg",
    "SCALAR_BINARY_OPS",
    "VECTOR_BINARY_OPS",
    "is_scalar_op",
    "is_vector_op",
]


class Expr:
    """Base class of every IR node.

    Subclasses set the class attribute :attr:`op` and store their children in
    :attr:`children`.  Instances are immutable; all "mutation" happens by
    constructing new nodes (typically through :meth:`with_children`).
    """

    #: Operator mnemonic; overridden by every subclass.
    op: str = "?"

    __slots__ = ("children", "_hash")

    def __init__(self, children: Sequence["Expr"] = ()) -> None:
        object.__setattr__(self, "children", tuple(children))
        object.__setattr__(self, "_hash", None)

    # -- immutability ------------------------------------------------------
    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(
            f"{type(self).__name__} nodes are immutable; build a new node instead"
        )

    # -- pickling ----------------------------------------------------------
    # The default slot-based pickling calls ``setattr`` on restore, which the
    # immutability guard rejects; restore through ``object.__setattr__``.
    # The cached ``_hash`` is deliberately dropped: hash() of the strings it
    # derives from is salted per process (PYTHONHASHSEED), so a pickled value
    # would disagree with hashes computed in the receiving process and break
    # Expr-keyed tables (CSE caches, beam-search seen sets).
    def __getstate__(self) -> dict:
        state = {}
        for klass in type(self).__mro__:
            for slot in getattr(klass, "__slots__", ()):
                if slot != "_hash" and hasattr(self, slot):
                    state[slot] = getattr(self, slot)
        return state

    def __setstate__(self, state: dict) -> None:
        object.__setattr__(self, "_hash", None)
        for slot, value in state.items():
            object.__setattr__(self, slot, value)

    # -- generic interface -------------------------------------------------
    def with_children(self, children: Sequence["Expr"]) -> "Expr":
        """Return a copy of this node with ``children`` replaced.

        Leaf nodes raise ``ValueError`` when given a non-empty child list.
        """
        if children:
            raise ValueError(f"{type(self).__name__} is a leaf and takes no children")
        return self

    @property
    def arity(self) -> int:
        """Number of direct children."""
        return len(self.children)

    def is_leaf(self) -> bool:
        """True when the node has no children (variables and constants)."""
        return not self.children

    def _key(self) -> Tuple:
        """Tuple identifying the node for equality/hashing (excludes children)."""
        return (self.op,)

    # -- structural equality -----------------------------------------------
    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Expr):
            return NotImplemented
        if type(self) is not type(other):
            return False
        return self._key() == other._key() and self.children == other.children

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash((type(self).__name__, self._key(), self.children))
            object.__setattr__(self, "_hash", cached)
        return cached

    # -- convenience -------------------------------------------------------
    def walk(self) -> Iterator["Expr"]:
        """Yield this node and every descendant in pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from repro.ir.printer import to_sexpr

        return f"{type(self).__name__}({to_sexpr(self)!r})"

    def __str__(self) -> str:
        from repro.ir.printer import to_sexpr

        return to_sexpr(self)


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------
class Var(Expr):
    """A named scalar or vector input variable."""

    op = "var"
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("variable name must be a non-empty string")
        super().__init__(())
        object.__setattr__(self, "name", str(name))

    def _key(self) -> Tuple:
        return (self.op, self.name)

    def with_children(self, children: Sequence[Expr]) -> "Var":
        if children:
            raise ValueError("Var is a leaf and takes no children")
        return self


class Const(Expr):
    """An integer literal."""

    op = "const"
    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        super().__init__(())
        object.__setattr__(self, "value", int(value))

    def _key(self) -> Tuple:
        return (self.op, self.value)

    def with_children(self, children: Sequence[Expr]) -> "Const":
        if children:
            raise ValueError("Const is a leaf and takes no children")
        return self


# ---------------------------------------------------------------------------
# Scalar arithmetic
# ---------------------------------------------------------------------------
class _Binary(Expr):
    """Shared machinery for binary operators."""

    __slots__ = ()

    def __init__(self, lhs: Expr, rhs: Expr) -> None:
        _check_expr(lhs, "lhs")
        _check_expr(rhs, "rhs")
        super().__init__((lhs, rhs))

    @property
    def lhs(self) -> Expr:
        return self.children[0]

    @property
    def rhs(self) -> Expr:
        return self.children[1]

    def with_children(self, children: Sequence[Expr]) -> "Expr":
        if len(children) != 2:
            raise ValueError(f"{type(self).__name__} takes exactly two children")
        return type(self)(children[0], children[1])


class _Unary(Expr):
    """Shared machinery for unary operators."""

    __slots__ = ()

    def __init__(self, operand: Expr) -> None:
        _check_expr(operand, "operand")
        super().__init__((operand,))

    @property
    def operand(self) -> Expr:
        return self.children[0]

    def with_children(self, children: Sequence[Expr]) -> "Expr":
        if len(children) != 1:
            raise ValueError(f"{type(self).__name__} takes exactly one child")
        return type(self)(children[0])


class Add(_Binary):
    """Scalar addition (``(+ a b)``)."""

    op = "+"
    __slots__ = ()


class Sub(_Binary):
    """Scalar subtraction (``(- a b)``)."""

    op = "-"
    __slots__ = ()


class Mul(_Binary):
    """Scalar multiplication (``(* a b)``)."""

    op = "*"
    __slots__ = ()


class Neg(_Unary):
    """Scalar negation (``(- a)``)."""

    op = "neg"
    __slots__ = ()


# ---------------------------------------------------------------------------
# Rotation and vectors
# ---------------------------------------------------------------------------
class Rotate(Expr):
    """Cyclic left rotation of a packed ciphertext by a constant step.

    ``(<< x 2)`` rotates the slots of ``x`` left by two positions; slot ``i``
    of the result holds slot ``(i + 2) mod n`` of the input.
    """

    op = "<<"
    __slots__ = ("step",)

    def __init__(self, operand: Expr, step: int) -> None:
        _check_expr(operand, "operand")
        super().__init__((operand,))
        object.__setattr__(self, "step", int(step))

    @property
    def operand(self) -> Expr:
        return self.children[0]

    def _key(self) -> Tuple:
        return (self.op, self.step)

    def with_children(self, children: Sequence[Expr]) -> "Rotate":
        if len(children) != 1:
            raise ValueError("Rotate takes exactly one child")
        return Rotate(children[0], self.step)


class Vec(Expr):
    """Vector constructor: packs scalar elements into ciphertext slots.

    ``(Vec a b c)`` produces a vector whose slot 0 holds ``a``, slot 1 holds
    ``b`` and slot 2 holds ``c``; remaining slots are zero.
    """

    op = "Vec"
    __slots__ = ()

    def __init__(self, *elements: Expr) -> None:
        if len(elements) == 1 and isinstance(elements[0], (list, tuple)):
            elements = tuple(elements[0])
        if not elements:
            raise ValueError("Vec requires at least one element")
        for index, element in enumerate(elements):
            _check_expr(element, f"element {index}")
        super().__init__(tuple(elements))

    @property
    def elements(self) -> Tuple[Expr, ...]:
        return self.children

    def with_children(self, children: Sequence[Expr]) -> "Vec":
        return Vec(*children)


class VecAdd(_Binary):
    """Element-wise vector addition."""

    op = "VecAdd"
    __slots__ = ()


class VecSub(_Binary):
    """Element-wise vector subtraction."""

    op = "VecSub"
    __slots__ = ()


class VecMul(_Binary):
    """Element-wise vector multiplication."""

    op = "VecMul"
    __slots__ = ()


class VecNeg(_Unary):
    """Element-wise vector negation."""

    op = "VecNeg"
    __slots__ = ()


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------
SCALAR_BINARY_OPS = ("+", "-", "*")
VECTOR_BINARY_OPS = ("VecAdd", "VecSub", "VecMul")

_SCALAR_OPS = frozenset({"+", "-", "*", "neg"})
_VECTOR_OPS = frozenset({"Vec", "VecAdd", "VecSub", "VecMul", "VecNeg", "<<"})


def is_scalar_op(node: Expr) -> bool:
    """True when ``node`` is a scalar arithmetic operator."""
    return node.op in _SCALAR_OPS


def is_vector_op(node: Expr) -> bool:
    """True when ``node`` is a vector operator, rotation or constructor."""
    return node.op in _VECTOR_OPS


def _check_expr(value: object, label: str) -> None:
    if not isinstance(value, Expr):
        raise TypeError(f"{label} must be an Expr, got {type(value).__name__}")


def produces_vector(node: Expr, vector_vars: Optional[frozenset] = None) -> bool:
    """Best-effort check of whether ``node`` evaluates to a packed vector.

    ``vector_vars`` optionally names the variables that are known to be
    vector-valued inputs; all other variables are treated as scalars.
    """
    if isinstance(node, Var):
        return vector_vars is not None and node.name in vector_vars
    if isinstance(node, Const):
        return False
    if node.op in ("Vec", "VecAdd", "VecSub", "VecMul", "VecNeg"):
        return True
    if node.op == "<<":
        return True
    return any(produces_vector(child, vector_vars) for child in node.children)
