"""Expression intermediate representation (IR) for the CHEHAB RL reproduction.

The IR mirrors the CHEHAB compiler's term representation: a small, closed
vocabulary of scalar arithmetic operators (``+``, ``-``, ``*``, unary ``-``),
slot rotations (``<<``), a vector constructor (``Vec``) and element-wise
vector operators (``VecAdd``, ``VecSub``, ``VecMul``, ``VecNeg``).

The package provides:

* :mod:`repro.ir.nodes` -- typed, immutable expression nodes with structural
  equality and hashing.
* :mod:`repro.ir.parser` / :mod:`repro.ir.printer` -- the textual
  s-expression form used throughout the paper (e.g. ``(Vec (+ a b) (* c d))``).
* :mod:`repro.ir.analysis` -- circuit depth, multiplicative depth, operation
  counts and related static analyses.
* :mod:`repro.ir.pattern` -- pattern matching and substitution used by the
  term rewriting system.
* :mod:`repro.ir.dag` -- conversion of the expression tree into a dataflow
  DAG (hash-consing), used for common-subexpression analysis.
* :mod:`repro.ir.tokenize` -- the Identifier and Constant Invariant (ICI)
  tokenizer and canonical form (Sec. 5.1 of the paper).
* :mod:`repro.ir.bpe` -- a Byte-Pair-Encoding tokenizer baseline used by the
  tokenization ablation.
"""

from repro.ir.nodes import (
    Add,
    Const,
    Expr,
    Mul,
    Neg,
    Rotate,
    Sub,
    Var,
    Vec,
    VecAdd,
    VecMul,
    VecNeg,
    VecSub,
)
from repro.ir.parser import ParseError, parse
from repro.ir.printer import to_sexpr
from repro.ir.analysis import (
    OpCounts,
    circuit_depth,
    count_ops,
    expression_size,
    multiplicative_depth,
    rotation_steps,
    variables,
)
from repro.ir.pattern import (
    MatchResult,
    PatternVar,
    find_matches,
    get_at,
    match,
    replace_at,
    substitute,
)
from repro.ir.tokenize import ICITokenizer, Vocabulary, canonical_form

__all__ = [
    "Expr",
    "Var",
    "Const",
    "Add",
    "Sub",
    "Mul",
    "Neg",
    "Rotate",
    "Vec",
    "VecAdd",
    "VecSub",
    "VecMul",
    "VecNeg",
    "parse",
    "ParseError",
    "to_sexpr",
    "OpCounts",
    "circuit_depth",
    "multiplicative_depth",
    "count_ops",
    "expression_size",
    "rotation_steps",
    "variables",
    "PatternVar",
    "MatchResult",
    "match",
    "substitute",
    "find_matches",
    "get_at",
    "replace_at",
    "ICITokenizer",
    "Vocabulary",
    "canonical_form",
]
