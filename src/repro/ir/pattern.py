"""Pattern matching and substitution for the term rewriting system.

Patterns are ordinary IR expressions that may additionally contain
:class:`PatternVar` leaves (written ``?a`` in the paper's rule syntax).  A
pattern variable matches any sub-expression and binds it; repeated pattern
variables must bind structurally equal sub-expressions (non-linear matching),
which is what rules such as ``(+ (* ?a ?b) (* ?a ?c)) => (* ?a (+ ?b ?c))``
rely on.

Pattern variables can carry an optional *kind* restriction so rules can
require a constant (``kind="const"``) or a plain variable (``kind="var"``)
in a given position.

Locations inside an expression are addressed by *paths*: tuples of child
indices from the root.  :func:`find_matches` enumerates every path where a
pattern matches, in pre-order, which defines the location indexing used by
the RL agent's location-selection network.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.nodes import Const, Expr, Var

__all__ = [
    "PatternVar",
    "MatchResult",
    "match",
    "substitute",
    "find_matches",
    "get_at",
    "replace_at",
    "Bindings",
]

Bindings = Dict[str, Expr]


class PatternVar(Expr):
    """A pattern variable (``?a``) that matches and binds any sub-expression."""

    op = "pattern"
    __slots__ = ("name", "kind")

    #: Allowed kind restrictions.
    KINDS = ("any", "const", "var", "leaf")

    def __init__(self, name: str, kind: str = "any") -> None:
        if not name:
            raise ValueError("pattern variable name must be non-empty")
        if kind not in self.KINDS:
            raise ValueError(f"unknown pattern kind {kind!r}; expected one of {self.KINDS}")
        super().__init__(())
        object.__setattr__(self, "name", str(name))
        object.__setattr__(self, "kind", kind)

    def _key(self) -> Tuple:
        return (self.op, self.name, self.kind)

    def with_children(self, children: Sequence[Expr]) -> "PatternVar":
        if children:
            raise ValueError("PatternVar is a leaf and takes no children")
        return self

    def accepts(self, expr: Expr) -> bool:
        """Whether ``expr`` satisfies this variable's kind restriction."""
        if self.kind == "const":
            return isinstance(expr, Const)
        if self.kind == "var":
            return isinstance(expr, Var)
        if self.kind == "leaf":
            return expr.is_leaf()
        return True


class MatchResult:
    """A successful match: the path it occurred at and the variable bindings."""

    __slots__ = ("path", "bindings")

    def __init__(self, path: Tuple[int, ...], bindings: Bindings) -> None:
        self.path = path
        self.bindings = bindings

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MatchResult(path={self.path}, bindings={sorted(self.bindings)})"


def match(pattern: Expr, expr: Expr) -> Optional[Bindings]:
    """Match ``pattern`` against ``expr`` at the root.

    Returns the bindings dictionary on success, ``None`` on failure.
    """
    bindings: Bindings = {}
    if _match(pattern, expr, bindings):
        return bindings
    return None


def _match(pattern: Expr, expr: Expr, bindings: Bindings) -> bool:
    if isinstance(pattern, PatternVar):
        if not pattern.accepts(expr):
            return False
        bound = bindings.get(pattern.name)
        if bound is None:
            bindings[pattern.name] = expr
            return True
        return bound == expr
    if type(pattern) is not type(expr):
        return False
    if pattern._key() != expr._key():
        return False
    if len(pattern.children) != len(expr.children):
        return False
    return all(
        _match(pattern_child, expr_child, bindings)
        for pattern_child, expr_child in zip(pattern.children, expr.children)
    )


def substitute(template: Expr, bindings: Bindings) -> Expr:
    """Instantiate ``template`` by replacing its pattern variables.

    Raises ``KeyError`` if the template references an unbound variable.
    """
    if isinstance(template, PatternVar):
        return bindings[template.name]
    if template.is_leaf():
        return template
    new_children = [substitute(child, bindings) for child in template.children]
    if new_children == list(template.children):
        return template
    return template.with_children(new_children)


def find_matches(pattern: Expr, expr: Expr, limit: Optional[int] = None) -> List[MatchResult]:
    """Enumerate every location of ``expr`` where ``pattern`` matches.

    Matches are returned in pre-order of their paths, which is the stable
    "1st match, 2nd match, ..." ordering the location-selection network
    chooses from.  ``limit`` caps the number of results.
    """
    from repro.ir.analysis import iter_subexpressions

    results: List[MatchResult] = []
    for path, node in iter_subexpressions(expr):
        bindings: Bindings = {}
        if _match(pattern, node, bindings):
            results.append(MatchResult(path, bindings))
            if limit is not None and len(results) >= limit:
                break
    return results


def get_at(expr: Expr, path: Sequence[int]) -> Expr:
    """Return the sub-expression of ``expr`` at ``path``."""
    node = expr
    for index in path:
        node = node.children[index]
    return node


def replace_at(expr: Expr, path: Sequence[int], replacement: Expr) -> Expr:
    """Return a copy of ``expr`` with the sub-expression at ``path`` replaced."""
    if not path:
        return replacement
    index = path[0]
    children = list(expr.children)
    children[index] = replace_at(children[index], path[1:], replacement)
    return expr.with_children(children)
