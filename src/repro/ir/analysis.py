"""Static analyses over IR expressions.

These analyses implement the metrics defined in Sec. 3.1.1 and 5.3.1 of the
paper:

* **circuit depth** -- the longest chain of operations between any input and
  the output of the expression;
* **multiplicative depth** -- the longest chain counting only multiplications
  (scalar ``*`` and ``VecMul``), since multiplications dominate noise growth;
* **operation counts** -- per-class counts of scalar/vector operations and
  rotations, used both by the analytical cost function and by the Table 6
  reproduction.

All analyses operate on the *dataflow DAG* implied by the tree: structurally
identical sub-expressions are shared (they would be computed once after CSE),
which matches how the paper reports depth and operation counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.ir.nodes import Const, Expr, Mul, Rotate, Var, Vec, VecMul

__all__ = [
    "OpCounts",
    "circuit_depth",
    "multiplicative_depth",
    "count_ops",
    "expression_size",
    "dag_size",
    "variables",
    "constants",
    "rotation_steps",
    "iter_subexpressions",
    "unique_subexpressions",
]

_MUL_OPS = frozenset({"*", "VecMul"})
_NON_OPS = frozenset({"var", "const", "Vec"})


@dataclass
class OpCounts:
    """Per-class operation counts of an expression's dataflow DAG.

    ``Vec`` constructors are counted separately because they are not
    homomorphic operations themselves; they become client-side packing or
    rotation/mask sequences during lowering.
    """

    scalar_add: int = 0
    scalar_sub: int = 0
    scalar_mul: int = 0
    scalar_neg: int = 0
    vec_add: int = 0
    vec_sub: int = 0
    vec_mul: int = 0
    vec_neg: int = 0
    rotations: int = 0
    vec_constructors: int = 0

    @property
    def scalar_ops(self) -> int:
        """Total number of scalar arithmetic operations."""
        return self.scalar_add + self.scalar_sub + self.scalar_mul + self.scalar_neg

    @property
    def vector_ops(self) -> int:
        """Total number of element-wise vector operations (excluding rotations)."""
        return self.vec_add + self.vec_sub + self.vec_mul + self.vec_neg

    @property
    def multiplications(self) -> int:
        """Total scalar plus vector multiplications."""
        return self.scalar_mul + self.vec_mul

    @property
    def total(self) -> int:
        """All counted operations, including rotations and Vec constructors."""
        return (
            self.scalar_ops
            + self.vector_ops
            + self.rotations
            + self.vec_constructors
        )

    def as_dict(self) -> Dict[str, int]:
        """Plain dictionary view, convenient for reporting."""
        return {
            "scalar_add": self.scalar_add,
            "scalar_sub": self.scalar_sub,
            "scalar_mul": self.scalar_mul,
            "scalar_neg": self.scalar_neg,
            "vec_add": self.vec_add,
            "vec_sub": self.vec_sub,
            "vec_mul": self.vec_mul,
            "vec_neg": self.vec_neg,
            "rotations": self.rotations,
            "vec_constructors": self.vec_constructors,
        }


def iter_subexpressions(expr: Expr) -> Iterator[Tuple[Tuple[int, ...], Expr]]:
    """Yield ``(path, node)`` pairs in pre-order.

    ``path`` is the sequence of child indices leading from the root to the
    node; the root has the empty path ``()``.
    """
    stack: List[Tuple[Tuple[int, ...], Expr]] = [((), expr)]
    while stack:
        path, node = stack.pop()
        yield path, node
        for index in range(len(node.children) - 1, -1, -1):
            stack.append((path + (index,), node.children[index]))


def unique_subexpressions(expr: Expr) -> List[Expr]:
    """Return the distinct sub-expressions of ``expr`` (DAG nodes)."""
    seen: Set[Expr] = set()
    ordered: List[Expr] = []
    for _, node in iter_subexpressions(expr):
        if node not in seen:
            seen.add(node)
            ordered.append(node)
    return ordered


def expression_size(expr: Expr) -> int:
    """Number of nodes in the expression *tree* (with duplication)."""
    return sum(1 for _ in iter_subexpressions(expr))


def dag_size(expr: Expr) -> int:
    """Number of nodes in the expression *DAG* (shared sub-expressions counted once)."""
    return len(unique_subexpressions(expr))


def variables(expr: Expr) -> List[str]:
    """Names of the distinct variables of ``expr``, in first-occurrence order."""
    seen: Set[str] = set()
    ordered: List[str] = []
    for _, node in iter_subexpressions(expr):
        if isinstance(node, Var) and node.name not in seen:
            seen.add(node.name)
            ordered.append(node.name)
    return ordered


def constants(expr: Expr) -> List[int]:
    """Distinct constant values of ``expr``, in first-occurrence order."""
    seen: Set[int] = set()
    ordered: List[int] = []
    for _, node in iter_subexpressions(expr):
        if isinstance(node, Const) and node.value not in seen:
            seen.add(node.value)
            ordered.append(node.value)
    return ordered


def rotation_steps(expr: Expr) -> List[int]:
    """Distinct non-zero rotation steps appearing in ``expr``."""
    steps: Set[int] = set()
    for node in _dag_nodes(expr):
        if isinstance(node, Rotate) and node.step != 0:
            steps.add(node.step)
    return sorted(steps)


def circuit_depth(expr: Expr) -> int:
    """Length of the longest operation chain from any input to the output."""
    memo: Dict[Expr, int] = {}
    return _depth(expr, memo, multiplicative=False)


def multiplicative_depth(expr: Expr) -> int:
    """Length of the longest chain counting only multiplications."""
    memo: Dict[Expr, int] = {}
    return _depth(expr, memo, multiplicative=True)


def count_ops(expr: Expr) -> OpCounts:
    """Count operations over the dataflow DAG of ``expr``."""
    counts = OpCounts()
    for node in _dag_nodes(expr):
        op = node.op
        if op == "+":
            counts.scalar_add += 1
        elif op == "-":
            counts.scalar_sub += 1
        elif op == "*":
            counts.scalar_mul += 1
        elif op == "neg":
            counts.scalar_neg += 1
        elif op == "VecAdd":
            counts.vec_add += 1
        elif op == "VecSub":
            counts.vec_sub += 1
        elif op == "VecMul":
            counts.vec_mul += 1
        elif op == "VecNeg":
            counts.vec_neg += 1
        elif op == "<<":
            counts.rotations += 1
        elif op == "Vec":
            counts.vec_constructors += 1
    return counts


# ---------------------------------------------------------------------------
# Internal helpers
# ---------------------------------------------------------------------------
def _dag_nodes(expr: Expr) -> Iterable[Expr]:
    return unique_subexpressions(expr)


def _depth(expr: Expr, memo: Dict[Expr, int], multiplicative: bool) -> int:
    # Iterative post-order to avoid recursion limits on deep expressions.
    stack: List[Tuple[Expr, bool]] = [(expr, False)]
    while stack:
        node, expanded = stack.pop()
        if node in memo:
            continue
        if node.is_leaf():
            memo[node] = 0
            continue
        if not expanded:
            stack.append((node, True))
            for child in node.children:
                if child not in memo:
                    stack.append((child, False))
            continue
        child_depth = max(memo[child] for child in node.children)
        if multiplicative:
            contribution = 1 if node.op in _MUL_OPS else 0
        else:
            contribution = 0 if node.op in _NON_OPS else 1
        memo[node] = child_depth + contribution
    return memo[expr]
