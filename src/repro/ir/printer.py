"""Textual s-expression form of the CHEHAB IR.

The printed form round-trips through :func:`repro.ir.parser.parse` and is the
format used in the paper, e.g. ``(Vec (+ a b) (* c d))`` or ``(<< x 2)``.
"""

from __future__ import annotations

from repro.ir.nodes import (
    Add,
    Const,
    Expr,
    Mul,
    Neg,
    Rotate,
    Sub,
    Var,
    Vec,
    VecAdd,
    VecMul,
    VecNeg,
    VecSub,
)

__all__ = ["to_sexpr", "pretty"]


def to_sexpr(expr: Expr) -> str:
    """Render ``expr`` as a single-line s-expression string."""
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, (Add, Sub, Mul)):
        return f"({expr.op} {to_sexpr(expr.lhs)} {to_sexpr(expr.rhs)})"
    if isinstance(expr, Neg):
        return f"(- {to_sexpr(expr.operand)})"
    if isinstance(expr, Rotate):
        return f"(<< {to_sexpr(expr.operand)} {expr.step})"
    if isinstance(expr, Vec):
        inner = " ".join(to_sexpr(element) for element in expr.elements)
        return f"(Vec {inner})"
    if isinstance(expr, (VecAdd, VecSub, VecMul)):
        return f"({expr.op} {to_sexpr(expr.lhs)} {to_sexpr(expr.rhs)})"
    if isinstance(expr, VecNeg):
        return f"(VecNeg {to_sexpr(expr.operand)})"
    # Pattern variables and future node types fall back to a generic form.
    if expr.is_leaf():
        return f"?{getattr(expr, 'name', expr.op)}"
    inner = " ".join(to_sexpr(child) for child in expr.children)
    return f"({expr.op} {inner})"


def pretty(expr: Expr, indent: int = 2) -> str:
    """Render ``expr`` as an indented multi-line string (for debugging/docs)."""
    return _pretty(expr, 0, indent)


def _pretty(expr: Expr, level: int, indent: int) -> str:
    pad = " " * (level * indent)
    if expr.is_leaf():
        return pad + to_sexpr(expr)
    head = expr.op if not isinstance(expr, Rotate) else f"<< step={expr.step}"
    lines = [pad + f"({head}"]
    for child in expr.children:
        lines.append(_pretty(child, level + 1, indent))
    lines.append(pad + ")")
    return "\n".join(lines)
