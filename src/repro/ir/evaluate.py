"""Reference (plaintext) evaluation semantics of the CHEHAB IR.

Every expression evaluates to a vector of ``slot_count`` integers — the
batched-FHE view of the computation:

* a scalar :class:`~repro.ir.nodes.Var` holds its value in slot 0 (the other
  slots are zero); a vector-valued variable (a list/array binding) occupies
  slots ``0..len-1``;
* a :class:`~repro.ir.nodes.Const` broadcasts its value to every slot (this
  is how identity padding such as ``(Vec a c 1)`` behaves);
* scalar and vector arithmetic operators apply slot-wise;
* ``(Vec e0 e1 ...)`` places slot 0 of each element's value at slot ``i``;
* ``(<< x s)`` cyclically rotates the slot vector left by ``s``.

The *meaningful* slots of an expression are slots ``0..arity-1`` where
``arity`` is the output vector length (1 for scalar programs); rewrite rules
are required to preserve exactly those slots, which is what the
property-based rule tests check.

Evaluation can be exact (Python ints) or modular (``modulus`` given), the
latter matching the BFV plaintext space ``Z_t``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.ir.nodes import (
    Add,
    Const,
    Expr,
    Mul,
    Neg,
    Rotate,
    Sub,
    Var,
    Vec,
    VecAdd,
    VecMul,
    VecNeg,
    VecSub,
)

__all__ = ["evaluate", "output_arity", "EvaluationError"]

Value = Union[int, Sequence[int]]


class EvaluationError(ValueError):
    """Raised for unbound variables or malformed expressions."""


def output_arity(expr: Expr) -> int:
    """Number of meaningful output slots of ``expr``.

    A top-level ``Vec`` (or a vector operation over ``Vec`` constructors)
    defines the output length; any other expression is scalar (arity 1).
    """
    if isinstance(expr, Vec):
        return len(expr.elements)
    if isinstance(expr, (VecAdd, VecSub, VecMul, VecNeg, Rotate)):
        arities = [output_arity(child) for child in expr.children]
        return max(arities) if arities else 1
    return 1


def evaluate(
    expr: Expr,
    env: Mapping[str, Value],
    slot_count: int = 16,
    modulus: Optional[int] = None,
) -> List[int]:
    """Evaluate ``expr`` under ``env`` and return its full slot vector."""
    if slot_count < 1:
        raise ValueError("slot_count must be positive")
    cache: Dict[Expr, np.ndarray] = {}
    result = _eval(expr, env, slot_count, cache)
    if modulus is not None:
        result = result % modulus
    return [int(value) for value in result]


def _leaf_vector(value: Value, slot_count: int, broadcast: bool) -> np.ndarray:
    slots = np.zeros(slot_count, dtype=object)
    if isinstance(value, (list, tuple, np.ndarray)):
        values = list(value)
        if len(values) > slot_count:
            raise EvaluationError(
                f"vector value of length {len(values)} exceeds {slot_count} slots"
            )
        for index, item in enumerate(values):
            slots[index] = int(item)
        return slots
    if broadcast:
        slots[:] = int(value)
    else:
        slots[0] = int(value)
    return slots


def _eval(
    expr: Expr,
    env: Mapping[str, Value],
    slot_count: int,
    cache: Dict[Expr, np.ndarray],
) -> np.ndarray:
    cached = cache.get(expr)
    if cached is not None:
        return cached

    if isinstance(expr, Var):
        if expr.name not in env:
            raise EvaluationError(f"unbound variable {expr.name!r}")
        result = _leaf_vector(env[expr.name], slot_count, broadcast=False)
    elif isinstance(expr, Const):
        result = _leaf_vector(expr.value, slot_count, broadcast=True)
    elif isinstance(expr, (Add, VecAdd)):
        result = _eval(expr.children[0], env, slot_count, cache) + _eval(
            expr.children[1], env, slot_count, cache
        )
    elif isinstance(expr, (Sub, VecSub)):
        result = _eval(expr.children[0], env, slot_count, cache) - _eval(
            expr.children[1], env, slot_count, cache
        )
    elif isinstance(expr, (Mul, VecMul)):
        result = _eval(expr.children[0], env, slot_count, cache) * _eval(
            expr.children[1], env, slot_count, cache
        )
    elif isinstance(expr, (Neg, VecNeg)):
        result = -_eval(expr.children[0], env, slot_count, cache)
    elif isinstance(expr, Rotate):
        operand = _eval(expr.operand, env, slot_count, cache)
        result = np.roll(operand, -expr.step)
    elif isinstance(expr, Vec):
        result = np.zeros(slot_count, dtype=object)
        if len(expr.elements) > slot_count:
            raise EvaluationError(
                f"Vec of {len(expr.elements)} elements exceeds {slot_count} slots"
            )
        for index, element in enumerate(expr.elements):
            value = _eval(element, env, slot_count, cache)
            result[index] = value[0]
    else:
        raise EvaluationError(f"cannot evaluate node {type(expr).__name__}")

    cache[expr] = result
    return result
