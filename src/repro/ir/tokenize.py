"""Identifier and Constant Invariant (ICI) tokenization (paper Sec. 5.1).

ICI produces a canonical token sequence that is invariant to identifier names
and to the concrete values of constants:

* IR operators and parentheses use a small fixed vocabulary;
* the first distinct variable becomes ``v0``, the second ``v1``, ...;
* the constants ``0`` and ``1`` are kept literal (they are the additive /
  multiplicative identities many rewrite rules branch on);
* every other constant becomes ``c0``, ``c1``, ... in first-occurrence
  order, so equality between constant occurrences is preserved while the
  literal value is discarded.

The canonical string form (:func:`canonical_form`) is used for dataset
deduplication and benchmark exclusion; :class:`ICITokenizer` additionally
maps token sequences to integer ids for the neural encoder.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.ir.nodes import Const, Expr, Rotate, Var

__all__ = ["ici_tokens", "canonical_form", "Vocabulary", "ICITokenizer"]

#: Fixed operator/delimiter vocabulary shared by every program.
OPERATOR_TOKENS = (
    "(",
    ")",
    "+",
    "-",
    "*",
    "neg",
    "<<",
    "Vec",
    "VecAdd",
    "VecSub",
    "VecMul",
    "VecNeg",
    "0",
    "1",
)

#: Special tokens used by the neural encoder.
PAD_TOKEN = "[PAD]"
CLS_TOKEN = "[CLS]"
UNK_TOKEN = "[UNK]"


def ici_tokens(expr: Expr) -> List[str]:
    """Tokenize ``expr`` into its ICI canonical token sequence."""
    variable_map: Dict[str, str] = {}
    constant_map: Dict[int, str] = {}
    tokens: List[str] = []
    _emit(expr, tokens, variable_map, constant_map)
    return tokens


def canonical_form(expr: Expr) -> str:
    """Canonical string form of ``expr`` (ICI tokens joined by spaces)."""
    return " ".join(ici_tokens(expr))


def _emit(
    expr: Expr,
    tokens: List[str],
    variable_map: Dict[str, str],
    constant_map: Dict[int, str],
) -> None:
    if isinstance(expr, Var):
        token = variable_map.get(expr.name)
        if token is None:
            token = f"v{len(variable_map)}"
            variable_map[expr.name] = token
        tokens.append(token)
        return
    if isinstance(expr, Const):
        if expr.value in (0, 1):
            tokens.append(str(expr.value))
            return
        token = constant_map.get(expr.value)
        if token is None:
            token = f"c{len(constant_map)}"
            constant_map[expr.value] = token
        tokens.append(token)
        return
    tokens.append("(")
    if isinstance(expr, Rotate):
        tokens.append("<<")
        _emit(expr.operand, tokens, variable_map, constant_map)
        # The rotation step behaves like a structural constant: its literal
        # value is discarded but equal steps receive the same token.
        step = expr.step
        if step in (0, 1):
            tokens.append(str(step))
        else:
            token = constant_map.get(step)
            if token is None:
                token = f"c{len(constant_map)}"
                constant_map[step] = token
            tokens.append(token)
        tokens.append(")")
        return
    op = "-" if expr.op == "neg" else expr.op
    tokens.append(op)
    for child in expr.children:
        _emit(child, tokens, variable_map, constant_map)
    tokens.append(")")


class Vocabulary:
    """Token ↔ integer-id mapping with special tokens.

    The vocabulary is closed by construction: a fixed operator set plus a
    bounded number of ``v#``/``c#`` placeholder tokens.  Unknown tokens map
    to ``[UNK]``.
    """

    def __init__(self, max_variables: int = 64, max_constants: int = 32) -> None:
        if max_variables < 1 or max_constants < 1:
            raise ValueError("vocabulary sizes must be positive")
        self.max_variables = max_variables
        self.max_constants = max_constants
        tokens: List[str] = [PAD_TOKEN, CLS_TOKEN, UNK_TOKEN]
        tokens.extend(OPERATOR_TOKENS)
        tokens.extend(f"v{i}" for i in range(max_variables))
        tokens.extend(f"c{i}" for i in range(max_constants))
        self._token_to_id: Dict[str, int] = {tok: i for i, tok in enumerate(tokens)}
        self._id_to_token: List[str] = tokens

    def __len__(self) -> int:
        return len(self._id_to_token)

    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD_TOKEN]

    @property
    def cls_id(self) -> int:
        return self._token_to_id[CLS_TOKEN]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK_TOKEN]

    def token_id(self, token: str) -> int:
        """Id of ``token``; unknown tokens map to the ``[UNK]`` id."""
        return self._token_to_id.get(token, self.unk_id)

    def token(self, token_id: int) -> str:
        """Inverse of :meth:`token_id`."""
        return self._id_to_token[token_id]

    def encode(self, tokens: Sequence[str]) -> List[int]:
        """Map a token sequence to ids (no padding or truncation)."""
        return [self.token_id(token) for token in tokens]

    def decode(self, ids: Sequence[int]) -> List[str]:
        """Map ids back to tokens."""
        return [self.token(i) for i in ids]


class ICITokenizer:
    """Tokenizer front-end used by the RL state representation.

    ``encode`` produces a fixed-length id sequence: ``[CLS]`` followed by the
    ICI tokens of the program, padded/truncated to ``max_length``.
    """

    def __init__(
        self,
        vocabulary: Optional[Vocabulary] = None,
        max_length: int = 256,
    ) -> None:
        if max_length < 2:
            raise ValueError("max_length must be at least 2 (CLS plus one token)")
        self.vocabulary = vocabulary if vocabulary is not None else Vocabulary()
        self.max_length = max_length

    @property
    def vocab_size(self) -> int:
        return len(self.vocabulary)

    def tokenize(self, expr: Expr) -> List[str]:
        """ICI token strings of ``expr`` (without special tokens)."""
        return ici_tokens(expr)

    def encode(self, expr: Expr) -> List[int]:
        """Fixed-length id sequence ``[CLS] tokens... [PAD]...``."""
        ids = [self.vocabulary.cls_id]
        ids.extend(self.vocabulary.encode(ici_tokens(expr)))
        if len(ids) > self.max_length:
            ids = ids[: self.max_length]
        else:
            ids.extend([self.vocabulary.pad_id] * (self.max_length - len(ids)))
        return ids

    def attention_mask(self, ids: Sequence[int]) -> List[int]:
        """1 for real tokens, 0 for padding."""
        pad = self.vocabulary.pad_id
        return [0 if token_id == pad else 1 for token_id in ids]
