"""Parser for the textual (s-expression) form of the CHEHAB IR.

The grammar is the one used by the paper's LLM-synthesis prompt and by our
dataset files:

.. code-block:: text

    expr     := atom | "(" op expr+ ")"
    op       := "+" | "-" | "*" | "<<" | ">>" | "Vec"
              | "VecAdd" | "VecSub" | "VecMul" | "VecNeg"
    atom     := integer | identifier

``(- x)`` parses to a :class:`~repro.ir.nodes.Neg`, ``(- x y)`` to a
:class:`~repro.ir.nodes.Sub`.  ``(>> x k)`` is normalised to a left rotation
with a negative step.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.ir.nodes import (
    Add,
    Const,
    Expr,
    Mul,
    Neg,
    Rotate,
    Sub,
    Var,
    Vec,
    VecAdd,
    VecMul,
    VecNeg,
    VecSub,
)

__all__ = ["parse", "parse_many", "ParseError"]

_TOKEN_RE = re.compile(r"\(|\)|[^\s()]+")
_INT_RE = re.compile(r"^-?\d+$")


class ParseError(ValueError):
    """Raised when the input text is not a well-formed IR expression."""


def parse(text: str) -> Expr:
    """Parse a single expression from ``text``.

    Raises :class:`ParseError` on syntax errors or trailing content.
    """
    tokens = _TOKEN_RE.findall(text)
    if not tokens:
        raise ParseError("empty input")
    expr, position = _parse_expr(tokens, 0)
    if position != len(tokens):
        raise ParseError(
            f"unexpected trailing tokens starting at {tokens[position]!r}"
        )
    return expr


def parse_many(text: str) -> List[Expr]:
    """Parse every expression in ``text`` (one or more, whitespace separated)."""
    tokens = _TOKEN_RE.findall(text)
    expressions: List[Expr] = []
    position = 0
    while position < len(tokens):
        expr, position = _parse_expr(tokens, position)
        expressions.append(expr)
    if not expressions:
        raise ParseError("empty input")
    return expressions


def _parse_expr(tokens: List[str], position: int) -> Tuple[Expr, int]:
    if position >= len(tokens):
        raise ParseError("unexpected end of input")
    token = tokens[position]
    if token == ")":
        raise ParseError("unexpected ')'")
    if token != "(":
        return _parse_atom(token), position + 1

    position += 1
    if position >= len(tokens):
        raise ParseError("unexpected end of input after '('")
    op = tokens[position]
    position += 1

    operands: List[Expr] = []
    raw_operands: List[str] = []
    while position < len(tokens) and tokens[position] != ")":
        raw_operands.append(tokens[position])
        operand, position = _parse_expr(tokens, position)
        operands.append(operand)
    if position >= len(tokens):
        raise ParseError("missing closing ')'")
    position += 1  # consume ')'

    return _build(op, operands, raw_operands), position


def _parse_atom(token: str) -> Expr:
    if _INT_RE.match(token):
        return Const(int(token))
    return Var(token)


def _build(op: str, operands: List[Expr], raw_operands: List[str]) -> Expr:
    if op == "+":
        return _fold_left(Add, op, operands)
    if op == "*":
        return _fold_left(Mul, op, operands)
    if op == "-":
        if len(operands) == 1:
            return Neg(operands[0])
        if len(operands) == 2:
            return Sub(operands[0], operands[1])
        raise ParseError(f"'-' takes one or two operands, got {len(operands)}")
    if op in ("<<", ">>"):
        if len(operands) != 2 or not isinstance(operands[1], Const):
            raise ParseError(f"'{op}' expects (expr, integer-step)")
        step = operands[1].value
        if op == ">>":
            step = -step
        return Rotate(operands[0], step)
    if op == "Vec":
        if not operands:
            raise ParseError("Vec requires at least one element")
        return Vec(*operands)
    if op == "VecAdd":
        return _fold_left(VecAdd, op, operands)
    if op == "VecSub":
        return _binary(VecSub, op, operands)
    if op == "VecMul":
        return _fold_left(VecMul, op, operands)
    if op == "VecNeg":
        if len(operands) != 1:
            raise ParseError("VecNeg takes exactly one operand")
        return VecNeg(operands[0])
    raise ParseError(f"unknown operator {op!r}")


def _binary(cls, op: str, operands: List[Expr]) -> Expr:
    if len(operands) != 2:
        raise ParseError(f"'{op}' takes exactly two operands, got {len(operands)}")
    return cls(operands[0], operands[1])


def _fold_left(cls, op: str, operands: List[Expr]) -> Expr:
    """Allow n-ary ``(+ a b c)`` by left-folding into binary nodes."""
    if len(operands) < 2:
        raise ParseError(f"'{op}' takes at least two operands, got {len(operands)}")
    result = operands[0]
    for operand in operands[1:]:
        result = cls(result, operand)
    return result
