"""Dataflow-DAG view of IR expressions.

FHE literature commonly represents a program as a circuit: a DAG whose nodes
are homomorphic operations and whose leaves are inputs.  This module converts
the expression tree into an explicit DAG by hash-consing structurally equal
sub-expressions, which is the representation used for:

* common-subexpression elimination in the compiler,
* per-node depth annotations,
* topological scheduling during lowering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.ir.nodes import Expr

__all__ = ["DagNode", "Dag", "build_dag"]


@dataclass
class DagNode:
    """A node of the hash-consed circuit DAG."""

    #: Stable integer identifier (topological order: operands precede users).
    node_id: int
    #: The expression this node computes.
    expr: Expr
    #: Identifiers of the operand nodes.
    operands: Tuple[int, ...]
    #: Number of DAG nodes that consume this node's value.
    use_count: int = 0
    #: Circuit depth of this node (operations on the longest input path).
    depth: int = 0
    #: Multiplicative depth of this node.
    mult_depth: int = 0


@dataclass
class Dag:
    """A hash-consed circuit DAG for a single output expression."""

    nodes: List[DagNode] = field(default_factory=list)
    #: Maps each distinct expression to its node id.
    index: Dict[Expr, int] = field(default_factory=dict)
    #: Node id of the output expression.
    output: int = -1

    def node_for(self, expr: Expr) -> DagNode:
        """Return the DAG node computing ``expr``."""
        return self.nodes[self.index[expr]]

    def __len__(self) -> int:
        return len(self.nodes)

    def topological(self) -> List[DagNode]:
        """Nodes in a valid evaluation order (operands before users)."""
        return list(self.nodes)

    @property
    def depth(self) -> int:
        """Circuit depth of the output."""
        return self.nodes[self.output].depth if self.nodes else 0

    @property
    def mult_depth(self) -> int:
        """Multiplicative depth of the output."""
        return self.nodes[self.output].mult_depth if self.nodes else 0


def build_dag(expr: Expr) -> Dag:
    """Build the hash-consed DAG of ``expr``.

    Structurally identical sub-expressions are represented by a single node,
    mirroring the effect of common-subexpression elimination.
    """
    dag = Dag()
    _intern(expr, dag)
    dag.output = dag.index[expr]
    return dag


_MUL_OPS = frozenset({"*", "VecMul"})
_NON_OPS = frozenset({"var", "const", "Vec"})


def _intern(expr: Expr, dag: Dag) -> int:
    # Iterative post-order interning so deep trees do not hit recursion limits.
    stack: List[Tuple[Expr, bool]] = [(expr, False)]
    while stack:
        node, expanded = stack.pop()
        if node in dag.index:
            continue
        if not expanded and node.children:
            stack.append((node, True))
            for child in node.children:
                if child not in dag.index:
                    stack.append((child, False))
            continue
        operand_ids = tuple(dag.index[child] for child in node.children)
        if node.is_leaf():
            depth = 0
            mult_depth = 0
        else:
            depth = max(dag.nodes[i].depth for i in operand_ids)
            mult_depth = max(dag.nodes[i].mult_depth for i in operand_ids)
            if node.op not in _NON_OPS:
                depth += 1
            if node.op in _MUL_OPS:
                mult_depth += 1
        dag_node = DagNode(
            node_id=len(dag.nodes),
            expr=node,
            operands=operand_ids,
            depth=depth,
            mult_depth=mult_depth,
        )
        dag.nodes.append(dag_node)
        dag.index[node] = dag_node.node_id
        for operand_id in operand_ids:
            dag.nodes[operand_id].use_count += 1
    return dag.index[expr]
