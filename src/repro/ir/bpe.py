"""Byte-Pair Encoding (BPE) tokenizer baseline for the tokenization ablation.

The paper compares ICI tokenization against a standard BPE tokenizer trained
on a corpus of randomly generated IR expressions (Sec. 7.6, Fig. 10).  This
module implements a compact, dependency-free BPE:

* training learns merge rules over the character sequences of whitespace
  separated "words" of the textual IR;
* encoding applies the learned merges greedily and maps the resulting
  subwords to integer ids.

The point of the ablation is the *overhead* of subword tokenization and its
larger, learned vocabulary compared with ICI's single linear scan — both of
which this implementation reproduces faithfully.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.ir.nodes import Expr
from repro.ir.printer import to_sexpr

__all__ = ["BPETokenizer"]

_END_OF_WORD = "</w>"
PAD_TOKEN = "[PAD]"
CLS_TOKEN = "[CLS]"
UNK_TOKEN = "[UNK]"


class BPETokenizer:
    """A minimal byte-pair-encoding tokenizer over textual IR programs."""

    def __init__(self, vocab_size: int = 512, max_length: int = 256) -> None:
        if vocab_size < 16:
            raise ValueError("vocab_size must be at least 16")
        if max_length < 2:
            raise ValueError("max_length must be at least 2")
        self.vocab_size = vocab_size
        self.max_length = max_length
        self.merges: List[Tuple[str, str]] = []
        self._merge_ranks: Dict[Tuple[str, str], int] = {}
        self._token_to_id: Dict[str, int] = {}
        self._id_to_token: List[str] = []
        self._trained = False

    # -- training ----------------------------------------------------------
    def train(self, corpus: Iterable[Expr], max_merges: Optional[int] = None) -> None:
        """Learn merge rules from an iterable of IR expressions."""
        word_counts: Counter = Counter()
        for expr in corpus:
            for word in _words(expr):
                word_counts[word] += 1
        if not word_counts:
            raise ValueError("cannot train BPE on an empty corpus")

        # Represent each word as a tuple of symbols, starting from characters.
        symbol_words: Dict[Tuple[str, ...], int] = {}
        alphabet = set()
        for word, count in word_counts.items():
            symbols = tuple(list(word) + [_END_OF_WORD])
            symbol_words[symbols] = symbol_words.get(symbols, 0) + count
            alphabet.update(symbols)

        base_tokens = [PAD_TOKEN, CLS_TOKEN, UNK_TOKEN] + sorted(alphabet)
        budget = self.vocab_size - len(base_tokens)
        if max_merges is not None:
            budget = min(budget, max_merges)

        merges: List[Tuple[str, str]] = []
        for _ in range(max(0, budget)):
            pair_counts = _count_pairs(symbol_words)
            if not pair_counts:
                break
            best_pair, best_count = max(
                pair_counts.items(), key=lambda item: (item[1], item[0])
            )
            if best_count < 2:
                break
            merges.append(best_pair)
            symbol_words = _apply_merge(symbol_words, best_pair)

        self.merges = merges
        self._merge_ranks = {pair: rank for rank, pair in enumerate(merges)}
        tokens = list(base_tokens)
        tokens.extend("".join(pair) for pair in merges)
        self._token_to_id = {token: i for i, token in enumerate(tokens)}
        self._id_to_token = tokens
        self._trained = True

    # -- inference ---------------------------------------------------------
    def tokenize(self, expr: Expr) -> List[str]:
        """Subword tokens of ``expr`` (without special tokens)."""
        self._require_trained()
        tokens: List[str] = []
        for word in _words(expr):
            tokens.extend(self._encode_word(word))
        return tokens

    def encode(self, expr: Expr) -> List[int]:
        """Fixed-length id sequence ``[CLS] subwords... [PAD]...``."""
        self._require_trained()
        ids = [self._token_to_id[CLS_TOKEN]]
        unk = self._token_to_id[UNK_TOKEN]
        for token in self.tokenize(expr):
            ids.append(self._token_to_id.get(token, unk))
        if len(ids) > self.max_length:
            ids = ids[: self.max_length]
        else:
            ids.extend([self._token_to_id[PAD_TOKEN]] * (self.max_length - len(ids)))
        return ids

    def token_id(self, token: str) -> int:
        self._require_trained()
        return self._token_to_id.get(token, self._token_to_id[UNK_TOKEN])

    def __len__(self) -> int:
        return len(self._id_to_token)

    @property
    def pad_id(self) -> int:
        self._require_trained()
        return self._token_to_id[PAD_TOKEN]

    @property
    def cls_id(self) -> int:
        self._require_trained()
        return self._token_to_id[CLS_TOKEN]

    # -- internals ---------------------------------------------------------
    def _require_trained(self) -> None:
        if not self._trained:
            raise RuntimeError("BPETokenizer must be trained before use")

    def _encode_word(self, word: str) -> List[str]:
        symbols: List[str] = list(word) + [_END_OF_WORD]
        while len(symbols) > 1:
            best_rank = None
            best_index = -1
            for index in range(len(symbols) - 1):
                rank = self._merge_ranks.get((symbols[index], symbols[index + 1]))
                if rank is not None and (best_rank is None or rank < best_rank):
                    best_rank = rank
                    best_index = index
            if best_rank is None:
                break
            symbols[best_index : best_index + 2] = [
                symbols[best_index] + symbols[best_index + 1]
            ]
        return symbols


def _words(expr: Expr) -> List[str]:
    text = to_sexpr(expr).replace("(", " ( ").replace(")", " ) ")
    return [word for word in text.split() if word]


def _count_pairs(symbol_words: Dict[Tuple[str, ...], int]) -> Counter:
    pair_counts: Counter = Counter()
    for symbols, count in symbol_words.items():
        for index in range(len(symbols) - 1):
            pair_counts[(symbols[index], symbols[index + 1])] += count
    return pair_counts


def _apply_merge(
    symbol_words: Dict[Tuple[str, ...], int], pair: Tuple[str, str]
) -> Dict[Tuple[str, ...], int]:
    merged_token = pair[0] + pair[1]
    updated: Dict[Tuple[str, ...], int] = {}
    for symbols, count in symbol_words.items():
        new_symbols: List[str] = []
        index = 0
        while index < len(symbols):
            if (
                index < len(symbols) - 1
                and symbols[index] == pair[0]
                and symbols[index + 1] == pair[1]
            ):
                new_symbols.append(merged_token)
                index += 2
            else:
                new_symbols.append(symbols[index])
                index += 1
        key = tuple(new_symbols)
        updated[key] = updated.get(key, 0) + count
    return updated
