"""Benchmark kernels of the paper's evaluation (Sec. 7.2).

Three suites, each parameterized by input size:

* the **Porcupine suite** (:mod:`repro.kernels.porcupine`): Box Blur, Gx,
  Gy, Roberts Cross, Dot Product, Hamming Distance, L2 Distance, Linear
  Regression, Polynomial Regression;
* the **Coyote suite** (:mod:`repro.kernels.coyote_suite`): Matrix
  Multiplication, Max, Sort;
* the **random polynomial trees** (:mod:`repro.kernels.trees`):
  tree-50-50-d, tree-100-50-d, tree-100-100-d stress tests.

Every kernel is expressed in the embedded DSL as scalar code (FHE code is
fully unrolled), together with a plaintext reference function and an input
generator, so compiled circuits can be verified end to end.
:func:`repro.kernels.registry.benchmark_suite` returns the standard list
used by the experiment harness and Table 6.
"""

from repro.kernels.registry import (
    Benchmark,
    benchmark_by_name,
    benchmark_suite,
    small_benchmark_suite,
)

__all__ = [
    "Benchmark",
    "benchmark_suite",
    "small_benchmark_suite",
    "benchmark_by_name",
]
