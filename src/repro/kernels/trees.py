"""Randomly generated irregular polynomial trees (the Coyote stress test).

Three regimes, following Appendix H.3:

* ``tree-100-100-d`` -- dense, homogeneous: a full, complete tree of depth
  ``d`` whose operations are all multiplications (best case for
  vectorization);
* ``tree-100-50-d`` -- dense, non-homogeneous: full and complete, each
  internal node is an addition or a multiplication with probability 0.5;
* ``tree-50-50-d`` -- sparse: many internal nodes have one leaf child and the
  tree is unbalanced (worst case for vectorization).

The generator is deterministic for a given ``(regime, depth, seed)`` so the
benchmark suite is reproducible.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.compiler.dsl import Program
from repro.ir.nodes import Add, Expr, Mul, Var

__all__ = ["polynomial_tree", "tree_program"]


def polynomial_tree(
    fullness: int, homogeneity: int, depth: int, seed: Optional[int] = 0
) -> Expr:
    """Generate a ``tree-<fullness>-<homogeneity>-<depth>`` expression.

    ``fullness`` ∈ {50, 100}: probability (%) that an internal node expands
    both children to full depth; ``homogeneity`` ∈ {50, 100}: probability (%)
    that an operation is a multiplication (100 = all multiplications).
    """
    if depth < 1:
        raise ValueError("depth must be at least 1")
    rng = np.random.default_rng(seed)
    counter = [0]

    def leaf() -> Expr:
        counter[0] += 1
        return Var(f"x{counter[0] - 1}")

    def grow(remaining: int) -> Expr:
        if remaining <= 0:
            return leaf()
        if homogeneity >= 100:
            op = Mul
        else:
            op = Mul if rng.random() < homogeneity / 100.0 else Add
        if fullness >= 100:
            left = grow(remaining - 1)
            right = grow(remaining - 1)
        else:
            # Sparse regime: one child is frequently a bare leaf, producing an
            # unbalanced, hard-to-vectorize tree.
            left = grow(remaining - 1)
            right = leaf() if rng.random() < 0.6 else grow(remaining - 1)
        return op(left, right)

    return grow(depth)


def tree_program(fullness: int, homogeneity: int, depth: int, seed: Optional[int] = 0) -> Program:
    """Wrap a generated polynomial tree in a DSL program."""
    expr = polynomial_tree(fullness, homogeneity, depth, seed=seed)
    with Program(f"tree_{fullness}_{homogeneity}_{depth}") as program:
        program.register_output("result", expr)
        for name in sorted({node.name for node in expr.walk() if isinstance(node, Var)}):
            program.register_input(name)
    return program
