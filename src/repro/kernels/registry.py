"""Benchmark registry: the standard kernel list of the paper's evaluation.

Each :class:`Benchmark` bundles the staged DSL program, an input generator
(deterministic, seedable) and helpers to obtain the IR expression and the
plaintext reference output — everything the experiment harness and the test
suite need to compile, execute and verify a kernel end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.compiler.dsl import Program
from repro.compiler.executor import reference_output
from repro.ir.nodes import Expr
from repro.kernels import coyote_suite, porcupine, trees

__all__ = ["Benchmark", "benchmark_suite", "small_benchmark_suite", "benchmark_by_name"]


@dataclass
class Benchmark:
    """One benchmark kernel: program builder plus input generation."""

    name: str
    #: Suite label ("porcupine", "coyote" or "trees").
    suite: str
    #: Builds the staged DSL program.
    builder: Callable[[], Program]
    #: Range of the random integer inputs (inclusive upper bound).
    input_range: int = 7
    #: Inputs restricted to {0, 1} (Hamming distance).
    binary_inputs: bool = False
    _program: Optional[Program] = field(default=None, repr=False)

    # -- program / expression access ------------------------------------------------
    def program(self) -> Program:
        """The staged DSL program (built once and cached)."""
        if self._program is None:
            self._program = self.builder()
        return self._program

    def expression(self) -> Expr:
        """The kernel's IR expression (single output or Vec of outputs)."""
        return self.program().output_expr

    @property
    def input_names(self) -> List[str]:
        return list(self.program().inputs)

    # -- inputs and reference ----------------------------------------------------------
    def sample_inputs(self, seed: int = 0) -> Dict[str, int]:
        """Deterministic random integer inputs for every program input."""
        rng = np.random.default_rng(seed)
        high = 2 if self.binary_inputs else self.input_range + 1
        return {name: int(rng.integers(0, high)) for name in self.input_names}

    def reference(self, inputs: Dict[str, int]) -> List[int]:
        """Plaintext reference output for ``inputs``."""
        expr = self.expression()
        from repro.ir.evaluate import output_arity

        slots = max(64, output_arity(expr) + 8)
        return reference_output(expr, inputs, slot_count=slots)


def _porcupine_benchmarks() -> List[Benchmark]:
    benchmarks: List[Benchmark] = []
    for size in (3, 4, 5):
        benchmarks.append(
            Benchmark(f"box_blur_{size}x{size}", "porcupine", lambda s=size: porcupine.box_blur(s))
        )
    for size in (4, 8, 16, 32):
        benchmarks.append(
            Benchmark(f"dot_product_{size}", "porcupine", lambda s=size: porcupine.dot_product(s))
        )
        benchmarks.append(
            Benchmark(
                f"hamming_distance_{size}",
                "porcupine",
                lambda s=size: porcupine.hamming_distance(s),
                binary_inputs=True,
            )
        )
        benchmarks.append(
            Benchmark(f"l2_distance_{size}", "porcupine", lambda s=size: porcupine.l2_distance(s))
        )
        benchmarks.append(
            Benchmark(
                f"linear_regression_{size}",
                "porcupine",
                lambda s=size: porcupine.linear_regression(s),
            )
        )
        benchmarks.append(
            Benchmark(
                f"polynomial_regression_{size}",
                "porcupine",
                lambda s=size: porcupine.polynomial_regression(s),
                input_range=4,
            )
        )
    for size in (3, 4, 5):
        benchmarks.append(
            Benchmark(f"gx_{size}x{size}", "porcupine", lambda s=size: porcupine.gx_kernel(s))
        )
        benchmarks.append(
            Benchmark(f"gy_{size}x{size}", "porcupine", lambda s=size: porcupine.gy_kernel(s))
        )
        benchmarks.append(
            Benchmark(
                f"roberts_cross_{size}x{size}",
                "porcupine",
                lambda s=size: porcupine.roberts_cross(s),
            )
        )
    return benchmarks


def _coyote_benchmarks() -> List[Benchmark]:
    benchmarks: List[Benchmark] = []
    for size in (3, 4, 5):
        benchmarks.append(
            Benchmark(
                f"matrix_multiply_{size}x{size}",
                "coyote",
                lambda s=size: coyote_suite.matrix_multiply(s),
                input_range=4,
            )
        )
        benchmarks.append(
            Benchmark(f"max_{size}", "coyote", lambda s=size: coyote_suite.max_tree(s), input_range=4)
        )
    for size in (3, 4):
        benchmarks.append(
            Benchmark(
                f"sort_{size}", "coyote", lambda s=size: coyote_suite.sort_network(s), input_range=3
            )
        )
    return benchmarks


def _tree_benchmarks(include_deep: bool = True) -> List[Benchmark]:
    configurations = [(50, 50, 5), (100, 50, 5), (100, 100, 5)]
    if include_deep:
        configurations.extend([(50, 50, 10), (100, 50, 8), (100, 100, 8)])
    benchmarks: List[Benchmark] = []
    for fullness, homogeneity, depth in configurations:
        benchmarks.append(
            Benchmark(
                f"tree_{fullness}_{homogeneity}_{depth}",
                "trees",
                lambda f=fullness, h=homogeneity, d=depth: trees.tree_program(f, h, d),
                input_range=2,
            )
        )
    return benchmarks


def benchmark_suite(include_deep_trees: bool = True) -> List[Benchmark]:
    """The full benchmark suite (Porcupine + Coyote + polynomial trees)."""
    suite: List[Benchmark] = []
    suite.extend(_porcupine_benchmarks())
    suite.extend(_coyote_benchmarks())
    suite.extend(_tree_benchmarks(include_deep=include_deep_trees))
    return suite


def small_benchmark_suite() -> List[Benchmark]:
    """A fast subset (small sizes) used by tests and quick experiment runs."""
    names = {
        "box_blur_3x3",
        "dot_product_4",
        "dot_product_8",
        "hamming_distance_4",
        "l2_distance_4",
        "linear_regression_4",
        "polynomial_regression_4",
        "gx_3x3",
        "gy_3x3",
        "roberts_cross_3x3",
        "matrix_multiply_3x3",
        "max_3",
        "sort_3",
        "tree_50_50_5",
        "tree_100_100_5",
    }
    return [benchmark for benchmark in benchmark_suite() if benchmark.name in names]


def benchmark_by_name(name: str) -> Benchmark:
    """Look up a benchmark by its name."""
    for benchmark in benchmark_suite():
        if benchmark.name == name:
            return benchmark
    raise KeyError(f"unknown benchmark {name!r}")
