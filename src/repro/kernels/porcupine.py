"""The Porcupine benchmark suite (image processing and ML building blocks).

Every kernel builds a scalar (fully unrolled) DSL program, mirroring how the
paper's benchmarks are written: the compiler is responsible for discovering
the vectorization.  Each builder returns a :class:`repro.compiler.dsl.Program`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.compiler.dsl import Ciphertext, Program, vector_input

__all__ = [
    "dot_product",
    "hamming_distance",
    "l2_distance",
    "linear_regression",
    "polynomial_regression",
    "box_blur",
    "gx_kernel",
    "gy_kernel",
    "roberts_cross",
]


def _accumulate(terms: List[Ciphertext]) -> Ciphertext:
    result = terms[0]
    for term in terms[1:]:
        result = result + term
    return result


def dot_product(size: int) -> Program:
    """Dot product of two ``size``-element encrypted vectors."""
    with Program(f"dot_product_{size}") as program:
        a = vector_input("a", size)
        b = vector_input("b", size)
        _accumulate([a[i] * b[i] for i in range(size)]).set_output("result")
    return program


def hamming_distance(size: int) -> Program:
    """Hamming distance between two encrypted bit-vectors.

    For bits ``a, b`` the XOR is ``a + b - 2ab``; the distance is the sum of
    the per-position XORs.
    """
    with Program(f"hamming_distance_{size}") as program:
        a = vector_input("a", size)
        b = vector_input("b", size)
        xors = [(a[i] + b[i]) - (a[i] * b[i]) * 2 for i in range(size)]
        _accumulate(xors).set_output("result")
    return program


def l2_distance(size: int) -> Program:
    """Squared L2 distance between two encrypted vectors."""
    with Program(f"l2_distance_{size}") as program:
        a = vector_input("a", size)
        b = vector_input("b", size)
        squares = [(a[i] - b[i]) * (a[i] - b[i]) for i in range(size)]
        _accumulate(squares).set_output("result")
    return program


def linear_regression(size: int) -> Program:
    """Linear-regression inference: ``w · x + b`` over encrypted features."""
    with Program(f"linear_regression_{size}") as program:
        w = vector_input("w", size)
        x = vector_input("x", size)
        bias = Ciphertext("bias")
        (_accumulate([w[i] * x[i] for i in range(size)]) + bias).set_output("result")
    return program


def polynomial_regression(size: int) -> Program:
    """Degree-2 polynomial regression: ``sum_i (a_i x_i^2 + b_i x_i) + c``."""
    with Program(f"polynomial_regression_{size}") as program:
        a = vector_input("a", size)
        b = vector_input("b", size)
        x = vector_input("x", size)
        c = Ciphertext("c")
        terms = [a[i] * (x[i] * x[i]) + b[i] * x[i] for i in range(size)]
        (_accumulate(terms) + c).set_output("result")
    return program


def box_blur(rows: int, cols: int | None = None) -> Program:
    """3x3 box blur over a ``rows × cols`` encrypted image (valid region)."""
    cols = cols if cols is not None else rows
    with Program(f"box_blur_{rows}x{cols}") as program:
        pixels = [[Ciphertext(f"img_{r}_{c}") for c in range(cols)] for r in range(rows)]
        for r in range(rows - 2):
            for c in range(cols - 2):
                window = [
                    pixels[r + dr][c + dc] for dr in range(3) for dc in range(3)
                ]
                _accumulate(window).set_output(f"out_{r}_{c}")
    return program


_GX = ((-1, 0, 1), (-2, 0, 2), (-1, 0, 1))
_GY = ((-1, -2, -1), (0, 0, 0), (1, 2, 1))


def _convolve(name: str, rows: int, cols: int, weights) -> Program:
    with Program(name) as program:
        pixels = [[Ciphertext(f"img_{r}_{c}") for c in range(cols)] for r in range(rows)]
        for r in range(rows - 2):
            for c in range(cols - 2):
                terms: List[Ciphertext] = []
                for dr in range(3):
                    for dc in range(3):
                        weight = weights[dr][dc]
                        if weight == 0:
                            continue
                        terms.append(pixels[r + dr][c + dc] * weight)
                _accumulate(terms).set_output(f"out_{r}_{c}")
    return program


def gx_kernel(rows: int, cols: int | None = None) -> Program:
    """Horizontal Sobel gradient (Gx) over an encrypted image."""
    cols = cols if cols is not None else rows
    return _convolve(f"gx_{rows}x{cols}", rows, cols, _GX)


def gy_kernel(rows: int, cols: int | None = None) -> Program:
    """Vertical Sobel gradient (Gy) over an encrypted image."""
    cols = cols if cols is not None else rows
    return _convolve(f"gy_{rows}x{cols}", rows, cols, _GY)


def roberts_cross(rows: int, cols: int | None = None) -> Program:
    """Roberts-cross edge detector (squared response, FHE-friendly)."""
    cols = cols if cols is not None else rows
    with Program(f"roberts_cross_{rows}x{cols}") as program:
        pixels = [[Ciphertext(f"img_{r}_{c}") for c in range(cols)] for r in range(rows)]
        for r in range(rows - 1):
            for c in range(cols - 1):
                diag1 = pixels[r][c] - pixels[r + 1][c + 1]
                diag2 = pixels[r][c + 1] - pixels[r + 1][c]
                (diag1 * diag1 + diag2 * diag2).set_output(f"out_{r}_{c}")
    return program
