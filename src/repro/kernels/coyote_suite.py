"""The Coyote benchmark suite: matrix multiplication, Max and Sort.

Matrix multiplication is the standard unrolled triple loop.  The paper's
``Max`` and ``Sort`` kernels are unstructured *comparison trees*; true
encrypted comparison requires a bit-level circuit that BFV does not expose
as a primitive, so — as documented in DESIGN.md — the reproduction uses an
arithmetic *surrogate combiner* with the same dataflow shape: a balanced
tournament (Max) and a pairwise compare-and-combine network (Sort) whose
multiplicative depth grows with the input size exactly as in the paper's
Table 6 (Max 3/4/5 → multiplicative depth 2/3/4, Sort 3/4 → 3/6).  The
kernels therefore stress the compilers with the same unstructured,
depth-heavy circuits the originals do, while remaining verifiable against a
plaintext reference of the same arithmetic.
"""

from __future__ import annotations

from typing import List

from repro.compiler.dsl import Ciphertext, Program, vector_input

__all__ = ["matrix_multiply", "max_tree", "sort_network"]


def matrix_multiply(size: int) -> Program:
    """``size × size`` matrix multiplication over encrypted elements."""
    with Program(f"matrix_multiply_{size}x{size}") as program:
        a = [[Ciphertext(f"a_{r}_{c}") for c in range(size)] for r in range(size)]
        b = [[Ciphertext(f"b_{r}_{c}") for c in range(size)] for r in range(size)]
        for r in range(size):
            for c in range(size):
                acc = a[r][0] * b[0][c]
                for k in range(1, size):
                    acc = acc + a[r][k] * b[k][c]
                acc.set_output(f"out_{r}_{c}")
    return program


def _combine(a: Ciphertext, b: Ciphertext) -> Ciphertext:
    """Arithmetic surrogate for an encrypted compare-and-select.

    One ciphertext multiplication per combiner, so a tournament over ``n``
    values has multiplicative depth ``ceil(log2 n)`` — the same depth profile
    as the paper's comparison-based Max tree.
    """
    difference = a - b
    return a + b + difference * difference


def max_tree(size: int) -> Program:
    """Tournament-style maximum surrogate over ``size`` encrypted values."""
    if size < 2:
        raise ValueError("max_tree requires at least two elements")
    with Program(f"max_{size}") as program:
        values: List[Ciphertext] = vector_input("v", size)
        level = values
        while len(level) > 1:
            next_level: List[Ciphertext] = []
            for index in range(0, len(level) - 1, 2):
                next_level.append(_combine(level[index], level[index + 1]))
            if len(level) % 2 == 1:
                next_level.append(level[-1])
            level = next_level
        level[0].set_output("result")
    return program


def sort_network(size: int) -> Program:
    """Odd-even transposition network surrogate over ``size`` encrypted values.

    Each compare-and-swap is replaced by the arithmetic pair
    ``(lo, hi) = (a*b, a + b + a*b)``; the network shape (and therefore the
    operation mix and multiplicative depth the compilers must handle) matches
    the paper's tree-based Sort kernel.
    """
    if size < 2:
        raise ValueError("sort_network requires at least two elements")
    with Program(f"sort_{size}") as program:
        values: List[Ciphertext] = vector_input("v", size)
        current = list(values)
        for round_index in range(size):
            offset = round_index % 2
            for index in range(offset, size - 1, 2):
                a, b = current[index], current[index + 1]
                product = a * b
                current[index] = product
                current[index + 1] = (a + b) + product
        for index, value in enumerate(current):
            value.set_output(f"out_{index}")
    return program
