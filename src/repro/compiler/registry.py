"""Compiler registry: named factories, serializable specs, fingerprints.

The registry is the stable naming layer of the compilation API: every
compiler in the comparison is registered under a short name
(``initial``, ``coyote``, ``greedy``, ``beam``, ``chehab-rl``) together with
an optional *options normalizer* that folds user overrides into the
compiler's full options dataclass.  A frozen, picklable
:class:`CompilerSpec` names one configuration; it can

* :meth:`~CompilerSpec.build` the compiler object, and
* render a canonical, version-stamped :meth:`~CompilerSpec.describe` string
  that is byte-stable across processes — the
  :class:`~repro.service.service.CompilationService` and
  :class:`~repro.service.cache.CompilationCache` key on it, which is what
  gives every registered compiler (Coyote included) stable in-memory *and*
  on-disk cache keys.

The module also owns :func:`compiler_fingerprint`, the canonical
field-by-field rendering of a live compiler object's configuration
(historically in :mod:`repro.service.cache`, which still re-exports it).
"""

from __future__ import annotations

import dataclasses
import itertools
import weakref
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "CompilerInfo",
    "CompilerSpec",
    "register_compiler",
    "available_compilers",
    "compiler_info",
    "build_compiler",
    "resolve_compiler",
    "render_value",
    "is_canonical",
    "compiler_fingerprint",
]


# ---------------------------------------------------------------------------
# canonical value rendering
# ---------------------------------------------------------------------------
def render_value(value: object) -> str:
    """Canonical, deterministic textual rendering of a configuration value."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = sorted(
            (f.name, render_value(getattr(value, f.name))) for f in dataclasses.fields(value)
        )
        inner = ",".join(f"{name}={rendered}" for name, rendered in fields)
        return f"{type(value).__name__}({inner})"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(render_value(item) for item in value) + "]"
    if isinstance(value, dict):
        inner = ",".join(f"{k}={render_value(v)}" for k, v in sorted(value.items()))
        return "{" + inner + "}"
    if isinstance(value, float):
        return repr(value)
    return repr(value)


#: Types whose repr() is deterministic across processes.
_CANONICAL_TYPES = (type(None), bool, int, float, str, bytes)


def is_canonical(value: object) -> bool:
    """True when :func:`render_value` is byte-stable across processes.

    Live objects (e.g. a trained RL agent passed as a factory option) render
    as ``repr()`` with a memory address — valid only within one process, so
    anything containing one must never be used as a persistent cache key.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return all(is_canonical(getattr(value, f.name)) for f in dataclasses.fields(value))
    if isinstance(value, (list, tuple, set, frozenset)):
        return all(is_canonical(item) for item in value)
    if isinstance(value, dict):
        return all(is_canonical(k) and is_canonical(v) for k, v in value.items())
    return isinstance(value, _CANONICAL_TYPES)


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CompilerInfo:
    """One registry entry."""

    name: str
    #: Builds the compiler object from keyword options.
    factory: Callable[..., object]
    #: Folds keyword options into the compiler's full options value (with
    #: every default made explicit) for canonical rendering; None renders the
    #: given options as-is.
    normalize: Optional[Callable[..., object]] = None
    description: str = ""
    #: The paper configuration this name corresponds to (Table 6 column,
    #: figure series label, ...).
    paper_config: str = ""


_REGISTRY: Dict[str, CompilerInfo] = {}
_builtins_loaded = False


def register_compiler(
    name: str,
    *,
    normalize: Optional[Callable[..., object]] = None,
    description: str = "",
    paper_config: str = "",
) -> Callable:
    """Decorator registering a compiler factory under ``name``."""

    def decorator(factory: Callable[..., object]) -> Callable[..., object]:
        if name in _REGISTRY:
            raise ValueError(f"compiler {name!r} is already registered")
        doc = description or (factory.__doc__ or "").strip().splitlines()[0:1]
        _REGISTRY[name] = CompilerInfo(
            name=name,
            factory=factory,
            normalize=normalize,
            description=description or ("".join(doc) if doc else ""),
            paper_config=paper_config,
        )
        return factory

    return decorator


def _ensure_builtins() -> None:
    """Import the modules that register the built-in compilers."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    import repro.baselines  # noqa: F401  (registers initial/coyote/greedy)
    import repro.compiler.builtin_compilers  # noqa: F401  (beam, chehab-rl)


def available_compilers() -> List[str]:
    """Sorted names of every registered compiler."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def compiler_info(name: str) -> CompilerInfo:
    """The registry entry for ``name``."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown compiler {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None


def build_compiler(name: str, **options: object) -> object:
    """Build a fresh compiler instance for ``name`` with ``options``."""
    return CompilerSpec.create(name, **options).build()


# ---------------------------------------------------------------------------
# specs
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CompilerSpec:
    """A named, serializable compiler configuration.

    ``options`` is stored as a sorted tuple of ``(key, value)`` pairs so the
    spec is hashable and picklable; use :meth:`create` (or
    :func:`resolve_compiler`) rather than building the tuple by hand.
    """

    name: str
    options: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def create(cls, name: str, **options: object) -> "CompilerSpec":
        return cls(name=name, options=tuple(sorted(options.items())))

    @property
    def options_dict(self) -> Dict[str, object]:
        return dict(self.options)

    def build(self) -> object:
        """Construct the compiler object this spec names."""
        info = compiler_info(self.name)
        compiler = info.factory(**self.options_dict)
        # Stamp the spec on the instance so compiler_fingerprint (and the
        # cache) can recover the canonical describe() string from the object.
        try:
            compiler._compiler_spec = self  # type: ignore[attr-defined]
        except AttributeError:
            pass
        return compiler

    def _normalized_options(self) -> object:
        info = compiler_info(self.name)
        if info.normalize is not None:
            return info.normalize(**self.options_dict)
        return self.options_dict

    @property
    def stable(self) -> bool:
        """True when :meth:`describe` is byte-stable across processes.

        A spec carrying a live object option (e.g. ``agent=<trained agent>``)
        renders with a memory address; such configurations must stay out of
        the persistent cache tier.
        """
        return is_canonical(self._normalized_options())

    def describe(self) -> str:
        """Canonical, version-stamped rendering of this configuration.

        When :attr:`stable` is True the string is byte-stable across
        processes: options are normalized into the compiler's full options
        value (defaults made explicit) and rendered field-by-field, and the
        package version is stamped in so a persistent cache never serves
        circuits from an older compiler.
        """
        import repro

        normalized = self._normalized_options()
        if isinstance(normalized, dict):
            inner = ",".join(
                f"{key}={render_value(value)}" for key, value in sorted(normalized.items())
            )
            rendered = "{" + inner + "}"
        else:
            rendered = render_value(normalized)
        return f"repro-{repro.__version__}::{self.name}::{rendered}"


def resolve_compiler(compiler: object, **options: object) -> Tuple[object, Optional[CompilerSpec]]:
    """Normalize a name / spec / compiler object into ``(instance, spec)``.

    Strings become specs via the registry; specs are built; live compiler
    objects pass through (``spec`` is then whatever :meth:`CompilerSpec.build`
    stamped on them, if anything).  Extra ``options`` are only legal with a
    name.
    """
    if isinstance(compiler, str):
        spec = CompilerSpec.create(compiler, **options)
        return spec.build(), spec
    if options:
        raise ValueError("compiler options require a registry name, not an instance")
    if isinstance(compiler, CompilerSpec):
        return compiler.build(), compiler
    return compiler, getattr(compiler, "_compiler_spec", None)


# ---------------------------------------------------------------------------
# fingerprints of live compiler objects
# ---------------------------------------------------------------------------
#: Monotonic per-instance tokens for objects without a canonical rendering.
#: ``id()`` alone can be recycled after garbage collection, which would let
#: a new optimizer silently hit a dead optimizer's cache entries.
_instance_tokens = weakref.WeakKeyDictionary()
_instance_counter = itertools.count(1)


def _instance_token(obj: object) -> str:
    try:
        token = _instance_tokens.get(obj)
        if token is None:
            token = next(_instance_counter)
            _instance_tokens[obj] = token
    except TypeError:  # not weak-referenceable; id() is the best we have
        return f"{id(obj):#x}"
    return f"i{token}"


def _optimizer_fingerprint(optimizer: object) -> Tuple[str, bool]:
    """Fingerprint of the optimizer field; ``(text, stable)``."""
    if optimizer is None or isinstance(optimizer, str):
        return repr(optimizer), True
    token = getattr(optimizer, "cache_token", None)
    if callable(token):
        token = token()
    if token is not None:
        return f"{type(optimizer).__name__}:{token}", True
    # Arbitrary optimizer objects (e.g. a trained RL agent) have no canonical
    # configuration rendering: fall back to a per-instance fingerprint that
    # is valid only within this process.
    return f"{type(optimizer).__name__}@{_instance_token(optimizer)}", False


def compiler_fingerprint(compiler: object) -> Tuple[str, bool]:
    """Canonical fingerprint of a compiler's configuration.

    Returns ``(fingerprint, stable)``; ``stable`` is False when the
    fingerprint is only meaningful within the current process (such entries
    are kept out of the disk tier).

    Compilers built through a :class:`CompilerSpec` fingerprint as the spec's
    :meth:`~CompilerSpec.describe` string, so an object built from a name and
    a service keyed directly on a spec share cache entries.  Specs whose
    options contain live objects (``spec.stable`` is False) fall through to
    the object-based rendering below, which uses recycling-safe per-instance
    tokens instead of memory addresses.
    """
    from repro.compiler.pipeline import Compiler, CompilerOptions

    spec = getattr(compiler, "_compiler_spec", None)
    if isinstance(spec, CompilerSpec) and spec.stable:
        return spec.describe(), True
    # Wrappers such as GreedyChehabCompiler delegate to an inner Compiler.
    inner = getattr(compiler, "_compiler", None)
    if isinstance(inner, Compiler):
        return compiler_fingerprint(inner)
    if isinstance(compiler, Compiler):
        options = compiler.options
        opt_text, stable = _optimizer_fingerprint(options.optimizer)
        parts = [f"optimizer={opt_text}"]
        for f in dataclasses.fields(CompilerOptions):
            if f.name == "optimizer":
                continue
            parts.append(f"{f.name}={render_value(getattr(options, f.name))}")
        return f"Compiler({','.join(parts)})", stable
    options = getattr(compiler, "options", None)
    if dataclasses.is_dataclass(options) and not isinstance(options, type):
        return f"{type(compiler).__name__}({render_value(options)})", True
    return f"{type(compiler).__name__}@{id(compiler):#x}", False
