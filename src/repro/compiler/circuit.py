"""Ciphertext-level circuit representation produced by lowering.

A :class:`CircuitProgram` is a straight-line, SSA-like sequence of
:class:`Instruction` objects over virtual ciphertext registers.  It is the
unit that the executor runs on the FHE simulator, that the code generator
turns into SEAL-style C++, and whose statistics (operation counts, depth,
multiplicative depth, estimated latency) populate Table 6.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Opcode", "Instruction", "InputSlot", "CircuitStats", "CircuitProgram"]


class Opcode(enum.Enum):
    """Operation codes of the ciphertext circuit."""

    LOAD_INPUT = "load_input"          # encrypted, possibly packed, input
    LOAD_PLAIN = "load_plain"          # plaintext constant vector
    ADD = "add"                        # ct + ct
    SUB = "sub"                        # ct - ct
    MUL = "mul"                        # ct * ct (ciphertext-ciphertext)
    ADD_PLAIN = "add_plain"            # ct + pt
    SUB_PLAIN = "sub_plain"            # ct - pt
    MUL_PLAIN = "mul_plain"            # ct * pt (ciphertext-plaintext)
    NEGATE = "negate"                  # -ct
    ROTATE = "rotate"                  # cyclic slot rotation by a constant step
    OUTPUT = "output"                  # mark a register as a program output


#: Opcodes that consume noise budget / execution time (everything but loads
#: and output markers).
_COMPUTE_OPCODES = {
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.ADD_PLAIN,
    Opcode.SUB_PLAIN,
    Opcode.MUL_PLAIN,
    Opcode.NEGATE,
    Opcode.ROTATE,
}

_MULTIPLICATIVE = {Opcode.MUL}


@dataclass(frozen=True)
class InputSlot:
    """What a single slot of a packed encrypted input contains.

    Either the name of a scalar program input (``name``) or a literal
    constant (``constant``); exactly one of the two is set.
    """

    name: Optional[str] = None
    constant: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.name is None) == (self.constant is None):
            raise ValueError("an InputSlot holds either a name or a constant")


@dataclass
class Instruction:
    """One SSA instruction: ``result = opcode(operands)``."""

    result: int
    opcode: Opcode
    operands: Tuple[int, ...] = ()
    #: Rotation step (ROTATE), output name (OUTPUT) or packing layout
    #: (LOAD_INPUT) / constant values (LOAD_PLAIN), depending on the opcode.
    step: int = 0
    name: Optional[str] = None
    layout: Tuple[InputSlot, ...] = ()
    values: Tuple[int, ...] = ()

    def is_compute(self) -> bool:
        """True when the instruction is a homomorphic operation."""
        return self.opcode in _COMPUTE_OPCODES


@dataclass
class CircuitStats:
    """Static statistics of a circuit (the columns of Table 6)."""

    depth: int = 0
    mult_depth: int = 0
    ct_ct_multiplications: int = 0
    ct_pt_multiplications: int = 0
    rotations: int = 0
    additions: int = 0
    subtractions: int = 0
    negations: int = 0
    encrypted_inputs: int = 0
    plaintext_constants: int = 0
    total_operations: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "depth": self.depth,
            "mult_depth": self.mult_depth,
            "ct_ct_multiplications": self.ct_ct_multiplications,
            "ct_pt_multiplications": self.ct_pt_multiplications,
            "rotations": self.rotations,
            "additions": self.additions,
            "subtractions": self.subtractions,
            "negations": self.negations,
            "encrypted_inputs": self.encrypted_inputs,
            "plaintext_constants": self.plaintext_constants,
            "total_operations": self.total_operations,
        }


@dataclass
class CircuitProgram:
    """A straight-line ciphertext program.

    Attributes
    ----------
    name:
        Human-readable program name (benchmark kernel name).
    instructions:
        The SSA instruction sequence; ``result`` ids are dense and increase.
    outputs:
        ``(register, output_name, length)`` triples; ``length`` is the number
        of meaningful output slots.
    scalar_inputs:
        Names of the scalar program inputs (before client-side packing).
    rotation_steps:
        The distinct rotation steps used (for rotation-key selection).
    """

    name: str = "circuit"
    instructions: List[Instruction] = field(default_factory=list)
    outputs: List[Tuple[int, str, int]] = field(default_factory=list)
    scalar_inputs: List[str] = field(default_factory=list)

    # -- construction helpers ----------------------------------------------------
    def _new_register(self) -> int:
        return len(self.instructions)

    def emit(
        self,
        opcode: Opcode,
        operands: Sequence[int] = (),
        *,
        step: int = 0,
        name: Optional[str] = None,
        layout: Sequence[InputSlot] = (),
        values: Sequence[int] = (),
    ) -> int:
        """Append an instruction and return its result register."""
        register = self._new_register()
        self.instructions.append(
            Instruction(
                result=register,
                opcode=opcode,
                operands=tuple(operands),
                step=step,
                name=name,
                layout=tuple(layout),
                values=tuple(values),
            )
        )
        return register

    def mark_output(self, register: int, name: str, length: int) -> None:
        """Declare ``register`` as output ``name`` with ``length`` slots."""
        self.outputs.append((register, name, length))

    # -- queries -------------------------------------------------------------------
    @property
    def rotation_steps(self) -> List[int]:
        steps = sorted(
            {
                instruction.step
                for instruction in self.instructions
                if instruction.opcode is Opcode.ROTATE and instruction.step != 0
            }
        )
        return steps

    def __len__(self) -> int:
        return len(self.instructions)

    def stats(self) -> CircuitStats:
        """Compute the static operation/depth statistics of the circuit."""
        stats = CircuitStats()
        depth: Dict[int, int] = {}
        mult_depth: Dict[int, int] = {}
        for instruction in self.instructions:
            operand_depth = max(
                (depth.get(op, 0) for op in instruction.operands), default=0
            )
            operand_mult = max(
                (mult_depth.get(op, 0) for op in instruction.operands), default=0
            )
            opcode = instruction.opcode
            if opcode is Opcode.LOAD_INPUT:
                stats.encrypted_inputs += 1
            elif opcode is Opcode.LOAD_PLAIN:
                stats.plaintext_constants += 1
            elif opcode is Opcode.ADD or opcode is Opcode.ADD_PLAIN:
                stats.additions += 1
            elif opcode is Opcode.SUB or opcode is Opcode.SUB_PLAIN:
                stats.subtractions += 1
            elif opcode is Opcode.MUL:
                stats.ct_ct_multiplications += 1
            elif opcode is Opcode.MUL_PLAIN:
                stats.ct_pt_multiplications += 1
            elif opcode is Opcode.NEGATE:
                stats.negations += 1
            elif opcode is Opcode.ROTATE:
                stats.rotations += 1
            if instruction.is_compute():
                depth[instruction.result] = operand_depth + 1
                mult_depth[instruction.result] = operand_mult + (
                    1 if opcode in _MULTIPLICATIVE else 0
                )
            else:
                depth[instruction.result] = operand_depth
                mult_depth[instruction.result] = operand_mult
        output_registers = [register for register, _, _ in self.outputs]
        stats.depth = max((depth.get(r, 0) for r in output_registers), default=0)
        stats.mult_depth = max(
            (mult_depth.get(r, 0) for r in output_registers), default=0
        )
        stats.total_operations = sum(
            1 for instruction in self.instructions if instruction.is_compute()
        )
        return stats

    def estimated_latency_ms(self, latency_model) -> float:
        """Sum of per-instruction latencies under ``latency_model``."""
        mapping = {
            Opcode.ADD: "add",
            Opcode.SUB: "sub",
            Opcode.ADD_PLAIN: "add",
            Opcode.SUB_PLAIN: "sub",
            Opcode.MUL: "multiply",
            Opcode.MUL_PLAIN: "multiply_plain",
            Opcode.NEGATE: "negate",
            Opcode.ROTATE: "rotate",
        }
        total = 0.0
        for instruction in self.instructions:
            operation = mapping.get(instruction.opcode)
            if operation is not None:
                total += latency_model.cost_ms(operation)
        return total
