"""The CHEHAB embedded DSL, transplanted from C++ to Python.

A program is written with :class:`Ciphertext` and :class:`Plaintext` handles
whose overloaded operators *stage* the computation into the expression IR
(the same staging idea CHEHAB borrows from Halide and Tiramisu):

.. code-block:: python

    with Program("motivating_example") as program:
        v = [Ciphertext(f"v{i}") for i in range(1, 11)]
        x = ((v[0] * v[1]) * (v[2] * v[3]) + (v[2] * v[3]) * (v[4] * v[5])) * (
            (v[6] * v[7]) * (v[8] * v[9])
        )
        x.set_output("x")

    program.outputs["x"]        # the staged IR expression

Supported operations mirror Table 3 of the paper: ``+``, ``-`` (binary and
unary), ``*`` with ciphertext/plaintext/int operands, and ``<<`` / ``>>``
rotations by an integer step.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.ir.nodes import (
    Add,
    Const,
    Expr,
    Mul,
    Neg,
    Rotate,
    Sub,
    Var,
    Vec,
)

__all__ = ["Ciphertext", "Plaintext", "Program", "vector_input"]

Operand = Union["Ciphertext", "Plaintext", int]


class Program:
    """Collects the inputs and outputs of a staged DSL program."""

    _current: Optional["Program"] = None

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self.inputs: List[str] = []
        self.outputs: Dict[str, Expr] = {}

    # -- context management ---------------------------------------------------
    def __enter__(self) -> "Program":
        if Program._current is not None:
            raise RuntimeError("nested Program contexts are not supported")
        Program._current = self
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        Program._current = None

    @classmethod
    def current(cls) -> Optional["Program"]:
        return cls._current

    # -- registration -----------------------------------------------------------
    def register_input(self, name: str) -> None:
        if name not in self.inputs:
            self.inputs.append(name)

    def register_output(self, name: str, expr: Expr) -> None:
        self.outputs[name] = expr

    @property
    def output_expr(self) -> Expr:
        """The single output expression (or a Vec of them, in declaration order)."""
        if not self.outputs:
            raise ValueError(f"program {self.name!r} declares no outputs")
        expressions = list(self.outputs.values())
        if len(expressions) == 1:
            return expressions[0]
        return Vec(*expressions)


class _Value:
    """Shared operator-overloading machinery for Ciphertext and Plaintext."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expr) -> None:
        self.expr = expr

    # -- staging helpers ----------------------------------------------------------
    @staticmethod
    def _as_expr(operand: Operand) -> Expr:
        if isinstance(operand, _Value):
            return operand.expr
        if isinstance(operand, int):
            return Const(operand)
        raise TypeError(f"unsupported operand type {type(operand).__name__}")

    def _wrap(self, expr: Expr) -> "Ciphertext":
        return Ciphertext._from_expr(expr)

    # -- arithmetic ------------------------------------------------------------------
    def __add__(self, other: Operand) -> "Ciphertext":
        return self._wrap(Add(self.expr, self._as_expr(other)))

    def __radd__(self, other: Operand) -> "Ciphertext":
        return self._wrap(Add(self._as_expr(other), self.expr))

    def __sub__(self, other: Operand) -> "Ciphertext":
        return self._wrap(Sub(self.expr, self._as_expr(other)))

    def __rsub__(self, other: Operand) -> "Ciphertext":
        return self._wrap(Sub(self._as_expr(other), self.expr))

    def __mul__(self, other: Operand) -> "Ciphertext":
        return self._wrap(Mul(self.expr, self._as_expr(other)))

    def __rmul__(self, other: Operand) -> "Ciphertext":
        return self._wrap(Mul(self._as_expr(other), self.expr))

    def __neg__(self) -> "Ciphertext":
        return self._wrap(Neg(self.expr))

    def __lshift__(self, step: int) -> "Ciphertext":
        return self._wrap(Rotate(self.expr, int(step)))

    def __rshift__(self, step: int) -> "Ciphertext":
        return self._wrap(Rotate(self.expr, -int(step)))

    def square(self) -> "Ciphertext":
        """``x.square()`` stages ``x * x`` (lowered to a cheaper square op)."""
        return self._wrap(Mul(self.expr, self.expr))

    # -- outputs -----------------------------------------------------------------------
    def set_output(self, name: str = "result") -> "Ciphertext":
        """Mark this value as a program output (requires an active Program)."""
        program = Program.current()
        if program is None:
            raise RuntimeError("set_output() requires an active Program context")
        program.register_output(name, self.expr)
        return self  # allow chaining, as in the C++ DSL

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.expr!s})"


class Ciphertext(_Value):
    """An encrypted scalar input or intermediate value."""

    def __init__(self, name: Optional[str] = None) -> None:
        if name is None:
            raise ValueError("input Ciphertexts require a name")
        super().__init__(Var(name))
        program = Program.current()
        if program is not None:
            program.register_input(name)

    @classmethod
    def _from_expr(cls, expr: Expr) -> "Ciphertext":
        instance = object.__new__(cls)
        _Value.__init__(instance, expr)
        return instance


class Plaintext(_Value):
    """A clear (unencrypted) scalar value known at runtime or compile time."""

    def __init__(self, value: Union[str, int]) -> None:
        if isinstance(value, int):
            super().__init__(Const(value))
        else:
            super().__init__(Var(str(value)))
            program = Program.current()
            if program is not None:
                program.register_input(str(value))

    @classmethod
    def _from_expr(cls, expr: Expr) -> "Plaintext":
        instance = object.__new__(cls)
        _Value.__init__(instance, expr)
        return instance


def vector_input(prefix: str, length: int) -> List[Ciphertext]:
    """Declare ``length`` scalar ciphertext inputs named ``{prefix}_{i}``.

    Benchmarks use this to model vector inputs whose elements the compiler is
    free to lay out (the client packs them before encryption, Sec. 7.3).
    """
    if length < 1:
        raise ValueError("length must be positive")
    return [Ciphertext(f"{prefix}_{index}") for index in range(length)]
