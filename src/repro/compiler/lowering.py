"""Lowering: from optimized IR expressions to ciphertext circuits.

Lowering resolves the *data layout* of the program:

* ``Vec`` constructors over input variables / constants become a single
  packed encrypted input (the client permutes and packs the data **before
  encryption**, Sec. 7.3) — or, when
  :attr:`LoweringOptions.layout_before_encryption` is disabled (the ablation
  column of Table 6), the packed vector is assembled **after encryption**
  with rotations and additions of individually encrypted scalars;
* ``Vec`` constructors over *computed* values are gathered with the
  classical mask-rotate-add sequence (one plaintext mask multiplication and
  one rotation per element beyond the first);
* vector operations whose operand is a vector of constants become
  ciphertext-plaintext operations (``MUL_PLAIN``/``ADD_PLAIN``), not
  ciphertext-ciphertext ones;
* remaining scalar operations become ordinary ciphertext operations whose
  meaningful value lives in slot 0.

The result is a :class:`~repro.compiler.circuit.CircuitProgram` whose
statistics and simulated execution reproduce the paper's per-benchmark
metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.core.exceptions import CompilationError
from repro.compiler.circuit import CircuitProgram, InputSlot, Instruction, Opcode
from repro.ir.nodes import (
    Add,
    Const,
    Expr,
    Mul,
    Neg,
    Rotate,
    Sub,
    Var,
    Vec,
    VecAdd,
    VecMul,
    VecNeg,
    VecSub,
)
from repro.ir.evaluate import output_arity

__all__ = ["LoweringOptions", "lower", "PlainValue"]


@dataclass(frozen=True)
class LoweringOptions:
    """Options controlling layout resolution."""

    #: Pack/permute input data on the client before encryption (Sec. 7.3).
    #: When False, packed inputs are assembled homomorphically after
    #: encryption (extra rotations and additions).
    layout_before_encryption: bool = True
    #: Mask computed Vec elements to slot 0 before inserting them.  Disabling
    #: this is unsafe in general and exists only for cost exploration.
    mask_gathered_elements: bool = True


@dataclass(frozen=True)
class PlainValue:
    """A compile-time-known plaintext value (broadcast scalar or slot vector)."""

    broadcast: bool
    values: Tuple[int, ...]

    @classmethod
    def scalar(cls, value: int) -> "PlainValue":
        return cls(broadcast=True, values=(int(value),))

    @classmethod
    def vector(cls, values: List[int]) -> "PlainValue":
        return cls(broadcast=False, values=tuple(int(v) for v in values))

    def slot(self, index: int) -> int:
        if self.broadcast:
            return self.values[0]
        return self.values[index] if index < len(self.values) else 0

    def width(self, other: "PlainValue") -> int:
        widths = []
        if not self.broadcast:
            widths.append(len(self.values))
        if not other.broadcast:
            widths.append(len(other.values))
        return max(widths) if widths else 1

    def combine(self, other: "PlainValue", op) -> "PlainValue":
        if self.broadcast and other.broadcast:
            return PlainValue.scalar(op(self.values[0], other.values[0]))
        width = self.width(other)
        return PlainValue.vector(
            [op(self.slot(i), other.slot(i)) for i in range(width)]
        )


#: A lowered operand: either a ciphertext register id or a plaintext value.
Lowered = Union[int, PlainValue]


class _Lowerer:
    """Stateful lowering of one expression into a circuit program."""

    def __init__(self, name: str, options: LoweringOptions) -> None:
        self.options = options
        self.program = CircuitProgram(name=name)
        self._cache: Dict[Expr, Lowered] = {}
        self._scalar_inputs: Dict[str, int] = {}
        self._packed_inputs: Dict[Tuple[InputSlot, ...], int] = {}
        self._plain_registers: Dict[Tuple, int] = {}

    # -- plaintext / input helpers -------------------------------------------------
    def _emit_plain(self, value: PlainValue) -> int:
        key = (value.broadcast, value.values)
        register = self._plain_registers.get(key)
        if register is None:
            register = self.program.emit(
                Opcode.LOAD_PLAIN,
                name="broadcast" if value.broadcast else "vector",
                values=value.values,
            )
            self._plain_registers[key] = register
        return register

    def _emit_scalar_input(self, name: str) -> int:
        register = self._scalar_inputs.get(name)
        if register is None:
            register = self.program.emit(
                Opcode.LOAD_INPUT,
                name=name,
                layout=(InputSlot(name=name),),
            )
            self._scalar_inputs[name] = register
            if name not in self.program.scalar_inputs:
                self.program.scalar_inputs.append(name)
        return register

    def _emit_packed_input(self, layout: Tuple[InputSlot, ...]) -> int:
        register = self._packed_inputs.get(layout)
        if register is None:
            register = self.program.emit(Opcode.LOAD_INPUT, layout=layout)
            self._packed_inputs[layout] = register
            for slot in layout:
                if slot.name is not None and slot.name not in self.program.scalar_inputs:
                    self.program.scalar_inputs.append(slot.name)
        return register

    def _as_ciphertext(self, lowered: Lowered) -> int:
        """Force a lowered value into a ciphertext register."""
        if isinstance(lowered, PlainValue):
            # Encrypt the known values as a packed input (the client can do
            # this for free since the values are public constants).
            if lowered.broadcast:
                layout = (InputSlot(constant=lowered.values[0]),)
            else:
                layout = tuple(InputSlot(constant=v) for v in lowered.values)
            return self._emit_packed_input(layout)
        return lowered

    def _mask(self, register: int, width: int) -> int:
        """Mask ``register`` down to its first ``width`` slots."""
        mask = PlainValue.vector([1] * width)
        return self.program.emit(
            Opcode.MUL_PLAIN, (register, self._emit_plain(mask))
        )

    # -- main dispatch ----------------------------------------------------------------
    def lower(self, expr: Expr) -> Lowered:
        cached = self._cache.get(expr)
        if cached is not None:
            return cached
        result = self._lower(expr)
        self._cache[expr] = result
        return result

    def _lower(self, expr: Expr) -> Lowered:
        if isinstance(expr, Const):
            return PlainValue.scalar(expr.value)
        if isinstance(expr, Var):
            return self._emit_scalar_input(expr.name)
        if isinstance(expr, Vec):
            return self._lower_vec(expr)
        if isinstance(expr, (Add, VecAdd)):
            return self._lower_binary(expr, Opcode.ADD, Opcode.ADD_PLAIN, lambda a, b: a + b)
        if isinstance(expr, (Sub, VecSub)):
            return self._lower_binary(expr, Opcode.SUB, Opcode.SUB_PLAIN, lambda a, b: a - b)
        if isinstance(expr, (Mul, VecMul)):
            return self._lower_binary(expr, Opcode.MUL, Opcode.MUL_PLAIN, lambda a, b: a * b)
        if isinstance(expr, (Neg, VecNeg)):
            return self._lower_neg(expr)
        if isinstance(expr, Rotate):
            return self._lower_rotate(expr)
        raise CompilationError(f"cannot lower node of type {type(expr).__name__}")

    # -- node-specific lowering ----------------------------------------------------------
    def _lower_vec(self, expr: Vec) -> Lowered:
        elements = expr.elements
        if all(isinstance(element, Const) for element in elements):
            return PlainValue.vector([element.value for element in elements])

        leaves_only = all(element.is_leaf() for element in elements)
        if leaves_only and self.options.layout_before_encryption:
            layout = tuple(
                InputSlot(name=element.name)
                if isinstance(element, Var)
                else InputSlot(constant=element.value)
                for element in elements
            )
            return self._emit_packed_input(layout)

        # General gather: start from the client-packed leaf slots (or zero),
        # then insert every computed element with mask + rotate + add.
        base_layout: List[InputSlot] = []
        computed: List[Tuple[int, Expr]] = []
        for index, element in enumerate(elements):
            if element.is_leaf() and self.options.layout_before_encryption:
                if isinstance(element, Var):
                    base_layout.append(InputSlot(name=element.name))
                else:
                    base_layout.append(InputSlot(constant=element.value))
            else:
                base_layout.append(InputSlot(constant=0))
                computed.append((index, element))

        accumulator: Optional[int] = None
        if any(slot.name is not None or slot.constant != 0 for slot in base_layout):
            accumulator = self._emit_packed_input(tuple(base_layout))

        for index, element in computed:
            register = self._as_ciphertext(self.lower(element))
            if self.options.mask_gathered_elements:
                register = self._mask(register, 1)
            if index != 0:
                register = self.program.emit(Opcode.ROTATE, (register,), step=-index)
            accumulator = (
                register
                if accumulator is None
                else self.program.emit(Opcode.ADD, (accumulator, register))
            )
        assert accumulator is not None
        return accumulator

    def _lower_binary(self, expr: Expr, ct_opcode: Opcode, plain_opcode: Opcode, fold) -> Lowered:
        left = self.lower(expr.children[0])
        right = self.lower(expr.children[1])
        if isinstance(left, PlainValue) and isinstance(right, PlainValue):
            return left.combine(right, fold)
        if isinstance(right, PlainValue):
            return self.program.emit(
                plain_opcode, (self._as_ciphertext(left), self._emit_plain(right))
            )
        if isinstance(left, PlainValue):
            if ct_opcode is Opcode.SUB:
                negated = self.program.emit(Opcode.NEGATE, (right,))
                return self.program.emit(
                    Opcode.ADD_PLAIN, (negated, self._emit_plain(left))
                )
            return self.program.emit(
                plain_opcode, (right, self._emit_plain(left))
            )
        return self.program.emit(ct_opcode, (left, right))

    def _lower_neg(self, expr: Expr) -> Lowered:
        operand = self.lower(expr.children[0])
        if isinstance(operand, PlainValue):
            return operand.combine(PlainValue.scalar(0), lambda a, _b: -a)
        return self.program.emit(Opcode.NEGATE, (operand,))

    def _lower_rotate(self, expr: Rotate) -> Lowered:
        operand = self.lower(expr.operand)
        if expr.step == 0:
            return operand
        if isinstance(operand, PlainValue):
            if operand.broadcast:
                return operand
            # Rotating a partially-known plaintext vector depends on the full
            # slot width, so materialise it as a packed input and rotate
            # homomorphically.
            operand = self._as_ciphertext(operand)
        return self.program.emit(Opcode.ROTATE, (operand,), step=expr.step)


def lower(
    expr: Expr,
    name: str = "circuit",
    output_name: str = "result",
    options: Optional[LoweringOptions] = None,
    output_length: Optional[int] = None,
) -> CircuitProgram:
    """Lower an optimized IR expression into a ciphertext circuit.

    ``output_length`` is the number of meaningful output slots; it defaults
    to the arity of ``expr`` but callers that optimized a program should pass
    the arity of the *original* program, since rewrites may widen the
    expression (e.g. reductions leave partial sums in the upper slots).
    """
    options = options if options is not None else LoweringOptions()
    lowerer = _Lowerer(name, options)
    result = lowerer.lower(expr)
    register = lowerer._as_ciphertext(result)
    program = lowerer.program
    length = output_length if output_length is not None else output_arity(expr)
    program.mark_output(register, output_name, length)
    return program
