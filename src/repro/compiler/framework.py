"""The pass-pipeline compilation framework.

Every compiler in the repo (the CHEHAB :class:`~repro.compiler.pipeline.Compiler`,
the Coyote-style vectorizer, the scalar and greedy-TRS baselines) is expressed
as a :class:`PassPipeline`: an ordered sequence of *named stages* that thread a
mutable :class:`PipelineState` from the source expression to the lowered
circuit.  Running a pipeline produces a :class:`PipelineTrace` — one
:class:`StageTrace` per stage with its wall-clock time and before/after cost
snapshots — which rides along on the :class:`CompilationReport`, so every
compiler in the comparison emits uniform, introspectable reports.

Two kinds of stage cover almost everything:

* an **expression pass** (:class:`ExprPass`) maps ``Expr -> Expr``
  (constant folding, the TRS optimizer);
* a **circuit pass** (:class:`CircuitPass`) maps
  ``CircuitProgram -> CircuitProgram`` (dead code elimination).

Stages that cross the expression/circuit boundary (lowering, rotation-key
selection, Coyote's layout search) implement the generic :class:`Stage`
protocol directly and mutate the state in place.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.compiler.circuit import CircuitProgram, CircuitStats
from repro.core.cost import CostModel
from repro.fhe.rotation_keys import RotationKeyPlan
from repro.ir.nodes import Expr
from repro.trs.rewriter import RewriteStep

__all__ = [
    "PipelineState",
    "Stage",
    "ExprPass",
    "CircuitPass",
    "expr_stage",
    "circuit_stage",
    "StageTrace",
    "PipelineTrace",
    "PassPipeline",
    "CompilationReport",
]


@dataclass
class PipelineState:
    """Mutable state threaded through the stages of one compilation."""

    name: str
    source_expr: Expr
    #: The current expression; expression passes rewrite this field.
    expr: Expr
    #: The lowered circuit; None until a lowering stage produces it.
    circuit: Optional[CircuitProgram] = None
    rewrite_steps: List[RewriteStep] = field(default_factory=list)
    initial_cost: float = 0.0
    final_cost: float = 0.0
    rotation_key_plan: Optional[RotationKeyPlan] = None
    #: Free-form scratch space for stages that need to pass values forward
    #: (e.g. the pre-optimization output arity consumed by lowering).
    metadata: Dict[str, object] = field(default_factory=dict)


@runtime_checkable
class Stage(Protocol):
    """One named step of a pipeline; mutates the state in place."""

    name: str
    #: "expr" or "circuit" — which representation the stage operates on.
    kind: str

    def run(self, state: PipelineState) -> None: ...


class ExprPass(Protocol):
    """An expression-to-expression transformation."""

    def __call__(self, expr: Expr, state: PipelineState) -> Expr: ...


class CircuitPass(Protocol):
    """A circuit-to-circuit transformation."""

    def __call__(self, circuit: CircuitProgram, state: PipelineState) -> CircuitProgram: ...


@dataclass(frozen=True)
class _ExprStage:
    name: str
    fn: Callable[[Expr, PipelineState], Expr]
    kind: str = "expr"

    def run(self, state: PipelineState) -> None:
        state.expr = self.fn(state.expr, state)


@dataclass(frozen=True)
class _CircuitStage:
    name: str
    fn: Callable[[CircuitProgram, PipelineState], CircuitProgram]
    kind: str = "circuit"

    def run(self, state: PipelineState) -> None:
        if state.circuit is None:
            raise ValueError(
                f"circuit pass {self.name!r} ran before any lowering stage"
            )
        state.circuit = self.fn(state.circuit, state)


def expr_stage(name: str, fn: ExprPass) -> Stage:
    """Wrap an :class:`ExprPass` into a named pipeline stage."""
    return _ExprStage(name=name, fn=fn)


def circuit_stage(name: str, fn: CircuitPass) -> Stage:
    """Wrap a :class:`CircuitPass` into a named pipeline stage."""
    return _CircuitStage(name=name, fn=fn)


@dataclass(frozen=True)
class StageTrace:
    """Timing and cost accounting of one executed stage."""

    name: str
    kind: str
    wall_time_s: float
    #: Analytical expression cost before/after while the state holds an
    #: expression; circuit compute-operation count once lowered.
    cost_before: float
    cost_after: float
    #: Structural-validation findings recorded after this stage (only
    #: populated by ``compile(verify=True)``; empty means checked-and-clean
    #: or not checked — consult the report's ``analysis`` for which).
    findings: tuple = ()

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "kind": self.kind,
            "wall_time_s": self.wall_time_s,
            "cost_before": self.cost_before,
            "cost_after": self.cost_after,
        }
        if self.findings:
            payload["findings"] = [f.as_dict() for f in self.findings]
        return payload


@dataclass
class PipelineTrace:
    """Per-stage record of one pipeline run."""

    stages: List[StageTrace] = field(default_factory=list)
    #: Merged structural-validation report across all stages; None unless
    #: the pipeline ran with ``verify=True``.
    analysis: Optional[object] = None

    @property
    def total_time_s(self) -> float:
        return sum(stage.wall_time_s for stage in self.stages)

    @property
    def stage_names(self) -> List[str]:
        return [stage.name for stage in self.stages]

    def stage(self, name: str) -> StageTrace:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"no stage named {name!r} in this trace")

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "total_time_s": self.total_time_s,
            "stages": [stage.as_dict() for stage in self.stages],
        }
        if self.analysis is not None:
            payload["analysis"] = self.analysis.as_dict()
        return payload


class PassPipeline:
    """An ordered sequence of named stages with per-stage tracing.

    ``run`` executes the stages against a prepared state and returns the
    trace; ``compile`` is the full entry point used by the compilers — it
    builds the state, runs the pipeline and assembles the
    :class:`CompilationReport` (trace attached, ``compile_time_s`` measured
    over the whole run so the per-stage times sum to ≈ the total).
    """

    def __init__(self, stages: Iterable[Stage], cost_model: Optional[CostModel] = None) -> None:
        self.stages: List[Stage] = list(stages)
        seen = set()
        for stage in self.stages:
            if stage.name in seen:
                raise ValueError(f"duplicate stage name {stage.name!r}")
            seen.add(stage.name)
        self.cost_model = cost_model if cost_model is not None else CostModel()

    @property
    def stage_names(self) -> List[str]:
        return [stage.name for stage in self.stages]

    def _snapshot(self, state: PipelineState) -> float:
        if state.circuit is not None:
            return float(state.circuit.stats().total_operations)
        return float(self.cost_model.cost(state.expr))

    def run(self, state: PipelineState, *, verify: bool = False) -> PipelineTrace:
        """Execute every stage in order; returns the per-stage trace.

        With ``verify=True`` the structural validators of
        :mod:`repro.analysis.pipeline_check` run after every stage; each
        stage's findings land on its :class:`StageTrace` (naming the stage
        that broke an invariant) and the merged report on the trace.
        """
        analysis = None
        validate = None
        if verify:
            from repro.analysis import AnalysisReport
            from repro.analysis.pipeline_check import validate_state

            analysis = AnalysisReport()
            validate = validate_state
        trace = PipelineTrace(analysis=analysis)
        snapshot = self._snapshot(state)
        for stage in self.stages:
            start = time.perf_counter()
            stage.run(state)
            after = self._snapshot(state)
            elapsed = time.perf_counter() - start
            findings: tuple = ()
            if validate is not None:
                stage_report = validate(state, stage_name=stage.name)
                findings = tuple(stage_report.findings)
                analysis.merge(stage_report)
            trace.stages.append(
                StageTrace(
                    name=stage.name,
                    kind=getattr(stage, "kind", "expr"),
                    wall_time_s=elapsed,
                    cost_before=snapshot,
                    cost_after=after,
                    findings=findings,
                )
            )
            snapshot = after
        return trace

    def compile(
        self, expr: Expr, name: str = "circuit", *, verify: bool = False
    ) -> "CompilationReport":
        """Run the pipeline on ``expr`` and assemble the report.

        ``verify=True`` additionally validates the expression/circuit after
        every stage and attaches the merged findings to the report's
        ``analysis``.
        """
        start = time.perf_counter()
        state = PipelineState(name=name, source_expr=expr, expr=expr)
        trace = self.run(state, verify=verify)
        if state.circuit is None:
            raise ValueError(
                f"pipeline {self.stage_names} produced no circuit for {name!r}"
            )
        elapsed = time.perf_counter() - start
        return CompilationReport(
            name=name,
            source_expr=expr,
            optimized_expr=state.expr,
            circuit=state.circuit,
            stats=state.circuit.stats(),
            compile_time_s=elapsed,
            rewrite_steps=list(state.rewrite_steps),
            initial_cost=state.initial_cost,
            final_cost=state.final_cost,
            rotation_key_plan=state.rotation_key_plan,
            trace=trace,
            analysis=trace.analysis,
        )


@dataclass
class CompilationReport:
    """Everything produced by one compilation."""

    name: str
    source_expr: Expr
    optimized_expr: Expr
    circuit: CircuitProgram
    stats: CircuitStats
    compile_time_s: float
    rewrite_steps: List[RewriteStep] = field(default_factory=list)
    initial_cost: float = 0.0
    final_cost: float = 0.0
    rotation_key_plan: Optional[RotationKeyPlan] = None
    #: Per-stage timing/cost trace of the pipeline that produced the report.
    trace: Optional[PipelineTrace] = None
    #: Merged static-analysis report of the per-stage validators; None
    #: unless compiled with ``verify=True``.
    analysis: Optional[object] = None

    @property
    def cost_improvement(self) -> float:
        """Fractional reduction of the analytical cost achieved by rewriting."""
        if self.initial_cost <= 0:
            return 0.0
        return max(0.0, (self.initial_cost - self.final_cost) / self.initial_cost)

    def as_dict(self) -> Dict[str, object]:
        """Machine-readable summary (the CLI/telemetry surface).

        The ``findings`` block is always present: ``checked`` says whether
        the per-stage validators ran, so "no findings" is distinguishable
        from "never looked".
        """
        checked = self.analysis is not None
        return {
            "name": self.name,
            "compile_time_s": self.compile_time_s,
            "initial_cost": self.initial_cost,
            "final_cost": self.final_cost,
            "cost_improvement": self.cost_improvement,
            "stats": self.stats.as_dict(),
            "trace": self.trace.as_dict() if self.trace is not None else None,
            "findings": {
                "checked": checked,
                "ok": self.analysis.ok if checked else None,
                "counts": self.analysis.counts() if checked else None,
                "items": (
                    [f.as_dict() for f in self.analysis.findings]
                    if checked
                    else []
                ),
            },
        }

    def seal_code(self) -> str:
        """SEAL-style C++ for the compiled circuit."""
        from repro.compiler.codegen import generate_seal_code

        return generate_seal_code(self.circuit)
