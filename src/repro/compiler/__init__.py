"""The CHEHAB compiler: DSL → IR → optimized IR → ciphertext circuit.

Pipeline stages (paper Sec. 4):

1. the embedded DSL (:mod:`repro.compiler.dsl`) stages a program into the
   expression IR;
2. classic passes (:mod:`repro.compiler.passes`) — constant folding, common
   sub-expression awareness and dead-code elimination;
3. the TRS-driven optimizer selects a rewrite sequence with one of several
   policies (trained RL agent, greedy cost descent, beam search, or none);
4. lowering (:mod:`repro.compiler.lowering`) assigns data layouts, inserts
   the rotations/masks needed to gather computed values into packed vectors
   and produces a :class:`~repro.compiler.circuit.CircuitProgram`;
5. rotation-key selection (Appendix B) chooses the Galois keys to generate;
6. code generation emits SEAL-style C++ (:mod:`repro.compiler.codegen`) and
   the executor (:mod:`repro.compiler.executor`) runs the circuit on the
   simulated BFV backend, reporting latency, operation counts and consumed
   noise budget.

Stages are expressed on the pass framework (:mod:`repro.compiler.framework`):
every compiler is a :class:`PassPipeline` of named stages, and every
:class:`CompilationReport` carries a :class:`PipelineTrace` with per-stage
wall-clock times and cost snapshots.  The registry
(:mod:`repro.compiler.registry`) names the configurations of the paper's
comparison (``initial`` / ``coyote`` / ``greedy`` / ``beam`` / ``chehab-rl``)
and renders canonical, cache-stable :class:`CompilerSpec` descriptions.
"""

from repro.compiler.circuit import CircuitProgram, CircuitStats, Instruction, Opcode
from repro.compiler.dsl import Ciphertext, Plaintext, Program
from repro.compiler.framework import (
    CircuitPass,
    ExprPass,
    PassPipeline,
    PipelineState,
    PipelineTrace,
    Stage,
    StageTrace,
    circuit_stage,
    expr_stage,
)
from repro.compiler.lowering import LoweringOptions, lower
from repro.compiler.passes import constant_fold, dead_code_eliminate, simplify_pipeline
from repro.compiler.executor import (
    ExecutionReport,
    declared_outputs,
    execute,
    execute_many,
    reference_output,
)
from repro.compiler.codegen import generate_seal_code
from repro.compiler.pipeline import (
    CompilationReport,
    Compiler,
    CompilerOptions,
    default_pipeline,
)
from repro.compiler.registry import (
    CompilerInfo,
    CompilerSpec,
    available_compilers,
    build_compiler,
    compiler_info,
    register_compiler,
    resolve_compiler,
)

__all__ = [
    "Ciphertext",
    "Plaintext",
    "Program",
    "CircuitProgram",
    "CircuitStats",
    "Instruction",
    "Opcode",
    "LoweringOptions",
    "lower",
    "constant_fold",
    "dead_code_eliminate",
    "simplify_pipeline",
    "ExecutionReport",
    "execute",
    "execute_many",
    "reference_output",
    "declared_outputs",
    "generate_seal_code",
    "Compiler",
    "CompilerOptions",
    "CompilationReport",
    "default_pipeline",
    "PassPipeline",
    "PipelineState",
    "PipelineTrace",
    "StageTrace",
    "Stage",
    "ExprPass",
    "CircuitPass",
    "expr_stage",
    "circuit_stage",
    "CompilerInfo",
    "CompilerSpec",
    "register_compiler",
    "available_compilers",
    "build_compiler",
    "compiler_info",
    "resolve_compiler",
]
