"""The CHEHAB compiler: DSL → IR → optimized IR → ciphertext circuit.

Pipeline stages (paper Sec. 4):

1. the embedded DSL (:mod:`repro.compiler.dsl`) stages a program into the
   expression IR;
2. classic passes (:mod:`repro.compiler.passes`) — constant folding, common
   sub-expression awareness and dead-code elimination;
3. the TRS-driven optimizer selects a rewrite sequence with one of several
   policies (trained RL agent, greedy cost descent, beam search, or none);
4. lowering (:mod:`repro.compiler.lowering`) assigns data layouts, inserts
   the rotations/masks needed to gather computed values into packed vectors
   and produces a :class:`~repro.compiler.circuit.CircuitProgram`;
5. rotation-key selection (Appendix B) chooses the Galois keys to generate;
6. code generation emits SEAL-style C++ (:mod:`repro.compiler.codegen`) and
   the executor (:mod:`repro.compiler.executor`) runs the circuit on the
   simulated BFV backend, reporting latency, operation counts and consumed
   noise budget.
"""

from repro.compiler.circuit import CircuitProgram, CircuitStats, Instruction, Opcode
from repro.compiler.dsl import Ciphertext, Plaintext, Program
from repro.compiler.lowering import LoweringOptions, lower
from repro.compiler.passes import constant_fold, dead_code_eliminate, simplify_pipeline
from repro.compiler.executor import ExecutionReport, execute, reference_output
from repro.compiler.codegen import generate_seal_code
from repro.compiler.pipeline import CompilationReport, Compiler, CompilerOptions

__all__ = [
    "Ciphertext",
    "Plaintext",
    "Program",
    "CircuitProgram",
    "CircuitStats",
    "Instruction",
    "Opcode",
    "LoweringOptions",
    "lower",
    "constant_fold",
    "dead_code_eliminate",
    "simplify_pipeline",
    "ExecutionReport",
    "execute",
    "reference_output",
    "generate_seal_code",
    "Compiler",
    "CompilerOptions",
    "CompilationReport",
]
