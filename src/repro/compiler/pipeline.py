"""End-to-end compilation pipeline (the CHEHAB driver).

:class:`Compiler` wires the stages together as a declarative
:class:`~repro.compiler.framework.PassPipeline`:

1. ``constant-fold`` — expression-level classic passes;
2. ``optimize`` — the TRS optimizer (any object exposing
   ``optimize(expr) -> RewriteResult``, i.e. the trained RL agent, the
   greedy/beam baselines or ``None`` for the unoptimized "Initial"
   configuration of Table 6);
3. ``lower`` — layout assignment and lowering to ciphertext instructions;
4. ``dce`` — circuit-level dead code elimination;
5. ``rotation-keys`` — rotation-key selection (Appendix B).

The returned :class:`CompilationReport` carries everything the experiment
harness needs — the optimized expression, the lowered circuit, its static
statistics, the measured compilation time, the rotation-key plan — plus the
:class:`~repro.compiler.framework.PipelineTrace` with per-stage wall-clock
times and cost snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.core.cost import CostModel
from repro.compiler.framework import (
    CompilationReport,
    PassPipeline,
    PipelineState,
    Stage,
    circuit_stage,
    expr_stage,
)
from repro.compiler.dsl import Program
from repro.compiler.lowering import LoweringOptions, lower
from repro.compiler.passes import constant_fold, dead_code_eliminate
from repro.fhe.params import BFVParameters
from repro.fhe.rotation_keys import select_rotation_keys
from repro.ir.nodes import Expr
from repro.trs.rewriter import GreedyRewriter, BeamSearchRewriter, RewriteResult, RewriteStep

__all__ = ["CompilerOptions", "CompilationReport", "Compiler", "default_pipeline"]


@dataclass
class CompilerOptions:
    """Configuration of one compilation run."""

    #: Either the name of a built-in optimizer ("greedy", "beam", "none") or
    #: any object with an ``optimize(expr) -> RewriteResult`` method (e.g. a
    #: trained :class:`repro.rl.agent.ChehabAgent`).
    optimizer: Union[str, object] = "greedy"
    #: Cost model used by the built-in optimizers.
    cost_model: CostModel = field(default_factory=CostModel)
    #: Transform input data layout on the client before encryption (Sec. 7.3).
    layout_before_encryption: bool = True
    #: Run the automatic rotation-key selection pass (Appendix B).  Disabled
    #: in the main comparison for parity with Coyote.
    select_rotation_keys: bool = False
    #: Upper bound on the number of generated Galois keys (default 2*log2 n).
    rotation_key_budget: Optional[int] = None
    #: Encryption parameters (only the slot count and noise budget matter to
    #: compilation; execution uses the same parameters).
    params: BFVParameters = field(default_factory=BFVParameters.default)
    #: Maximum rewrite steps for the built-in optimizers.
    max_rewrite_steps: int = 75


def _resolve_optimizer(options: CompilerOptions):
    optimizer = options.optimizer
    if optimizer is None or optimizer == "none":
        return None
    if isinstance(optimizer, str):
        if optimizer == "greedy":
            return GreedyRewriter(
                cost_model=options.cost_model,
                max_steps=options.max_rewrite_steps,
            )
        if optimizer == "beam":
            return BeamSearchRewriter(
                cost_model=options.cost_model,
                max_steps=min(options.max_rewrite_steps, 20),
            )
        raise ValueError(f"unknown optimizer {optimizer!r}")
    if not hasattr(optimizer, "optimize"):
        raise TypeError("optimizer must expose an optimize(expr) method")
    return optimizer


@dataclass(frozen=True)
class _OptimizeStage:
    """TRS optimization: records costs and the applied rewrite sequence."""

    options: CompilerOptions
    name: str = "optimize"
    kind: str = "expr"

    def run(self, state: PipelineState) -> None:
        from repro.ir.evaluate import output_arity

        cost_model = self.options.cost_model
        # The output arity of the folded-but-unoptimized expression drives
        # lowering; rewriting must not change what the program computes.
        state.metadata["output_arity"] = output_arity(state.expr)
        state.initial_cost = cost_model.cost(state.expr)
        optimizer = _resolve_optimizer(self.options)
        if optimizer is None:
            state.final_cost = state.initial_cost
            return
        result: RewriteResult = optimizer.optimize(state.expr)
        state.expr = constant_fold(result.optimized)
        state.rewrite_steps = list(result.steps)
        state.final_cost = cost_model.cost(state.expr)


@dataclass(frozen=True)
class _LowerStage:
    """Lower the optimized expression to a ciphertext circuit."""

    options: CompilerOptions
    name: str = "lower"
    kind: str = "circuit"

    def run(self, state: PipelineState) -> None:
        from repro.ir.evaluate import output_arity

        lowering_options = LoweringOptions(
            layout_before_encryption=self.options.layout_before_encryption
        )
        length = state.metadata.get("output_arity")
        if length is None:
            length = output_arity(state.expr)
        state.circuit = lower(
            state.expr,
            name=state.name,
            options=lowering_options,
            output_length=int(length),
        )


@dataclass(frozen=True)
class _RotationKeyStage:
    """Select the Galois keys to generate for the circuit's rotations."""

    options: CompilerOptions
    name: str = "rotation-keys"
    kind: str = "circuit"

    def run(self, state: PipelineState) -> None:
        if not self.options.select_rotation_keys:
            return
        if state.circuit is None or not state.circuit.rotation_steps:
            return
        state.rotation_key_plan = select_rotation_keys(
            state.circuit.rotation_steps,
            slot_count=self.options.params.slot_count,
            beta=self.options.rotation_key_budget,
        )


def default_pipeline(options: Optional[CompilerOptions] = None) -> PassPipeline:
    """The declarative CHEHAB stage sequence for ``options``."""
    options = options if options is not None else CompilerOptions()
    stages: List[Stage] = [
        expr_stage("constant-fold", lambda expr, state: constant_fold(expr)),
        _OptimizeStage(options),
        _LowerStage(options),
        circuit_stage("dce", lambda circuit, state: dead_code_eliminate(circuit)),
        _RotationKeyStage(options),
    ]
    return PassPipeline(stages, cost_model=options.cost_model)


class Compiler:
    """The CHEHAB compiler driver (a declarative default pipeline)."""

    def __init__(self, options: Optional[CompilerOptions] = None) -> None:
        self.options = options if options is not None else CompilerOptions()

    @property
    def pipeline(self) -> PassPipeline:
        """The stage sequence this compiler runs."""
        return default_pipeline(self.options)

    # -- entry points --------------------------------------------------------------------
    def compile_program(self, program: Program) -> CompilationReport:
        """Compile a staged DSL program."""
        return self.compile_expression(program.output_expr, name=program.name)

    def compile_expression(
        self, expr: Expr, name: str = "circuit", *, verify: bool = False
    ) -> CompilationReport:
        """Compile a single IR expression."""
        return self.pipeline.compile(expr, name=name, verify=verify)
