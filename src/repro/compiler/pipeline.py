"""End-to-end compilation pipeline (the CHEHAB driver).

:class:`Compiler` wires the stages together: expression-level classic passes,
the TRS optimizer (any object exposing ``optimize(expr) -> RewriteResult``,
i.e. the trained RL agent, the greedy/beam baselines or ``None`` for the
unoptimized "Initial" configuration of Table 6), lowering, circuit-level dead
code elimination and rotation-key selection.  The returned
:class:`CompilationReport` carries everything the experiment harness needs:
the optimized expression, the lowered circuit, its static statistics, the
measured compilation time and the rotation-key plan.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.core.cost import CostModel
from repro.compiler.circuit import CircuitProgram, CircuitStats
from repro.compiler.codegen import generate_seal_code
from repro.compiler.dsl import Program
from repro.compiler.lowering import LoweringOptions, lower
from repro.compiler.passes import constant_fold, dead_code_eliminate
from repro.fhe.params import BFVParameters
from repro.fhe.rotation_keys import RotationKeyPlan, select_rotation_keys
from repro.ir.nodes import Expr
from repro.trs.rewriter import GreedyRewriter, BeamSearchRewriter, RewriteResult, RewriteStep

__all__ = ["CompilerOptions", "CompilationReport", "Compiler"]


@dataclass
class CompilerOptions:
    """Configuration of one compilation run."""

    #: Either the name of a built-in optimizer ("greedy", "beam", "none") or
    #: any object with an ``optimize(expr) -> RewriteResult`` method (e.g. a
    #: trained :class:`repro.rl.agent.ChehabAgent`).
    optimizer: Union[str, object] = "greedy"
    #: Cost model used by the built-in optimizers.
    cost_model: CostModel = field(default_factory=CostModel)
    #: Transform input data layout on the client before encryption (Sec. 7.3).
    layout_before_encryption: bool = True
    #: Run the automatic rotation-key selection pass (Appendix B).  Disabled
    #: in the main comparison for parity with Coyote.
    select_rotation_keys: bool = False
    #: Upper bound on the number of generated Galois keys (default 2*log2 n).
    rotation_key_budget: Optional[int] = None
    #: Encryption parameters (only the slot count and noise budget matter to
    #: compilation; execution uses the same parameters).
    params: BFVParameters = field(default_factory=BFVParameters.default)
    #: Maximum rewrite steps for the built-in optimizers.
    max_rewrite_steps: int = 75


@dataclass
class CompilationReport:
    """Everything produced by one compilation."""

    name: str
    source_expr: Expr
    optimized_expr: Expr
    circuit: CircuitProgram
    stats: CircuitStats
    compile_time_s: float
    rewrite_steps: List[RewriteStep] = field(default_factory=list)
    initial_cost: float = 0.0
    final_cost: float = 0.0
    rotation_key_plan: Optional[RotationKeyPlan] = None

    @property
    def cost_improvement(self) -> float:
        """Fractional reduction of the analytical cost achieved by rewriting."""
        if self.initial_cost <= 0:
            return 0.0
        return max(0.0, (self.initial_cost - self.final_cost) / self.initial_cost)

    def seal_code(self) -> str:
        """SEAL-style C++ for the compiled circuit."""
        return generate_seal_code(self.circuit)


class Compiler:
    """The CHEHAB compiler driver."""

    def __init__(self, options: Optional[CompilerOptions] = None) -> None:
        self.options = options if options is not None else CompilerOptions()

    # -- optimizer resolution --------------------------------------------------------
    def _resolve_optimizer(self):
        optimizer = self.options.optimizer
        if optimizer is None or optimizer == "none":
            return None
        if isinstance(optimizer, str):
            if optimizer == "greedy":
                return GreedyRewriter(
                    cost_model=self.options.cost_model,
                    max_steps=self.options.max_rewrite_steps,
                )
            if optimizer == "beam":
                return BeamSearchRewriter(
                    cost_model=self.options.cost_model,
                    max_steps=min(self.options.max_rewrite_steps, 20),
                )
            raise ValueError(f"unknown optimizer {optimizer!r}")
        if not hasattr(optimizer, "optimize"):
            raise TypeError("optimizer must expose an optimize(expr) method")
        return optimizer

    # -- entry points --------------------------------------------------------------------
    def compile_program(self, program: Program) -> CompilationReport:
        """Compile a staged DSL program."""
        return self.compile_expression(program.output_expr, name=program.name)

    def compile_expression(self, expr: Expr, name: str = "circuit") -> CompilationReport:
        """Compile a single IR expression."""
        start = time.perf_counter()
        cost_model = self.options.cost_model

        folded = constant_fold(expr)
        initial_cost = cost_model.cost(folded)

        optimizer = self._resolve_optimizer()
        if optimizer is None:
            optimized = folded
            steps: List[RewriteStep] = []
            final_cost = initial_cost
        else:
            result: RewriteResult = optimizer.optimize(folded)
            optimized = constant_fold(result.optimized)
            steps = list(result.steps)
            final_cost = cost_model.cost(optimized)

        lowering_options = LoweringOptions(
            layout_before_encryption=self.options.layout_before_encryption
        )
        from repro.ir.evaluate import output_arity

        circuit = lower(
            optimized,
            name=name,
            options=lowering_options,
            output_length=output_arity(folded),
        )
        circuit = dead_code_eliminate(circuit)

        rotation_plan: Optional[RotationKeyPlan] = None
        if self.options.select_rotation_keys and circuit.rotation_steps:
            rotation_plan = select_rotation_keys(
                circuit.rotation_steps,
                slot_count=self.options.params.slot_count,
                beta=self.options.rotation_key_budget,
            )

        elapsed = time.perf_counter() - start
        return CompilationReport(
            name=name,
            source_expr=expr,
            optimized_expr=optimized,
            circuit=circuit,
            stats=circuit.stats(),
            compile_time_s=elapsed,
            rewrite_steps=steps,
            initial_cost=initial_cost,
            final_cost=final_cost,
            rotation_key_plan=rotation_plan,
        )
