"""Execute lowered circuits through the pluggable execution-backend layer.

:func:`execute` and :func:`execute_many` are thin dispatchers over the
backend registry (:mod:`repro.backends`): the circuit runs on the named
:class:`~repro.backends.base.ExecutionBackend` — ``reference`` (the
SEAL-style evaluator, the default), ``vector-vm`` (batched tape VM) or
``cost-sim`` (accounting only) — and comes back as an
:class:`ExecutionReport` with

* the decrypted output values (meaningful slots only; empty for
  accounting-only backends),
* the simulated execution latency and per-operation counts,
* the consumed noise budget (initial minus the minimum remaining budget over
  the outputs), and
* whether the noise budget was exhausted (the circuit "failed to execute",
  as Coyote does on Sort-4 and two of the polynomial-tree benchmarks in the
  paper).

The ``REPRO_BACKEND`` environment variable overrides the default backend for
callers that do not pass ``backend=`` explicitly (used by ``make
bench-smoke`` to drive the existing benchmark harnesses through the vector
VM).

:func:`reference_output` computes the same outputs with the plaintext
reference evaluator, which the tests use to verify end-to-end correctness of
every compiled benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.compiler.circuit import CircuitProgram
from repro.fhe.params import BFVParameters
from repro.ir.evaluate import evaluate
from repro.ir.nodes import Expr

__all__ = [
    "ExecutionReport",
    "execute",
    "execute_many",
    "reference_output",
    "declared_outputs",
    "default_backend_name",
]

Value = Union[int, Sequence[int]]


def declared_outputs(
    program: CircuitProgram, outputs: Mapping[str, Sequence[int]]
) -> List[int]:
    """Concatenate execution ``outputs`` in the circuit's declaration order.

    Multi-output circuits must be verified on the concatenation of the
    outputs the circuit itself declares — not on whatever single entry dict
    iteration happens to yield first.  Shared by the experiment harness and
    the :mod:`repro.api` facade so the verification path cannot drift.
    """
    collected: List[int] = []
    for _, name, _ in program.outputs:
        collected.extend(outputs.get(name, []))
    return collected


@dataclass
class ExecutionReport:
    """Result of executing a circuit on one of the simulator backends."""

    outputs: Dict[str, List[int]] = field(default_factory=dict)
    latency_ms: float = 0.0
    operation_counts: Dict[str, int] = field(default_factory=dict)
    consumed_noise_budget: float = 0.0
    remaining_noise_budget: float = 0.0
    noise_budget_exhausted: bool = False
    encrypted_inputs: int = 0
    #: Registry name of the backend that produced this report.
    backend: str = "reference"
    #: Input sets executed together in the batch this report came from.
    batch_size: int = 1

    @property
    def succeeded(self) -> bool:
        """True when every output decrypted within the noise budget."""
        return not self.noise_budget_exhausted


def default_backend_name() -> str:
    """The backend used when callers pass ``backend=None``.

    ``REPRO_BACKEND`` overrides the built-in default (``reference``), which
    lets whole harnesses be rerun on another backend without touching code.
    """
    from repro.backends.registry import default_backend_name as _default

    return _default()


def execute(
    program: CircuitProgram,
    inputs: Mapping[str, Value],
    params: Optional[BFVParameters] = None,
    context: Optional[object] = None,
    backend: Union[str, None, object] = None,
) -> ExecutionReport:
    """Run ``program`` on the named execution backend with the given inputs.

    ``backend`` is a registry name (``reference``/``vector-vm``/``cost-sim``),
    a :class:`~repro.backends.registry.BackendSpec` or a live backend object;
    None uses :func:`default_backend_name`.  ``context`` (a pre-built
    :class:`~repro.fhe.evaluator.FHEContext`) is honoured by the reference
    backend; tape backends derive what they need from ``params``.
    """
    from repro.backends.registry import get_backend

    return get_backend(backend).execute(program, inputs, params=params, context=context)


def execute_many(
    program: CircuitProgram,
    inputs_list: Sequence[Mapping[str, Value]],
    params: Optional[BFVParameters] = None,
    backend: Union[str, None, object] = None,
) -> List[ExecutionReport]:
    """Run ``program`` once per input set, batched where the backend can.

    The vector VM executes the whole batch in one pass over its instruction
    tape; other backends fall back to sequential execution.  Reports come
    back in input order with ``batch_size`` set.
    """
    from repro.backends.registry import get_backend

    return get_backend(backend).execute_many(program, list(inputs_list), params=params)


def reference_output(
    expr: Expr,
    inputs: Mapping[str, Value],
    length: Optional[int] = None,
    slot_count: int = 64,
    plain_modulus: Optional[int] = None,
) -> List[int]:
    """Plaintext reference output of an IR expression (meaningful slots only).

    BFV computes over ``Z_t``, so the reference is reduced modulo the
    plaintext modulus and mapped to centred representatives — exactly what
    decrypting and decoding the compiled circuit yields.  Pass
    ``plain_modulus=None``-compatible large values through the default, or an
    explicit modulus matching non-default parameters.
    """
    from repro.ir.evaluate import output_arity

    if plain_modulus is None:
        plain_modulus = BFVParameters.default().plain_modulus
    if length is None:
        length = output_arity(expr)
    slots = evaluate(expr, inputs, slot_count=max(slot_count, length), modulus=plain_modulus)
    half = plain_modulus // 2
    return [value - plain_modulus if value > half else value for value in slots[:length]]
