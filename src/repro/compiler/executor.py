"""Execute lowered circuits on the simulated BFV backend.

:func:`execute` encrypts the program inputs (applying the client-side
packing layouts recorded by lowering), runs every instruction through the
:class:`~repro.fhe.evaluator.Evaluator`, decrypts the outputs and returns an
:class:`ExecutionReport` with

* the decrypted output values (meaningful slots only),
* the simulated execution latency,
* per-operation counts,
* the consumed noise budget (initial minus the minimum remaining budget over
  the outputs), and
* whether the noise budget was exhausted (the circuit "failed to execute",
  as Coyote does on Sort-4 and two of the polynomial-tree benchmarks in the
  paper).

:func:`reference_output` computes the same outputs with the plaintext
reference evaluator, which the tests use to verify end-to-end correctness of
every compiled benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.core.exceptions import CompilationError
from repro.compiler.circuit import CircuitProgram, Instruction, Opcode
from repro.fhe.ciphertext import Ciphertext, Plaintext
from repro.fhe.evaluator import FHEContext
from repro.fhe.params import BFVParameters
from repro.ir.evaluate import evaluate
from repro.ir.nodes import Expr

__all__ = ["ExecutionReport", "execute", "reference_output", "declared_outputs"]

Value = Union[int, Sequence[int]]


def declared_outputs(
    program: CircuitProgram, outputs: Mapping[str, Sequence[int]]
) -> List[int]:
    """Concatenate execution ``outputs`` in the circuit's declaration order.

    Multi-output circuits must be verified on the concatenation of the
    outputs the circuit itself declares — not on whatever single entry dict
    iteration happens to yield first.  Shared by the experiment harness and
    the :mod:`repro.api` facade so the verification path cannot drift.
    """
    collected: List[int] = []
    for _, name, _ in program.outputs:
        collected.extend(outputs.get(name, []))
    return collected


@dataclass
class ExecutionReport:
    """Result of executing a circuit on the FHE simulator."""

    outputs: Dict[str, List[int]] = field(default_factory=dict)
    latency_ms: float = 0.0
    operation_counts: Dict[str, int] = field(default_factory=dict)
    consumed_noise_budget: float = 0.0
    remaining_noise_budget: float = 0.0
    noise_budget_exhausted: bool = False
    encrypted_inputs: int = 0

    @property
    def succeeded(self) -> bool:
        """True when every output decrypted within the noise budget."""
        return not self.noise_budget_exhausted


def _slot_value(slot, inputs: Mapping[str, Value]) -> int:
    if slot.constant is not None:
        return int(slot.constant)
    value = inputs.get(slot.name)
    if value is None:
        raise CompilationError(f"missing value for program input {slot.name!r}")
    if isinstance(value, (list, tuple)):
        raise CompilationError(
            f"input {slot.name!r} is packed slot-wise and must be a scalar"
        )
    return int(value)


def _build_plaintext(instruction: Instruction, context: FHEContext) -> Plaintext:
    if instruction.name == "broadcast":
        return context.encoder.encode_scalar(instruction.values[0])
    return context.encoder.encode(list(instruction.values))


def execute(
    program: CircuitProgram,
    inputs: Mapping[str, Value],
    params: Optional[BFVParameters] = None,
    context: Optional[FHEContext] = None,
) -> ExecutionReport:
    """Run ``program`` on the simulated BFV backend with the given inputs."""
    if context is None:
        steps = program.rotation_steps
        # Generate exactly the Galois keys the circuit needs (plus defaults).
        galois_steps = sorted(set(steps) | set())
        context = FHEContext(params=params, galois_steps=galois_steps or None)
    evaluator = context.evaluator
    evaluator.reset_log()

    registers: Dict[int, Union[Ciphertext, Plaintext]] = {}
    encrypted_inputs = 0

    for instruction in program.instructions:
        opcode = instruction.opcode
        if opcode is Opcode.LOAD_INPUT:
            slot_values = [_slot_value(slot, inputs) for slot in instruction.layout]
            plaintext = context.encoder.encode(slot_values)
            registers[instruction.result] = context.encryptor.encrypt(plaintext)
            encrypted_inputs += 1
        elif opcode is Opcode.LOAD_PLAIN:
            registers[instruction.result] = _build_plaintext(instruction, context)
        elif opcode is Opcode.ADD:
            lhs, rhs = (registers[op] for op in instruction.operands)
            registers[instruction.result] = evaluator.add(lhs, rhs)
        elif opcode is Opcode.SUB:
            lhs, rhs = (registers[op] for op in instruction.operands)
            registers[instruction.result] = evaluator.sub(lhs, rhs)
        elif opcode is Opcode.MUL:
            lhs, rhs = (registers[op] for op in instruction.operands)
            result = evaluator.multiply(lhs, rhs)
            registers[instruction.result] = evaluator.relinearize(result)
        elif opcode is Opcode.ADD_PLAIN:
            lhs = registers[instruction.operands[0]]
            plain = registers[instruction.operands[1]]
            registers[instruction.result] = evaluator.add_plain(lhs, plain)
        elif opcode is Opcode.SUB_PLAIN:
            lhs = registers[instruction.operands[0]]
            plain = registers[instruction.operands[1]]
            registers[instruction.result] = evaluator.sub_plain(lhs, plain)
        elif opcode is Opcode.MUL_PLAIN:
            lhs = registers[instruction.operands[0]]
            plain = registers[instruction.operands[1]]
            registers[instruction.result] = evaluator.multiply_plain(lhs, plain)
        elif opcode is Opcode.NEGATE:
            registers[instruction.result] = evaluator.negate(
                registers[instruction.operands[0]]
            )
        elif opcode is Opcode.ROTATE:
            registers[instruction.result] = evaluator.rotate(
                registers[instruction.operands[0]], instruction.step
            )
        elif opcode is Opcode.OUTPUT:
            registers[instruction.result] = registers[instruction.operands[0]]
        else:  # pragma: no cover - defensive
            raise CompilationError(f"unknown opcode {opcode}")

    report = ExecutionReport(
        latency_ms=evaluator.log.total_latency_ms,
        operation_counts=evaluator.log.as_dict(),
        encrypted_inputs=encrypted_inputs,
    )

    initial_budget = context.params.initial_noise_budget
    minimum_budget = initial_budget
    half = context.params.plain_modulus // 2
    for register, name, length in program.outputs:
        value = registers[register]
        if isinstance(value, Plaintext):
            decoded = context.encoder.decode(value, length)
            report.outputs[name] = decoded
            continue
        budget = context.decryptor.invariant_noise_budget(value)
        minimum_budget = min(minimum_budget, budget)
        if budget <= 0.0:
            report.noise_budget_exhausted = True
        raw = value.slots[:length]
        decoded = [
            int(v - context.params.plain_modulus) if v > half else int(v) for v in raw
        ]
        report.outputs[name] = decoded

    report.remaining_noise_budget = max(0.0, minimum_budget)
    report.consumed_noise_budget = initial_budget - report.remaining_noise_budget
    return report


def reference_output(
    expr: Expr,
    inputs: Mapping[str, Value],
    length: Optional[int] = None,
    slot_count: int = 64,
    plain_modulus: Optional[int] = None,
) -> List[int]:
    """Plaintext reference output of an IR expression (meaningful slots only).

    BFV computes over ``Z_t``, so the reference is reduced modulo the
    plaintext modulus and mapped to centred representatives — exactly what
    decrypting and decoding the compiled circuit yields.  Pass
    ``plain_modulus=None``-compatible large values through the default, or an
    explicit modulus matching non-default parameters.
    """
    from repro.ir.evaluate import output_arity

    if plain_modulus is None:
        plain_modulus = BFVParameters.default().plain_modulus
    if length is None:
        length = output_arity(expr)
    slots = evaluate(expr, inputs, slot_count=max(slot_count, length), modulus=plain_modulus)
    half = plain_modulus // 2
    return [value - plain_modulus if value > half else value for value in slots[:length]]
