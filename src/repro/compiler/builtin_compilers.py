"""Registry entries for the pipeline-based compiler configurations.

The baseline compilers register themselves in :mod:`repro.baselines`; this
module adds the configurations that are plain :class:`Compiler` pipelines —
the beam-search TRS variant and the paper's headline CHEHAB RL configuration
(a trained agent plugged in as the optimizer).
"""

from __future__ import annotations

from typing import Optional

from repro.compiler.pipeline import Compiler, CompilerOptions
from repro.compiler.registry import register_compiler


@register_compiler(
    "beam",
    normalize=lambda **options: CompilerOptions(optimizer="beam", **options),
    description="CHEHAB pipeline with the beam-search TRS driver",
    paper_config="beam-search variant of the original CHEHAB rewriter (Sec. 5.1)",
)
def _build_beam(**options: object) -> Compiler:
    return Compiler(CompilerOptions(optimizer="beam", **options))


@register_compiler(
    "chehab-rl",
    description="CHEHAB pipeline driven by the PPO-trained hierarchical policy",
    paper_config="CHEHAB RL (Figs. 5-7, 12; Table 6 'CHEHAB RL' columns)",
)
def _build_chehab_rl(
    agent: Optional[object] = None,
    train_timesteps: int = 512,
    dataset_size: int = 64,
    seed: int = 0,
    layout_before_encryption: bool = True,
) -> Compiler:
    from repro.experiments.harness import make_agent_compiler, make_default_agent

    if agent is None:
        agent = make_default_agent(
            train_timesteps=int(train_timesteps),
            dataset_size=int(dataset_size),
            seed=int(seed),
        )
    return make_agent_compiler(agent, layout_before_encryption=layout_before_encryption)
