"""Classic compiler passes applied around the TRS optimizer.

The original CHEHAB compiler complements term rewriting with standard
optimizations; the reproduction implements the same three:

* **constant folding** -- evaluate operations whose operands are constants;
* **common sub-expression elimination** -- the IR's structural hashing makes
  sharing implicit (identical sub-trees are the same DAG node); the pass
  here exposes the sharing statistics and canonicalises nested negations so
  that equal computations actually hash equally;
* **dead code elimination** -- at expression level there is no dead code per
  se, but lowering can produce unused instructions (e.g. masks that were
  later folded); :func:`dead_code_eliminate` prunes instructions whose
  results are unreachable from the program outputs.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.compiler.circuit import CircuitProgram, Opcode
from repro.ir.nodes import Add, Const, Expr, Mul, Neg, Rotate, Sub, Vec, VecNeg
from repro.ir.analysis import dag_size, expression_size

__all__ = [
    "constant_fold",
    "cse_statistics",
    "dead_code_eliminate",
    "simplify_pipeline",
]


def constant_fold(expr: Expr) -> Expr:
    """Fold constant sub-expressions bottom-up."""
    if expr.is_leaf():
        return expr
    children = [constant_fold(child) for child in expr.children]
    rebuilt = expr if children == list(expr.children) else expr.with_children(children)

    if isinstance(rebuilt, Add) and _both_const(rebuilt):
        return Const(rebuilt.lhs.value + rebuilt.rhs.value)
    if isinstance(rebuilt, Sub) and _both_const(rebuilt):
        return Const(rebuilt.lhs.value - rebuilt.rhs.value)
    if isinstance(rebuilt, Mul) and _both_const(rebuilt):
        return Const(rebuilt.lhs.value * rebuilt.rhs.value)
    if isinstance(rebuilt, Neg) and isinstance(rebuilt.operand, Const):
        return Const(-rebuilt.operand.value)
    if isinstance(rebuilt, Rotate) and rebuilt.step == 0:
        return rebuilt.operand
    if isinstance(rebuilt, Neg) and isinstance(rebuilt.operand, Neg):
        return rebuilt.operand.operand
    if isinstance(rebuilt, VecNeg) and isinstance(rebuilt.operand, VecNeg):
        return rebuilt.operand.operand
    # Arithmetic identities that frequently appear after other folds.
    if isinstance(rebuilt, Mul):
        if _is_const(rebuilt.lhs, 1):
            return rebuilt.rhs
        if _is_const(rebuilt.rhs, 1):
            return rebuilt.lhs
        if _is_const(rebuilt.lhs, 0) or _is_const(rebuilt.rhs, 0):
            return Const(0)
    if isinstance(rebuilt, Add):
        if _is_const(rebuilt.lhs, 0):
            return rebuilt.rhs
        if _is_const(rebuilt.rhs, 0):
            return rebuilt.lhs
    if isinstance(rebuilt, Sub) and _is_const(rebuilt.rhs, 0):
        return rebuilt.lhs
    return rebuilt


def _both_const(node: Expr) -> bool:
    return isinstance(node.children[0], Const) and isinstance(node.children[1], Const)


def _is_const(node: Expr, value: int) -> bool:
    return isinstance(node, Const) and node.value == value


def cse_statistics(expr: Expr) -> Dict[str, int]:
    """Sharing statistics: tree size vs DAG size (difference = CSE savings)."""
    tree = expression_size(expr)
    dag = dag_size(expr)
    return {"tree_size": tree, "dag_size": dag, "shared_nodes": tree - dag}


def dead_code_eliminate(program: CircuitProgram) -> CircuitProgram:
    """Remove instructions whose results never reach a program output."""
    live: Set[int] = {register for register, _, _ in program.outputs}
    for instruction in reversed(program.instructions):
        if instruction.result in live:
            live.update(instruction.operands)

    remap: Dict[int, int] = {}
    pruned = CircuitProgram(name=program.name)
    pruned.scalar_inputs = list(program.scalar_inputs)
    for instruction in program.instructions:
        if instruction.result not in live:
            continue
        new_operands = tuple(remap[op] for op in instruction.operands)
        register = pruned.emit(
            instruction.opcode,
            new_operands,
            step=instruction.step,
            name=instruction.name,
            layout=instruction.layout,
            values=instruction.values,
        )
        remap[instruction.result] = register
    for register, name, length in program.outputs:
        pruned.mark_output(remap[register], name, length)
    return pruned


def simplify_pipeline(expr: Expr) -> Expr:
    """Run the expression-level classic passes (currently constant folding)."""
    return constant_fold(expr)
