"""Gated Recurrent Unit layers (the baseline encoder of the ablation).

The GRU follows the standard formulation (update gate ``z``, reset gate
``r``, candidate state ``h~``).  :class:`GRU` runs a full sequence and can be
bidirectional, matching the 4-layer bidirectional encoder used by the
paper's autoencoder comparison (Appendix I.1).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor

__all__ = ["GRUCell", "GRU"]


class GRUCell(Module):
    """A single GRU step: ``h_t = GRU(x_t, h_{t-1})``."""

    def __init__(self, input_dim: int, hidden_dim: int, seed: Optional[int] = None) -> None:
        super().__init__()
        base = 0 if seed is None else seed
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.update_gate = Linear(input_dim + hidden_dim, hidden_dim, seed=base + 1)
        self.reset_gate = Linear(input_dim + hidden_dim, hidden_dim, seed=base + 2)
        self.candidate = Linear(input_dim + hidden_dim, hidden_dim, seed=base + 3)

    def forward(self, inputs: Tensor, hidden: Tensor) -> Tensor:
        combined = Tensor.concatenate([inputs, hidden], axis=-1)
        update = self.update_gate(combined).sigmoid()
        reset = self.reset_gate(combined).sigmoid()
        candidate_input = Tensor.concatenate([inputs, reset * hidden], axis=-1)
        candidate = self.candidate(candidate_input).tanh()
        return (Tensor(1.0) - update) * hidden + update * candidate


class GRU(Module):
    """A (possibly bidirectional, possibly stacked) GRU over a sequence."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        num_layers: int = 1,
        bidirectional: bool = False,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.bidirectional = bidirectional
        directions = 2 if bidirectional else 1
        for layer in range(num_layers):
            layer_input = input_dim if layer == 0 else hidden_dim * directions
            base = None if seed is None else seed + 10 * (layer + 1)
            setattr(self, f"forward_cell{layer}", GRUCell(layer_input, hidden_dim, seed=base))
            if bidirectional:
                back = None if base is None else base + 5
                setattr(self, f"backward_cell{layer}", GRUCell(layer_input, hidden_dim, seed=back))

    def _run_direction(self, cell: GRUCell, inputs: Tensor, reverse: bool) -> Tensor:
        batch, length, _ = inputs.shape
        hidden = Tensor(np.zeros((batch, cell.hidden_dim)))
        outputs: List[Tensor] = []
        indices = range(length - 1, -1, -1) if reverse else range(length)
        for index in indices:
            hidden = cell(inputs[:, index, :], hidden)
            outputs.append(hidden)
        if reverse:
            outputs = outputs[::-1]
        return Tensor.stack(outputs, axis=1)

    def forward(self, inputs: Tensor) -> Tensor:
        """Return per-step hidden states of shape ``(batch, length, H*directions)``."""
        hidden = inputs
        for layer in range(self.num_layers):
            forward_cell = getattr(self, f"forward_cell{layer}")
            forward_states = self._run_direction(forward_cell, hidden, reverse=False)
            if self.bidirectional:
                backward_cell = getattr(self, f"backward_cell{layer}")
                backward_states = self._run_direction(backward_cell, hidden, reverse=True)
                hidden = Tensor.concatenate([forward_states, backward_states], axis=-1)
            else:
                hidden = forward_states
        return hidden

    def encode(self, inputs: Tensor) -> Tensor:
        """Final-step summary vector of shape ``(batch, H*directions)``."""
        states = self.forward(inputs)
        return states[:, -1, :]
