"""A reverse-mode automatic-differentiation tensor on top of numpy.

Only the operations needed by the policy/critic networks, the Transformer
and GRU encoders and the PPO loss are implemented, but each is implemented
with full broadcasting support so the layers read like their PyTorch
counterparts.  Gradients are accumulated in ``Tensor.grad`` by calling
``backward()`` on a scalar loss.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

__all__ = ["Tensor"]

ArrayLike = Union[np.ndarray, float, int, Sequence]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` (reverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over leading broadcast dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode autograd."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _prev: Tuple["Tensor", ...] = (),
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[], None]] = None
        self._prev: Tuple[Tensor, ...] = _prev

    # -- basic properties -------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # -- graph helpers ------------------------------------------------------------
    @staticmethod
    def _wrap(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(self, data: np.ndarray, prev: Tuple["Tensor", ...]) -> "Tensor":
        requires_grad = any(p.requires_grad for p in prev)
        return Tensor(data, requires_grad=requires_grad, _prev=prev if requires_grad else ())

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    # -- arithmetic ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)
        out = self._make(self.data + other.data, (self, other))

        def _backward() -> None:
            self._accumulate(_unbroadcast(out.grad, self.data.shape))
            other._accumulate(_unbroadcast(out.grad, other.data.shape))

        out._backward = _backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = self._make(-self.data, (self,))

        def _backward() -> None:
            self._accumulate(-out.grad)

        out._backward = _backward
        return out

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._wrap(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._wrap(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)
        out = self._make(self.data * other.data, (self, other))

        def _backward() -> None:
            self._accumulate(_unbroadcast(out.grad * other.data, self.data.shape))
            other._accumulate(_unbroadcast(out.grad * self.data, other.data.shape))

        out._backward = _backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)
        return self * other ** -1.0

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._wrap(other) * self ** -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        out = self._make(self.data ** exponent, (self,))

        def _backward() -> None:
            self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

        out._backward = _backward
        return out

    def matmul(self, other: "Tensor") -> "Tensor":
        other = self._wrap(other)
        out = self._make(self.data @ other.data, (self, other))

        def _backward() -> None:
            grad = out.grad
            if self.requires_grad:
                self_grad = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(self_grad, self.data.shape))
            if other.requires_grad:
                other_grad = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(other_grad, other.data.shape))

        out._backward = _backward
        return out

    __matmul__ = matmul

    # -- elementwise non-linearities ----------------------------------------------------
    def exp(self) -> "Tensor":
        out = self._make(np.exp(self.data), (self,))

        def _backward() -> None:
            self._accumulate(out.grad * out.data)

        out._backward = _backward
        return out

    def log(self) -> "Tensor":
        out = self._make(np.log(self.data), (self,))

        def _backward() -> None:
            self._accumulate(out.grad / self.data)

        out._backward = _backward
        return out

    def tanh(self) -> "Tensor":
        out = self._make(np.tanh(self.data), (self,))

        def _backward() -> None:
            self._accumulate(out.grad * (1.0 - out.data ** 2))

        out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        out = self._make(1.0 / (1.0 + np.exp(-self.data)), (self,))

        def _backward() -> None:
            self._accumulate(out.grad * out.data * (1.0 - out.data))

        out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        out = self._make(np.maximum(self.data, 0.0), (self,))

        def _backward() -> None:
            self._accumulate(out.grad * (self.data > 0.0))

        out._backward = _backward
        return out

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    # -- reductions -------------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out = self._make(self.data.sum(axis=axis, keepdims=keepdims), (self,))

        def _backward() -> None:
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            self._accumulate(np.broadcast_to(grad, self.data.shape).copy())

        out._backward = _backward
        return out

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = self._make(out_data, (self,))

        def _backward() -> None:
            grad = out.grad
            expanded = grad if keepdims else np.expand_dims(grad, axis=axis)
            max_expanded = out_data if keepdims else np.expand_dims(out_data, axis=axis)
            mask = self.data == max_expanded
            mask = mask / mask.sum(axis=axis, keepdims=True)
            self._accumulate(expanded * mask)

        out._backward = _backward
        return out

    # -- shape manipulation --------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        out = self._make(self.data.reshape(shape), (self,))

        def _backward() -> None:
            self._accumulate(out.grad.reshape(self.data.shape))

        out._backward = _backward
        return out

    def transpose(self, *axes: int) -> "Tensor":
        axes = axes or tuple(reversed(range(self.data.ndim)))
        out = self._make(self.data.transpose(axes), (self,))
        inverse = np.argsort(axes)

        def _backward() -> None:
            self._accumulate(out.grad.transpose(inverse))

        out._backward = _backward
        return out

    def __getitem__(self, index) -> "Tensor":
        out = self._make(self.data[index], (self,))

        def _backward() -> None:
            grad = np.zeros_like(self.data)
            np.add.at(grad, index, out.grad)
            self._accumulate(grad)

        out._backward = _backward
        return out

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._wrap(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        requires_grad = any(t.requires_grad for t in tensors)
        out = Tensor(data, requires_grad=requires_grad, _prev=tuple(tensors) if requires_grad else ())

        def _backward() -> None:
            sizes = [t.data.shape[axis] for t in tensors]
            offsets = np.cumsum([0] + sizes)
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                slicer = [slice(None)] * out.grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(out.grad[tuple(slicer)])

        out._backward = _backward
        return out

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._wrap(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)
        requires_grad = any(t.requires_grad for t in tensors)
        out = Tensor(data, requires_grad=requires_grad, _prev=tuple(tensors) if requires_grad else ())

        def _backward() -> None:
            grads = np.split(out.grad, len(tensors), axis=axis)
            for tensor, grad in zip(tensors, grads):
                tensor._accumulate(np.squeeze(grad, axis=axis))

        out._backward = _backward
        return out

    # -- softmax family --------------------------------------------------------------------------
    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out = self._make(shifted - log_sum, (self,))

        def _backward() -> None:
            softmax = np.exp(out.data)
            grad = out.grad - softmax * out.grad.sum(axis=axis, keepdims=True)
            self._accumulate(grad)

        out._backward = _backward
        return out

    def softmax(self, axis: int = -1) -> "Tensor":
        return self.log_softmax(axis=axis).exp()

    # -- backward pass -----------------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor (must be scalar unless ``grad`` given)."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        self.grad = np.asarray(grad, dtype=np.float64)

        ordered: List[Tensor] = []
        visited: Set[int] = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if id(node) in visited:
                continue
            if expanded:
                visited.add(id(node))
                ordered.append(node)
                continue
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        for node in reversed(ordered):
            if node._backward is not None and node.grad is not None:
                node._backward()

    def zero_grad(self) -> None:
        self.grad = None
