"""Parameter (de)serialization for modules.

Checkpoints are plain ``.npz`` archives keyed by the dotted parameter names
returned by :meth:`repro.nn.layers.Module.named_parameters`, so they are
portable, inspectable and independent of pickling.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.nn.layers import Module

__all__ = ["save_module", "load_module"]


def save_module(module: Module, path: Union[str, os.PathLike]) -> None:
    """Save ``module``'s parameters to ``path`` (``.npz``)."""
    state = module.state_dict()
    directory = os.path.dirname(os.fspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    np.savez(os.fspath(path), **state)


def load_module(module: Module, path: Union[str, os.PathLike]) -> Module:
    """Load parameters saved by :func:`save_module` into ``module`` (in place)."""
    with np.load(os.fspath(path)) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
    return module
