"""A small numpy-based neural-network library with reverse-mode autograd.

The paper trains its policy with PyTorch/Stable-Baselines3; those libraries
are not available offline, so the reproduction implements the required
machinery from scratch on top of numpy:

* :mod:`repro.nn.tensor` -- a reverse-mode autograd ``Tensor``;
* :mod:`repro.nn.layers` -- ``Module``, ``Linear``, ``Embedding``,
  ``LayerNorm``, ``MLP``;
* :mod:`repro.nn.attention` / :mod:`repro.nn.transformer` -- multi-head
  self-attention and the Transformer encoder used for the state
  representation (Sec. 5.1);
* :mod:`repro.nn.gru` -- the GRU baseline of the encoder ablation;
* :mod:`repro.nn.optim` -- SGD and Adam;
* :mod:`repro.nn.serialize` -- save/load of module parameters (``.npz``).
"""

from repro.nn.tensor import Tensor
from repro.nn.layers import MLP, Embedding, LayerNorm, Linear, Module, Sequential
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.transformer import TransformerEncoder, TransformerEncoderLayer
from repro.nn.gru import GRU, GRUCell
from repro.nn.optim import SGD, Adam
from repro.nn.serialize import load_module, save_module

__all__ = [
    "Tensor",
    "Module",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Sequential",
    "MLP",
    "MultiHeadSelfAttention",
    "TransformerEncoder",
    "TransformerEncoderLayer",
    "GRU",
    "GRUCell",
    "SGD",
    "Adam",
    "save_module",
    "load_module",
]
