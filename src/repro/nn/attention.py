"""Multi-head self-attention.

The attention layer operates on ``(batch, sequence, model_dim)`` tensors and
supports an additive key-padding mask so ``[PAD]`` tokens never contribute to
the representation of real tokens.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor

__all__ = ["MultiHeadSelfAttention"]


class MultiHeadSelfAttention(Module):
    """Standard scaled dot-product multi-head self-attention."""

    def __init__(self, model_dim: int, num_heads: int, seed: Optional[int] = None) -> None:
        super().__init__()
        if model_dim % num_heads != 0:
            raise ValueError("model_dim must be divisible by num_heads")
        self.model_dim = model_dim
        self.num_heads = num_heads
        self.head_dim = model_dim // num_heads
        base = 0 if seed is None else seed
        self.query = Linear(model_dim, model_dim, seed=base + 1)
        self.key = Linear(model_dim, model_dim, seed=base + 2)
        self.value = Linear(model_dim, model_dim, seed=base + 3)
        self.output = Linear(model_dim, model_dim, seed=base + 4)

    def _split_heads(self, tensor: Tensor, batch: int, length: int) -> Tensor:
        # (batch, length, model) -> (batch, heads, length, head_dim)
        reshaped = tensor.reshape(batch, length, self.num_heads, self.head_dim)
        return reshaped.transpose(0, 2, 1, 3)

    def forward(self, inputs: Tensor, padding_mask: Optional[np.ndarray] = None) -> Tensor:
        """Apply self-attention.

        ``padding_mask`` has shape ``(batch, length)`` with 1 for real tokens
        and 0 for padding.
        """
        batch, length, _ = inputs.shape
        queries = self._split_heads(self.query(inputs), batch, length)
        keys = self._split_heads(self.key(inputs), batch, length)
        values = self._split_heads(self.value(inputs), batch, length)

        scores = queries @ keys.transpose(0, 1, 3, 2)
        scores = scores * (1.0 / math.sqrt(self.head_dim))
        if padding_mask is not None:
            additive = np.where(np.asarray(padding_mask)[:, None, None, :] > 0, 0.0, -1e9)
            scores = scores + Tensor(additive)
        weights = scores.softmax(axis=-1)
        attended = weights @ values
        merged = attended.transpose(0, 2, 1, 3).reshape(batch, length, self.model_dim)
        return self.output(merged)
