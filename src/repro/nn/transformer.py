"""Transformer encoder used for the RL state representation (paper Sec. 5.1).

The default configuration matches the paper: 4 encoder layers, 8 attention
heads, absolute (sinusoidal) positional encodings added to the token
embeddings, and a 256-dimensional output taken from the ``[CLS]`` position.
Smaller configurations are used by the tests and the scaled-down training
runs; the architecture is identical.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.layers import Embedding, LayerNorm, Linear, Module
from repro.nn.tensor import Tensor

__all__ = ["positional_encoding", "TransformerEncoderLayer", "TransformerEncoder"]


def positional_encoding(length: int, dim: int) -> np.ndarray:
    """Sinusoidal absolute positional encodings of shape ``(length, dim)``."""
    positions = np.arange(length)[:, None]
    dimensions = np.arange(dim)[None, :]
    angle_rates = 1.0 / np.power(10000.0, (2 * (dimensions // 2)) / dim)
    angles = positions * angle_rates
    encoding = np.zeros((length, dim))
    encoding[:, 0::2] = np.sin(angles[:, 0::2])
    encoding[:, 1::2] = np.cos(angles[:, 1::2])
    return encoding


class TransformerEncoderLayer(Module):
    """One pre-norm Transformer encoder layer (attention + feed-forward)."""

    def __init__(
        self,
        model_dim: int,
        num_heads: int,
        feedforward_dim: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        feedforward_dim = feedforward_dim or 4 * model_dim
        base = 0 if seed is None else seed
        self.attention = MultiHeadSelfAttention(model_dim, num_heads, seed=base + 10)
        self.norm1 = LayerNorm(model_dim)
        self.norm2 = LayerNorm(model_dim)
        self.ff1 = Linear(model_dim, feedforward_dim, seed=base + 20)
        self.ff2 = Linear(feedforward_dim, model_dim, seed=base + 21)

    def forward(self, inputs: Tensor, padding_mask: Optional[np.ndarray] = None) -> Tensor:
        attended = self.attention(self.norm1(inputs), padding_mask)
        inputs = inputs + attended
        hidden = self.ff2(self.ff1(self.norm2(inputs)).relu())
        return inputs + hidden


class TransformerEncoder(Module):
    """Token-id sequences → fixed-length program embeddings.

    ``forward`` returns the per-token representations; :meth:`encode`
    returns the pooled ``[CLS]`` embedding used as the RL state.
    """

    def __init__(
        self,
        vocab_size: int,
        model_dim: int = 256,
        num_layers: int = 4,
        num_heads: int = 8,
        max_length: int = 256,
        feedforward_dim: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.vocab_size = vocab_size
        self.model_dim = model_dim
        self.max_length = max_length
        self.embedding = Embedding(vocab_size, model_dim, seed=seed)
        self._positional = positional_encoding(max_length, model_dim)
        self.layers_count = num_layers
        for index in range(num_layers):
            layer_seed = None if seed is None else seed + 100 * (index + 1)
            setattr(
                self,
                f"layer{index}",
                TransformerEncoderLayer(model_dim, num_heads, feedforward_dim, seed=layer_seed),
            )
        self.final_norm = LayerNorm(model_dim)

    def forward(self, token_ids: np.ndarray, padding_mask: Optional[np.ndarray] = None) -> Tensor:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim == 1:
            token_ids = token_ids[None, :]
        length = token_ids.shape[1]
        if length > self.max_length:
            raise ValueError(f"sequence length {length} exceeds max_length {self.max_length}")
        embedded = self.embedding(token_ids)
        embedded = embedded + Tensor(self._positional[:length])
        hidden = embedded
        for index in range(self.layers_count):
            hidden = getattr(self, f"layer{index}")(hidden, padding_mask)
        return self.final_norm(hidden)

    def encode(self, token_ids: np.ndarray, padding_mask: Optional[np.ndarray] = None) -> Tensor:
        """Pooled ``[CLS]`` embedding of shape ``(batch, model_dim)``."""
        hidden = self.forward(token_ids, padding_mask)
        return hidden[:, 0, :]
