"""Optimizers: SGD (with momentum) and Adam."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.nn.layers import Parameter

__all__ = ["SGD", "Adam"]


class _Optimizer:
    """Shared machinery: parameter list, zero_grad, gradient clipping."""

    def __init__(self, parameters: List[Parameter], learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters = list(parameters)
        self.learning_rate = learning_rate

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def clip_grad_norm(self, max_norm: float) -> float:
        """Clip the global gradient norm; returns the pre-clip norm."""
        total = 0.0
        for parameter in self.parameters:
            if parameter.grad is not None:
                total += float(np.sum(parameter.grad ** 2))
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for parameter in self.parameters:
                if parameter.grad is not None:
                    parameter.grad *= scale
        return norm

    def step(self) -> None:
        raise NotImplementedError


class SGD(_Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: List[Parameter],
        learning_rate: float = 1e-2,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(parameters, learning_rate)
        self.momentum = momentum
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            update = parameter.grad
            if self.momentum > 0:
                velocity = self._velocity.get(id(parameter))
                if velocity is None:
                    velocity = np.zeros_like(parameter.data)
                velocity = self.momentum * velocity + update
                self._velocity[id(parameter)] = velocity
                update = velocity
            parameter.data -= self.learning_rate * update


class Adam(_Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: List[Parameter],
        learning_rate: float = 1e-4,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, learning_rate)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._moment1: Dict[int, np.ndarray] = {}
        self._moment2: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay > 0:
                grad = grad + self.weight_decay * parameter.data
            m = self._moment1.get(id(parameter))
            v = self._moment2.get(id(parameter))
            if m is None:
                m = np.zeros_like(parameter.data)
                v = np.zeros_like(parameter.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad ** 2
            self._moment1[id(parameter)] = m
            self._moment2[id(parameter)] = v
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)
