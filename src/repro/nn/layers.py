"""Neural-network modules built on the autograd tensor.

``Module`` mirrors the PyTorch API surface the rest of the code needs:
``parameters()``, ``named_parameters()``, ``zero_grad()``, ``state_dict()``
and ``load_state_dict()`` (numpy arrays).
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Module", "Parameter", "Linear", "Embedding", "LayerNorm", "Sequential", "MLP", "ReLU"]


class Parameter(Tensor):
    """A trainable tensor."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}

    # -- registration (attribute hooks) -------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # -- parameter access ------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, parameter in self._parameters.items():
            yield prefix + name, parameter
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def parameters(self) -> List[Parameter]:
        return [parameter for _, parameter in self.named_parameters()]

    def parameter_count(self) -> int:
        """Total number of trainable scalars."""
        return sum(parameter.data.size for parameter in self.parameters())

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    # -- (de)serialization ---------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        parameters = dict(self.named_parameters())
        missing = set(parameters) - set(state)
        unexpected = set(state) - set(parameters)
        if missing or unexpected:
            raise ValueError(
                f"state dict mismatch (missing={sorted(missing)}, unexpected={sorted(unexpected)})"
            )
        for name, parameter in parameters.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} vs {parameter.data.shape}"
                )
            parameter.data = value.copy()

    # -- call protocol -----------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Affine map ``y = x W + b`` with Kaiming-uniform initialisation."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, seed: Optional[int] = None) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        bound = math.sqrt(6.0 / in_features)
        self.weight = Parameter(rng.uniform(-bound, bound, size=(in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs @ self.weight
        if self.bias is not None:
            output = output + self.bias
        return output


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int, seed: Optional[int] = None) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.weight = Parameter(rng.normal(0.0, 0.02, size=(num_embeddings, embedding_dim)))
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        return self.weight[ids]


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, features: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.gain = Parameter(np.ones(features))
        self.shift = Parameter(np.zeros(features))
        self.eps = eps

    def forward(self, inputs: Tensor) -> Tensor:
        mean = inputs.mean(axis=-1, keepdims=True)
        centred = inputs - mean
        variance = (centred * centred).mean(axis=-1, keepdims=True)
        normalised = centred * (variance + self.eps) ** -0.5
        return normalised * self.gain + self.shift


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.relu()


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._ordered: List[Module] = []
        for index, module in enumerate(modules):
            setattr(self, f"layer{index}", module)
            self._ordered.append(module)

    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs
        for module in self._ordered:
            output = module(output)
        return output


class MLP(Module):
    """Multi-layer perceptron with ReLU activations between hidden layers."""

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int],
        out_features: int,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        sizes = [in_features, *hidden, out_features]
        layers: List[Module] = []
        for index in range(len(sizes) - 1):
            layer_seed = None if seed is None else seed + index
            layers.append(Linear(sizes[index], sizes[index + 1], seed=layer_seed))
            if index < len(sizes) - 2:
                layers.append(ReLU())
        self.body = Sequential(*layers)

    def forward(self, inputs: Tensor) -> Tensor:
        return self.body(inputs)
